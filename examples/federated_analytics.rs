//! Federated analytics over live engines: the §5.2 setting as a library
//! user would deploy it — five nodes, each a real (qa-minidb) database
//! with its own copies of the tables, star queries allocated by the query
//! market, executed for real, with EXPLAIN-plus-history cost estimates.
//!
//! ```sh
//! cargo run --example federated_analytics
//! ```

use query_markets::cluster::{run_experiment, ClusterConfig, ClusterMechanism, ClusterSpec};

fn main() {
    // 5 nodes, 10 tables (2–4 copies each), 20 select-project views, 8
    // star-query classes. One node is ~8× slower, one sits on a
    // high-latency link — the paper's heterogeneous PC fleet.
    let spec = ClusterSpec::generate(2024, 5, 10, 20, 8, 120);
    println!("deployment:");
    for (i, slow) in spec.slowdown.iter().enumerate() {
        let tables = spec.tables.iter().filter(|t| t.copies.contains(&i)).count();
        println!(
            "  node {i}: {tables} table copies, slowdown ×{slow:.1}, link {} µs",
            spec.link_latency_us[i]
        );
    }

    for mechanism in [ClusterMechanism::Greedy, ClusterMechanism::QaNt] {
        let config = ClusterConfig {
            num_queries: 60,
            ..ClusterConfig::ci_scale(mechanism, 9)
        };
        let result = run_experiment(&spec, &config).expect("spec has evaluable classes");
        println!(
            "\n== {} — {} queries, uniform inter-arrival {:?}",
            result.mechanism, config.num_queries, config.mean_interarrival
        );
        println!(
            "   mean assign {:.2} ms   mean total {:.2} ms   failed {}",
            result.mean_assign_ms, result.mean_total_ms, result.failed
        );
        // Who did the work?
        let mut per_node = vec![0usize; spec.num_nodes];
        for o in &result.outcomes {
            if let Some(n) = o.node {
                per_node[n] += 1;
            }
        }
        println!("   queries per node: {per_node:?}");
    }

    println!(
        "\nBoth mechanisms wait for every capable node's reply before deciding (as in the\n\
         paper), so a busy slow node stretches assignment time — the effect §5.2 reports\n\
         with its 3-second EXPLAIN PLAN replies."
    );
}
