//! Quickstart: run a small federation under every allocation mechanism and
//! print the comparison the paper's Figure 4 makes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use query_markets::prelude::*;

fn main() {
    // A 20-node federation with the paper's two-class workload: Q1
    // (~1000 ms) evaluable everywhere, Q2 (~500 ms) on half the nodes.
    let mut config = SimConfig::small_test(42);
    config.num_nodes = 20;
    let scenario = Scenario::two_class(config, TwoClassParams::default());

    // A 0.05 Hz sinusoid at 90 % of system capacity for 30 s of virtual
    // time — the regime where allocation quality matters most.
    let trace = two_class_trace(&scenario, 0.05, 0.9, 30);
    println!(
        "federation: {} nodes, workload: {} queries over {:.0}s\n",
        scenario.config.num_nodes,
        trace.len(),
        trace.horizon().as_secs_f64()
    );

    println!(
        "{:>12}  {:>10}  {:>10}  {:>9}  {:>10}",
        "mechanism", "mean (ms)", "completed", "unserved", "msgs/query"
    );
    let mut qant_mean = None;
    for mechanism in MechanismKind::DYNAMIC {
        let outcome = Federation::new(&scenario, mechanism, &trace).run(&trace);
        let mean = outcome.metrics.mean_response_ms().unwrap_or(f64::NAN);
        if mechanism == MechanismKind::QaNt {
            qant_mean = Some(mean);
        }
        println!(
            "{:>12}  {:>10.0}  {:>10}  {:>9}  {:>10.1}",
            mechanism.to_string(),
            mean,
            outcome.metrics.completed,
            outcome.metrics.unserved,
            outcome.metrics.messages as f64 / outcome.metrics.completed.max(1) as f64,
        );
    }

    if let Some(q) = qant_mean {
        println!(
            "\nQA-NT mean response: {q:.0} ms — every node decided for itself what to \
             offer,\nwithout disclosing load, capabilities or prices to anyone."
        );
    }
}
