//! Partial deployment: §4 claims QA-NT "can even work without problems in
//! cases where only a subset of the nodes is using QA-NT, in which case it
//! will still optimize global system throughput by modifying the behavior
//! of only those nodes."
//!
//! We run the near-capacity sinusoid with 0 %, 50 % and 100 % of nodes
//! participating in the market (non-participants always offer) and watch
//! mean response improve monotonically-ish with adoption.
//!
//! ```sh
//! cargo run --example partial_deployment
//! ```

use query_markets::prelude::*;
use query_markets::sim::experiments::two_class_trace;

fn main() {
    let mut config = SimConfig::small_test(21);
    config.num_nodes = 30;
    let scenario = Scenario::two_class(config, TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 2.5, 30);
    println!(
        "{} queries at 250% of capacity, 30 nodes, varying QA-NT adoption\n",
        trace.len()
    );

    println!(
        "{:>10}  {:>12}  {:>10}  {:>8}",
        "adoption", "mean (ms)", "completed", "retries"
    );
    for adoption_pct in [0u32, 50, 100] {
        let mut federation = Federation::new(&scenario, MechanismKind::QaNt, &trace);
        federation.restrict_market_to(|n| n.0 * 100 < adoption_pct * 30);
        let outcome = federation.run(&trace);
        let m = &outcome.metrics;
        println!(
            "{:>9}%  {:>12.0}  {:>10}  {:>8}",
            adoption_pct,
            m.mean_response_ms().unwrap_or(f64::NAN),
            m.completed,
            m.retries,
        );
    }

    println!(
        "\n0% adoption degenerates to always-offer best-completion assignment; 100%\n\
         engages admission control fleet-wide. Partial adoption exhibits free-riding:\n\
         market nodes shed load onto the always-offer rest, which then congests —\n\
         participants protect themselves either way, which is the §4 incentive to adopt."
    );
}
