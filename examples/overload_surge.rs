//! Overload surge: the scenario from the paper's introduction — "there are
//! always cases where load temporarily exceeds … even total system
//! capacity … due to multiple node failures or singularities of the
//! business logic".
//!
//! We run a flash crowd at 2.5× capacity, kill two nodes mid-surge, and
//! watch how QA-NT's admission control keeps per-period throughput pinned
//! at capacity while Greedy's node queues balloon.
//!
//! ```sh
//! cargo run --example overload_surge
//! ```

use query_markets::prelude::*;
use query_markets::sim::experiments::two_class_trace;

fn main() {
    let mut config = SimConfig::small_test(7);
    config.num_nodes = 20;
    let scenario = Scenario::two_class(config, TwoClassParams::default());

    // 2.5× overload for 30 s (virtual).
    let trace = two_class_trace(&scenario, 0.05, 2.5, 30);
    println!(
        "flash crowd: {} queries in 30 s against a federation sized for ~{:.0} q/s\n",
        trace.len(),
        scenario.capacity_qps(&[2.0 / 3.0, 1.0 / 3.0])
    );

    for mechanism in [MechanismKind::QaNt, MechanismKind::Greedy] {
        let mut federation = Federation::new(&scenario, mechanism, &trace);
        // Two nodes die 10 s into the surge.
        federation.kill_node_at(NodeId(3), SimTime::from_secs(10));
        federation.kill_node_at(NodeId(11), SimTime::from_secs(10));
        let outcome = federation.run(&trace);
        let m = &outcome.metrics;
        println!("== {mechanism}");
        println!(
            "   completed {} / {}   mean response {:.0} ms   retries {}   orphaned-by-failure counted unserved: {}",
            m.completed,
            trace.len(),
            m.mean_response_ms().unwrap_or(f64::NAN),
            m.retries,
            m.unserved,
        );
        // Throughput trace: queries finished per half-second around the
        // failure window.
        let series = m.executed_per_period();
        let window: Vec<u64> = series.iter().copied().skip(15).take(14).collect();
        println!("   periods 15..29 (failure at period 20): {window:?}\n");
    }

    println!(
        "QA-NT's deferred queries re-enter the market next period and find the surviving\n\
         nodes; the overload ends as soon as capacity allows (the paper's Fig. 1 point:\n\
         optimizing throughput also shortens the overload itself)."
    );
}
