//! # query-markets — autonomic query allocation by microeconomics
//!
//! A full reproduction of *Autonomic Query Allocation based on
//! Microeconomics Principles* (Pentaris & Ioannidis, ICDE 2007): the QA-NT
//! query-market allocator, every baseline the paper compares against, the
//! 100-node federation simulator of §5.1, and a threaded five-node
//! deployment over a from-scratch relational engine reproducing §5.2.
//!
//! ## The idea
//!
//! In a federation of autonomous DBMSs, load balancing equalizes node load
//! but does not maximize throughput. QA-NT instead treats queries as
//! commodities in a *competitive market*: each server keeps **private**
//! per-class prices, solves a profit-maximisation problem each period to
//! decide what it will offer to evaluate, and adjusts prices from trading
//! failures alone (rejection → price up; unsold supply → price down). By
//! the First Theorem of Welfare Economics the market steers the federation
//! toward Pareto-optimal allocations — without any node disclosing load,
//! capabilities or prices.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`economics`](qa_economics) | price/quantity vectors, supply sets, eq.-4 solvers, Pareto optimality, tâtonnement & non-tâtonnement dynamics, welfare-theorem checks |
//! | [`simnet`](qa_simnet) | discrete-event kernel: virtual clock, event queue, RNG, distributions, link model, statistics |
//! | [`workload`](qa_workload) | query classes, synthetic datasets, sinusoid / zipf / uniform arrival processes, traces |
//! | [`core`](qa_core) | QA-NT itself plus Greedy, Random, Round-robin, BNQRD, two-probes and Markov baselines; plan-history estimator |
//! | [`sim`](qa_sim) | the §5.1 federation simulator and every figure's experiment |
//! | [`minidb`](qa_minidb) | a real SQL engine: parser, optimizer, EXPLAIN, executors |
//! | [`cluster`](qa_cluster) | the §5.2 threaded deployment over live engines |
//!
//! ## Quickstart
//!
//! Run a small federation under QA-NT and Greedy and compare:
//!
//! ```
//! use query_markets::prelude::*;
//!
//! let config = SimConfig::small_test(7);
//! let scenario = Scenario::two_class(config, TwoClassParams::default());
//! let trace = two_class_trace(&scenario, 0.05, 0.8, 10);
//! let qant = Federation::new(&scenario, MechanismKind::QaNt, &trace).run(&trace);
//! let greedy = Federation::new(&scenario, MechanismKind::Greedy, &trace).run(&trace);
//! assert!(qant.metrics.completed > 0 && greedy.metrics.completed > 0);
//! ```
//!
//! See `examples/` for realistic scenarios and `crates/bench/src/bin/` for
//! the per-figure reproduction harness.

pub use qa_cluster as cluster;
pub use qa_core as core;
pub use qa_economics as economics;
pub use qa_minidb as minidb;
pub use qa_net as net;
pub use qa_sim as sim;
pub use qa_simnet as simnet;
pub use qa_workload as workload;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use qa_core::{MechanismKind, QantConfig, QantNode};
    pub use qa_economics::{PriceVector, QuantityVector};
    pub use qa_minidb::Database;
    pub use qa_sim::config::SimConfig;
    pub use qa_sim::experiments::two_class_trace;
    pub use qa_sim::federation::{Federation, RunOutcome};
    pub use qa_sim::scenario::{Scenario, TwoClassParams};
    pub use qa_simnet::{DetRng, FaultPlan, LinkFaults, OutageWindow, SimDuration, SimTime};
    pub use qa_workload::{ClassId, NodeId, Trace};
}
