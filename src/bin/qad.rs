//! One federation node as an OS process; see `qa_cluster::qad`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(qa_cluster::qad::qad_main(&args));
}
