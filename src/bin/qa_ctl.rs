//! Operator tooling for a multi-process federation; see `qa_cluster::ctl`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(qa_cluster::ctl::ctl_main(&args));
}
