//! The parallel-sweep determinism contract: fanning sweep cells over any
//! number of worker threads must leave the serialized results
//! **byte-identical** to the serial loop.
//!
//! Each test renders results through the same `ToJson::pretty()` path the
//! bench bins use for their `bench_results/*.json` files, so equality
//! here is equality of the shipped artifacts. Thread budgets are pinned
//! via [`Sweep::with_threads`] — not the `QA_THREADS` env var — because
//! the test harness runs tests concurrently and env mutation would race.

use qa_bench::Sweep;
use qa_core::MechanismKind;
use qa_sim::config::SimConfig;
use qa_sim::experiments::{
    fig3_sinusoid_workload, fig4_all_algorithms, fig4_summarize, fig4_workload, fig5a_load_sweep,
    fig5a_point, fig6_point, fig6_scenario, fig6_zipf_sweep, run_cell, scale_point, scale_trace,
    scale_world, two_class_trace,
};
use qa_sim::federation::Federation;
use qa_sim::scenario::{Scenario, TwoClassParams};
use qa_sim::sharded::ShardPlan;
use qa_simnet::json::ToJson;

const THREADS: [usize; 3] = [1, 2, 8];

#[test]
fn fig5a_json_is_identical_across_thread_counts() {
    let config = SimConfig::small_test(2007);
    let fractions = [0.3, 0.8, 1.5];
    // The retained serial entry point is the reference.
    let reference = fig5a_load_sweep(&config, &fractions, 8).to_json().pretty();
    let scenario = Scenario::two_class(config, TwoClassParams::default());
    for threads in THREADS {
        let pts =
            Sweep::with_threads(threads).map(&fractions, |_, &f| fig5a_point(&scenario, f, 8));
        assert_eq!(
            pts.to_json().pretty(),
            reference,
            "fig5a diverged at {threads} threads"
        );
    }
}

#[test]
fn fig4_json_is_identical_across_thread_counts() {
    let config = SimConfig::small_test(2007);
    let reference = fig4_all_algorithms(&config, 10).to_json().pretty();
    let (scenario, trace) = fig4_workload(&config, 10);
    for threads in THREADS {
        let outcomes = Sweep::with_threads(threads).map(&MechanismKind::DYNAMIC, |_, &m| {
            run_cell(&scenario, &trace, m)
        });
        assert_eq!(
            fig4_summarize(&outcomes).to_json().pretty(),
            reference,
            "fig4 diverged at {threads} threads"
        );
    }
}

#[test]
fn fig6_json_is_identical_across_thread_counts() {
    let mut config = SimConfig::small_test(2007);
    config.num_nodes = 20;
    let gaps = [2_000u64, 10_000];
    let reference = fig6_zipf_sweep(&config, &gaps, 200).to_json().pretty();
    let scenario = fig6_scenario(&config);
    for threads in THREADS {
        let pts = Sweep::with_threads(threads).map(&gaps, |_, &g| fig6_point(&scenario, g, 200));
        assert_eq!(
            pts.to_json().pretty(),
            reference,
            "fig6 diverged at {threads} threads"
        );
    }
}

#[test]
fn fig3_json_is_byte_identical_across_runs() {
    // The fig3 artifact is pure workload generation — no federation, no
    // threads — but it seeds every downstream figure, so its bytes are
    // pinned here: two fresh generations must serialize identically.
    let config = SimConfig::small_test(2007);
    let reference = fig3_sinusoid_workload(&config, 0.05, 0.6, 20)
        .to_json()
        .pretty();
    let again = fig3_sinusoid_workload(&config, 0.05, 0.6, 20)
        .to_json()
        .pretty();
    assert_eq!(again, reference, "fig3 workload diverged between runs");
}

#[test]
fn sharded_single_shard_is_byte_identical_to_flat_engine() {
    // The S = 1 contract: the sharded window loop must replay the flat
    // event loop exactly — same market jitter, same event order, same
    // Debug-formatted outcome — on the artifact-relevant scale world.
    let scenario = scale_world(60, 2007);
    let trace = scale_trace(&scenario, 10);
    let flat = Federation::new(&scenario, MechanismKind::QaNt, &trace).run(&trace);
    let sharded = ShardPlan::build(&scenario, 1).run_with_budget(&trace, 1);
    assert_eq!(format!("{:?}", sharded.outcome), format!("{flat:?}"));
}

#[test]
fn sharded_scale_points_are_identical_across_thread_budgets() {
    // The fig_scale determinism artifact: the timing-free point of any
    // (size, shards) cell must serialize identically at any total thread
    // budget. `ShardPlan::run_with_budget` pins the budget explicitly —
    // env mutation would race the concurrent test harness.
    let scenario = scale_world(60, 2007);
    let trace = scale_trace(&scenario, 10);
    for shards in [1, 4] {
        let plan = ShardPlan::build(&scenario, shards);
        let reference = {
            let out = plan.run_with_budget(&trace, 1);
            (format!("{:?}", out.outcome), out.signal_history)
        };
        for budget in [2, 8] {
            let out = plan.run_with_budget(&trace, budget);
            assert_eq!(
                (format!("{:?}", out.outcome), out.signal_history),
                reference,
                "sharded S={shards} diverged at budget {budget}"
            );
        }
        // And the JSON projection the sweep writes (timing fields are
        // zero until the harness stamps them, so this is the determinism
        // artifact's exact serialization).
        let a = scale_point(&scenario, &trace, shards).to_json().pretty();
        let b = scale_point(&scenario, &trace, shards).to_json().pretty();
        assert_eq!(a, b, "scale_point not reproducible at S={shards}");
    }
}

#[test]
fn intra_period_solves_are_identical_across_thread_budgets() {
    // The federation parallelizes the per-node eq.-4 supply solves inside
    // a period once the node count crosses its internal threshold (64).
    // 96 nodes with telemetry off engages that path; the run outcome must
    // not depend on the intra-run thread budget.
    let mut config = SimConfig::small_test(2007);
    config.num_nodes = 96;
    let scenario = Scenario::two_class(config, TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 0.8, 4);
    let run = |threads: usize| {
        let mut f = Federation::new(&scenario, MechanismKind::QaNt, &trace);
        f.set_intra_threads(threads);
        let outcome = f.run(&trace);
        format!("{:?}", outcome)
    };
    let reference = run(1);
    for threads in [2, 8] {
        assert_eq!(
            run(threads),
            reference,
            "federation run diverged at {threads} intra threads"
        );
    }
}
