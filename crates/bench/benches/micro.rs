//! Criterion microbenchmarks for the hot paths of the allocation stack:
//!
//! * the eq.-4 supply solvers (greedy vs exact DP),
//! * the non-tâtonnement price adjustment,
//! * the per-query allocation decision of each mechanism (end-to-end
//!   simulator arrival handling),
//! * minidb: parse/plan/execute of a representative star query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qa_core::MechanismKind;
use qa_economics::{
    solve_supply_greedy, solve_supply_optimal, LinearCapacitySet, NonTatonnementPricer,
    PriceVector, PricerConfig, QuantityVector,
};
use qa_sim::config::SimConfig;
use qa_sim::experiments::two_class_trace;
use qa_sim::federation::Federation;
use qa_sim::scenario::{Scenario, TwoClassParams};

fn bench_supply_solvers(c: &mut Criterion) {
    // 100 classes, realistic cost spread.
    let costs: Vec<Option<f64>> = (0..100)
        .map(|i| {
            if i % 10 == 0 {
                None
            } else {
                Some(50.0 + (i as f64 * 37.0) % 2_000.0)
            }
        })
        .collect();
    let set = LinearCapacitySet::new(costs, 500.0);
    let prices = PriceVector::from_prices((0..100).map(|i| 0.5 + (i as f64 % 7.0)).collect());

    c.bench_function("supply/greedy_100_classes", |b| {
        b.iter(|| solve_supply_greedy(black_box(&prices), black_box(&set), None))
    });
    c.bench_function("supply/optimal_dp_100_classes", |b| {
        b.iter(|| solve_supply_optimal(black_box(&prices), black_box(&set), None, 500))
    });
}

fn bench_price_adjustment(c: &mut Criterion) {
    c.bench_function("pricer/reject_and_period_end_100_classes", |b| {
        let leftover = QuantityVector::from_counts((0..100).map(|i| i % 3).collect());
        b.iter_batched(
            || NonTatonnementPricer::new(100, PricerConfig::default()),
            |mut p| {
                for k in 0..100 {
                    if k % 2 == 0 {
                        p.on_rejection(k);
                    }
                }
                p.on_period_end(black_box(&leftover));
                p
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_allocation(c: &mut Criterion) {
    let mut cfg = SimConfig::small_test(42);
    cfg.num_nodes = 50;
    let scenario = Scenario::two_class(cfg, TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 0.6, 10);
    let mut group = c.benchmark_group("allocate_run_10s_50_nodes");
    group.sample_size(10);
    for m in [
        MechanismKind::QaNt,
        MechanismKind::Greedy,
        MechanismKind::Random,
    ] {
        group.bench_function(m.to_string(), |b| {
            b.iter(|| {
                Federation::new(black_box(&scenario), m, black_box(&trace)).run(&trace)
            })
        });
    }
    group.finish();
}

fn bench_minidb(c: &mut Criterion) {
    use qa_minidb::{Database, Value};
    let mut db = Database::new();
    db.execute("CREATE TABLE fact (id INT, a INT, b FLOAT, g INT)").unwrap();
    db.execute("CREATE TABLE dim (id INT, v FLOAT)").unwrap();
    db.load_rows(
        "fact",
        (0..2_000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 997),
                    Value::Float(i as f64),
                    Value::Int(i % 20),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.load_rows(
        "dim",
        (0..500).map(|i| vec![Value::Int(i * 4), Value::Float(i as f64)]).collect(),
    )
    .unwrap();
    let sql = "SELECT f.g, COUNT(*), SUM(d.v) FROM fact AS f JOIN dim AS d ON f.id = d.id \
               WHERE f.a > 100 GROUP BY f.g ORDER BY f.g";

    c.bench_function("minidb/plan_star_query", |b| {
        b.iter(|| db.plan(black_box(sql)).unwrap())
    });
    c.bench_function("minidb/explain_star_query", |b| {
        b.iter(|| db.explain(black_box(sql)).unwrap())
    });
    c.bench_function("minidb/execute_star_query_2k_rows", |b| {
        b.iter(|| db.query(black_box(sql)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_supply_solvers,
    bench_price_adjustment,
    bench_allocation,
    bench_minidb
);
criterion_main!(benches);
