//! Thin `harness = false` wrapper over [`qa_bench::micro`], so
//! `cargo bench` and the `perf_baseline` bin time the same cases.

fn main() {
    qa_bench::micro::run_all();
}
