//! Microbenchmarks for the hot paths of the allocation stack:
//!
//! * the eq.-4 supply solvers (greedy vs exact DP),
//! * the non-tâtonnement price adjustment,
//! * the per-query allocation decision of each mechanism (end-to-end
//!   simulator arrival handling),
//! * telemetry: the disabled-path overhead contract (an emit with no
//!   sink installed must cost one `Option` branch — the closure never
//!   runs) against the enabled path for contrast,
//! * minidb: parse/plan/execute of a representative star query.
//!
//! A plain `harness = false` timing binary (the hermetic-build substitute
//! for criterion): each case is warmed up, then timed over enough
//! iterations to smooth scheduler noise, reporting mean ns/iter. Set
//! `QA_BENCH_SECONDS` to change the per-case time budget (default 1s;
//! `cargo test`/`cargo bench` smoke-runs use the same binary).

use qa_core::MechanismKind;
use qa_economics::{
    solve_supply_greedy, solve_supply_optimal, LinearCapacitySet, NonTatonnementPricer,
    PriceVector, PricerConfig, QuantityVector,
};
use qa_sim::config::SimConfig;
use qa_sim::experiments::two_class_trace;
use qa_sim::federation::Federation;
use qa_sim::scenario::{Scenario, TwoClassParams};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-case time budget.
fn budget() -> Duration {
    let secs = std::env::var("QA_BENCH_SECONDS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    Duration::from_secs_f64(secs.clamp(0.05, 120.0))
}

/// Times `f` by doubling batch sizes until the budget is spent; prints the
/// mean ns/iter of the largest batch (warm caches, amortized clock reads).
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    let budget = budget();
    // Warm-up: one call, also yields a duration estimate.
    let start = Instant::now();
    black_box(f());
    let mut per_iter = start.elapsed().max(Duration::from_nanos(1));

    let mut batch: u64 = 1;
    let started = Instant::now();
    let mut last = per_iter;
    while started.elapsed() < budget {
        // Size the batch to ~1/4 of the remaining budget, at least 1.
        let remaining = budget.saturating_sub(started.elapsed());
        batch = ((remaining.as_secs_f64() / 4.0 / per_iter.as_secs_f64()) as u64).max(1);
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        last = t.elapsed() / (batch as u32).max(1);
        per_iter = last.max(Duration::from_nanos(1));
    }
    println!(
        "{name:<44} {:>12.0} ns/iter  ({batch} iters/batch)",
        last.as_nanos() as f64
    );
}

fn bench_supply_solvers() {
    // 100 classes, realistic cost spread.
    let costs: Vec<Option<f64>> = (0..100)
        .map(|i| {
            if i % 10 == 0 {
                None
            } else {
                Some(50.0 + (i as f64 * 37.0) % 2_000.0)
            }
        })
        .collect();
    let set = LinearCapacitySet::new(costs, 500.0);
    let prices = PriceVector::from_prices((0..100).map(|i| 0.5 + (i as f64 % 7.0)).collect());

    bench("supply/greedy_100_classes", || {
        solve_supply_greedy(black_box(&prices), black_box(&set), None)
    });
    bench("supply/optimal_dp_100_classes", || {
        solve_supply_optimal(black_box(&prices), black_box(&set), None, 500)
    });
}

fn bench_price_adjustment() {
    let leftover = QuantityVector::from_counts((0..100).map(|i| i % 3).collect());
    bench("pricer/reject_and_period_end_100_classes", || {
        let mut p = NonTatonnementPricer::new(100, PricerConfig::default());
        for k in 0..100 {
            if k % 2 == 0 {
                p.on_rejection(k);
            }
        }
        p.on_period_end(black_box(&leftover));
        p
    });
}

fn bench_allocation() {
    let mut cfg = SimConfig::small_test(42);
    cfg.num_nodes = 50;
    let scenario = Scenario::two_class(cfg, TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 0.6, 10);
    for m in [
        MechanismKind::QaNt,
        MechanismKind::Greedy,
        MechanismKind::Random,
    ] {
        bench(&format!("allocate_run_10s_50_nodes/{m}"), || {
            Federation::new(black_box(&scenario), m, black_box(&trace)).run(&trace)
        });
    }
}

fn bench_telemetry() {
    use qa_simnet::telemetry::{CountingSink, PriceReason, Telemetry, TelemetryEvent};

    // The zero-cost contract: with no sink installed, an emit is one
    // `Option` branch and the event-building closure never runs. Compare
    // against the pricer baseline above (which runs with telemetry
    // disabled) to see the overhead is unmeasurable.
    let disabled = Telemetry::disabled();
    bench("telemetry/emit_disabled", || {
        disabled.emit(|| TelemetryEvent::PriceAdjusted {
            node: black_box(3),
            class: 7,
            old: 1.0,
            new: 1.1,
            reason: PriceReason::Rejection,
        });
    });
    bench("telemetry/span_disabled", || disabled.span("bench.noop"));

    // Enabled path for contrast: event built, sink invoked (counting
    // sink, so no allocation growth distorts the numbers).
    let enabled = Telemetry::with_sink(Box::new(CountingSink::new()));
    bench("telemetry/emit_enabled_counting_sink", || {
        enabled.emit(|| TelemetryEvent::PriceAdjusted {
            node: black_box(3),
            class: 7,
            old: 1.0,
            new: 1.1,
            reason: PriceReason::Rejection,
        });
    });
    bench("telemetry/span_enabled", || enabled.span("bench.span"));

    // The full pricer loop with telemetry attached to a counting sink —
    // the realistic "tracing a run" cost next to
    // pricer/reject_and_period_end_100_classes.
    let leftover = QuantityVector::from_counts((0..100).map(|i| i % 3).collect());
    bench("pricer/reject_and_period_end_traced", || {
        let mut p = NonTatonnementPricer::new(100, PricerConfig::default());
        p.set_telemetry(enabled.with_label(0));
        for k in 0..100 {
            if k % 2 == 0 {
                p.on_rejection(k);
            }
        }
        p.on_period_end(black_box(&leftover));
        p
    });
}

fn bench_minidb() {
    use qa_minidb::{Database, Value};
    let mut db = Database::new();
    db.execute("CREATE TABLE fact (id INT, a INT, b FLOAT, g INT)")
        .unwrap();
    db.execute("CREATE TABLE dim (id INT, v FLOAT)").unwrap();
    db.load_rows(
        "fact",
        (0..2_000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 997),
                    Value::Float(i as f64),
                    Value::Int(i % 20),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.load_rows(
        "dim",
        (0..500)
            .map(|i| vec![Value::Int(i * 4), Value::Float(i as f64)])
            .collect(),
    )
    .unwrap();
    let sql = "SELECT f.g, COUNT(*), SUM(d.v) FROM fact AS f JOIN dim AS d ON f.id = d.id \
               WHERE f.a > 100 GROUP BY f.g ORDER BY f.g";

    bench("minidb/plan_star_query", || {
        db.plan(black_box(sql)).unwrap()
    });
    bench("minidb/explain_star_query", || {
        db.explain(black_box(sql)).unwrap()
    });
    bench("minidb/execute_star_query_2k_rows", || {
        db.query(black_box(sql)).unwrap()
    });
}

fn main() {
    println!("qa-bench micro (budget {:?}/case)\n", budget());
    bench_supply_solvers();
    bench_price_adjustment();
    bench_allocation();
    bench_telemetry();
    bench_minidb();
}
