//! # qa-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus a
//! plain timing harness (`benches/micro.rs`). Each binary prints the
//! figure's rows/series as a text table and writes a JSON copy under
//! `bench_results/`.
//!
//! Scale control: every binary honours `QA_SCALE`:
//!
//! * `ci` (default) — small federation / short horizon, finishes in
//!   seconds; shapes hold, absolute numbers are noisier,
//! * `full` — the paper-scale configuration (100 nodes, full sweeps);
//!   minutes of runtime.

use qa_simnet::json::ToJson;
use qa_simnet::{par_map_indexed_with, thread_budget};
use std::path::PathBuf;

pub mod micro;

/// Fans the independent cells of a sweep (parameter grid × mechanisms ×
/// seeds) over a scoped worker pool.
///
/// Cells must be pure functions of their inputs — every cell derives its
/// randomness from the scenario seed, never from shared mutable state —
/// so fanning them out changes nothing about the numbers. Results come
/// back in input order, which keeps the rendered tables and JSON files
/// **byte-identical** to the serial run at any thread count.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    threads: usize,
}

impl Sweep {
    /// Budget from the `QA_THREADS` env var; default all available cores.
    /// `QA_THREADS=1` reproduces the exact pre-parallel behaviour (cells
    /// run inline on the caller thread, no workers spawned).
    pub fn from_env() -> Sweep {
        Sweep {
            threads: thread_budget(),
        }
    }

    /// A sweep pinned to an explicit thread budget (determinism tests
    /// compare budgets without touching the process environment).
    pub fn with_threads(threads: usize) -> Sweep {
        assert!(threads >= 1, "thread budget must be at least 1");
        Sweep { threads }
    }

    /// The configured worker budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f(index, cell)` over `cells`, returning results in input
    /// order regardless of which worker ran which cell.
    pub fn map<T, R, F>(&self, cells: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        par_map_indexed_with(self.threads, cells, f)
    }
}

/// Experiment scale selected via the `QA_SCALE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small and fast.
    Ci,
    /// Paper-scale.
    Full,
}

/// Reads `QA_SCALE` (default [`Scale::Ci`]).
pub fn scale() -> Scale {
    match std::env::var("QA_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Ci,
    }
}

/// Writes a JSON result file under `bench_results/` (created on demand)
/// and returns its path.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("bench_results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.to_json().pretty())?;
    Ok(path)
}

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with sensible precision for tables.
pub fn fmt_ms(v: f64) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.contains("longer"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn fmt_ms_precision() {
        assert_eq!(fmt_ms(1234.6), "1235");
        assert_eq!(fmt_ms(12.345), "12.35");
        assert_eq!(fmt_ms(f64::NAN), "n/a");
    }

    #[test]
    fn sweep_map_preserves_input_order() {
        let cells: Vec<u32> = (0..64).collect();
        let serial = Sweep::with_threads(1).map(&cells, |i, &c| (i, c * 2));
        for threads in [2, 8] {
            let par = Sweep::with_threads(threads).map(&cells, |i, &c| (i, c * 2));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn sweep_from_env_has_positive_budget() {
        assert!(Sweep::from_env().threads() >= 1);
    }

    #[test]
    fn scale_defaults_to_ci() {
        // Unless the caller's environment says otherwise.
        if std::env::var("QA_SCALE").is_err() {
            assert_eq!(scale(), Scale::Ci);
        }
    }
}
