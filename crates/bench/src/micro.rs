//! Microbenchmarks for the hot paths of the allocation stack:
//!
//! * the eq.-4 supply solvers (greedy vs exact DP, uncached vs the
//!   density-order cache),
//! * the non-tâtonnement price adjustment,
//! * one full market period of the federation (supply solves + per-query
//!   allocation for every arrival of a 500 ms window),
//! * the event queue's schedule/pop cycle,
//! * the per-query allocation decision of each mechanism (end-to-end
//!   simulator arrival handling),
//! * telemetry: the disabled-path overhead contract (an emit with no
//!   sink installed must cost one `Option` branch — the closure never
//!   runs) against the enabled path for contrast,
//! * minidb: parse/plan/execute of a representative star query.
//!
//! A plain timing loop (the hermetic-build substitute for criterion):
//! each case is warmed up, then timed over enough iterations to smooth
//! scheduler noise, reporting mean ns/iter. Set `QA_BENCH_SECONDS` to
//! change the per-case time budget (default 1 s). Both the
//! `harness = false` bench binary (`benches/micro.rs`) and the
//! `perf_baseline` bin run this suite, so the pinned baseline and ad-hoc
//! runs measure the same cases.

use qa_core::MechanismKind;
use qa_economics::{
    solve_supply_greedy, solve_supply_greedy_cached, solve_supply_optimal, DensityOrderCache,
    LinearCapacitySet, NonTatonnementPricer, PriceVector, PricerConfig, QuantityVector,
};
use qa_sim::config::{BrokerConfig, SimConfig};
use qa_sim::experiments::two_class_trace;
use qa_sim::federation::Federation;
use qa_sim::metrics::RunMetrics;
use qa_sim::scenario::{Scenario, TwoClassParams};
use qa_sim::sharded::{ShardPlan, ShardRunOptions};
use qa_sim::BrokerTier;
use qa_simnet::{EventQueue, SimTime};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One timed case: mean nanoseconds per iteration of the final batch.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Case name (`area/case` convention).
    pub name: String,
    /// Mean ns/iter of the last (largest) batch.
    pub ns_per_iter: f64,
}

qa_simnet::impl_to_json!(MicroResult { name, ns_per_iter });

/// Per-case time budget from `QA_BENCH_SECONDS` (default 1 s, clamped to
/// 0.05–120 s).
pub fn budget() -> Duration {
    let secs = std::env::var("QA_BENCH_SECONDS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    Duration::from_secs_f64(secs.clamp(0.05, 120.0))
}

/// Times `f` in batches until the budget is spent; prints and returns the
/// *minimum* mean ns/iter across batches. The batch sizing shrinks
/// geometrically as the budget runs out (the last batch can be a single
/// iteration), so the last batch is the noisiest — the per-batch minimum
/// is the stable statistic for regression gating: noise only ever
/// inflates a timing, never deflates it.
fn bench<R>(out: &mut Vec<MicroResult>, name: &str, f: impl FnMut() -> R) {
    bench_scaled(out, name, 1.0, f)
}

/// Like [`bench`], but reports `ns/iter ÷ units` — for cases where one
/// closure call covers `units` repetitions of the thing being measured
/// (e.g. a 16-period simulation timed once, reported per period).
fn bench_scaled<R>(out: &mut Vec<MicroResult>, name: &str, units: f64, mut f: impl FnMut() -> R) {
    let budget = budget();
    // Warm-up: one call, also yields a duration estimate.
    let start = Instant::now();
    black_box(f());
    let mut per_iter = start.elapsed().max(Duration::from_nanos(1));

    let started = Instant::now();
    let mut best = f64::INFINITY;
    let mut iters_total: u64 = 0;
    while started.elapsed() < budget {
        // Size the batch to ~1/4 of the remaining budget, at least 1.
        let remaining = budget.saturating_sub(started.elapsed());
        let batch =
            ((remaining.as_secs_f64() / 4.0 / per_iter.as_secs_f64()) as u64).clamp(1, 1 << 24);
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let ns = t.elapsed().as_nanos() as f64 / batch as f64;
        best = best.min(ns);
        iters_total += batch;
        per_iter = Duration::from_secs_f64((ns / 1e9).max(1e-9));
    }
    let best = best / units;
    println!("{name:<44} {best:>12.0} ns/iter  ({iters_total} iters)");
    out.push(MicroResult {
        name: name.to_string(),
        ns_per_iter: best,
    });
}

fn bench_supply_solvers(out: &mut Vec<MicroResult>) {
    // 100 classes, realistic cost spread.
    let costs: Vec<Option<f64>> = (0..100)
        .map(|i| {
            if i % 10 == 0 {
                None
            } else {
                Some(50.0 + (i as f64 * 37.0) % 2_000.0)
            }
        })
        .collect();
    let set = LinearCapacitySet::new(costs, 500.0);
    let prices = PriceVector::from_prices((0..100).map(|i| 0.5 + (i as f64 % 7.0)).collect());

    bench(out, "supply/greedy_100_classes", || {
        solve_supply_greedy(black_box(&prices), black_box(&set), None)
    });
    // The steady-state QA-NT shape: prices unchanged between solves, so
    // the density-order cache skips the sort entirely.
    let mut cache = DensityOrderCache::new();
    bench(out, "supply/greedy_100_classes_cached", || {
        solve_supply_greedy_cached(black_box(&prices), black_box(&set), None, &mut cache)
    });
    bench(out, "supply/optimal_dp_100_classes", || {
        solve_supply_optimal(black_box(&prices), black_box(&set), None, 500)
    });
}

fn bench_price_adjustment(out: &mut Vec<MicroResult>) {
    let leftover = QuantityVector::from_counts((0..100).map(|i| i % 3).collect());
    bench(out, "pricer/reject_and_period_end_100_classes", || {
        let mut p = NonTatonnementPricer::new(100, PricerConfig::default());
        for k in 0..100 {
            if k % 2 == 0 {
                p.on_rejection(k);
            }
        }
        p.on_period_end(black_box(&leftover));
        p
    });
}

fn bench_event_queue(out: &mut Vec<MicroResult>) {
    // The kernel's innermost loop: schedule a burst, drain it in time
    // order. 256 events per iteration keeps the heap realistically deep.
    bench(out, "event_queue/schedule_pop_256", || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..256u64 {
            // Scattered (not sorted) insertion order exercises sift-up.
            q.schedule(SimTime::from_micros((i * 7919) % 4096), i);
        }
        let mut acc = 0u64;
        while let Some(ev) = q.pop() {
            acc = acc.wrapping_add(ev.payload);
        }
        acc
    });
    // The simulator's actual event shape: schedule/pop interleaved, with
    // most inserts landing near the clock (completions ~one period out)
    // so the calendar's bucket ring absorbs them without growth.
    bench(out, "event_queue/calendar_pop_256", || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..64u64 {
            q.schedule(SimTime::from_micros(i * 13), i);
        }
        let mut acc = 0u64;
        for i in 0..192u64 {
            let ev = q.pop().expect("queue stays non-empty");
            acc = acc.wrapping_add(ev.payload);
            q.schedule(
                ev.time + qa_simnet::SimDuration::from_micros(500 + (i * 7919) % 4096),
                i,
            );
        }
        while let Some(ev) = q.pop() {
            acc = acc.wrapping_add(ev.payload);
        }
        acc
    });
}

fn bench_federation_period(out: &mut Vec<MicroResult>) {
    // Steady-state market period: each closure call simulates sixteen
    // 500 ms periods under 0.8 load and the reported figure is the
    // amortized per-period cost (total ÷ 16). Sixteen periods dilute the
    // one-off federation construction to a few percent, so the number
    // tracks what the throughput work targets: arrival handling, offer
    // sweeps, boundary price updates and eq.-4 supply solves.
    const PERIODS: f64 = 16.0;
    let mut cfg = SimConfig::small_test(42);
    cfg.num_nodes = 50;
    let scenario = Scenario::two_class(cfg, TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 0.8, 8);
    bench_scaled(out, "federation/single_period_50_nodes", PERIODS, || {
        Federation::new(black_box(&scenario), MechanismKind::QaNt, black_box(&trace)).run(&trace)
    });
    // Paper-scale-plus federation: 500 nodes stresses the struct-of-arrays
    // sweeps (capable filter, offer collection) and the per-period supply
    // solves far past the 50-node case.
    let mut cfg500 = SimConfig::small_test(42);
    cfg500.num_nodes = 500;
    let scenario500 = Scenario::two_class(cfg500, TwoClassParams::default());
    let trace500 = two_class_trace(&scenario500, 0.05, 0.8, 8);
    bench_scaled(out, "federation/single_period_500_nodes", PERIODS, || {
        Federation::new(
            black_box(&scenario500),
            MechanismKind::QaNt,
            black_box(&trace500),
        )
        .run(&trace500)
    });
}

fn bench_sharded(out: &mut Vec<MicroResult>) {
    // The regression gate for the sharded engine: the same 1000-node
    // world per period, flat (S = 1 event loop) vs sharded (8 shards,
    // boundary-batched signals). The sharded figure must stay well under
    // the flat one — shorter per-query capable sweeps are the point.
    const PERIODS: f64 = 16.0;
    let mut cfg = SimConfig::small_test(42);
    cfg.num_nodes = 1_000;
    let scenario = Scenario::two_class(cfg, TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 0.8, 8);
    bench_scaled(out, "federation/single_period_1000_nodes", PERIODS, || {
        Federation::new(black_box(&scenario), MechanismKind::QaNt, black_box(&trace)).run(&trace)
    });
    let plan = ShardPlan::build(&scenario, 8);
    bench_scaled(
        out,
        "federation/single_period_1000_nodes_sharded",
        PERIODS,
        || plan.run(black_box(&trace)),
    );
    // Same world with the broker tier on top: the marginal cost of the
    // two-tier market over the raw-signal router must stay small — the
    // parent clears once per boundary, not per query.
    let broker_opts = ShardRunOptions {
        broker: Some(BrokerConfig::qant()),
        ..ShardRunOptions::default()
    };
    bench_scaled(
        out,
        "federation/single_period_1000_nodes_broker",
        PERIODS,
        || plan.run_with_options(black_box(&trace), &broker_opts),
    );
    // The epilogue's shard-index-order metrics merge, isolated: 8 shards'
    // worth of per-period series, per-class stats and origin Welfords
    // folded into one.
    let shard_metrics: Vec<RunMetrics> = (0..8)
        .map(|s| {
            let mut m = RunMetrics::new(qa_simnet::SimDuration::from_millis(500), 2);
            for i in 0..500u64 {
                m.record_completion_from(
                    qa_workload::ClassId((i % 2) as u32),
                    qa_workload::NodeId(((s * 37 + i as usize) % 125) as u32),
                    SimTime::from_millis(i * 16),
                    SimTime::from_millis(i * 16 + 900),
                );
            }
            m.messages = 4_000 + s as u64;
            m
        })
        .collect();
    bench(out, "shard/cross_shard_merge", || {
        let mut acc = shard_metrics[0].clone();
        for m in &shard_metrics[1..] {
            acc.merge_from(black_box(m));
        }
        acc
    });
}

fn bench_broker(out: &mut Vec<MicroResult>) {
    // One parent-market boundary clearing at realistic width: 16 broker
    // bids over 8 classes, demand sized to leave some excess so both the
    // fill loop and the price adjustment run. The tier persists across
    // iterations — steady-state clearing, the shape the sharded window
    // loop pays once per period.
    let mut tier = BrokerTier::new(
        8,
        &BrokerConfig::qant(),
        qa_simnet::telemetry::Telemetry::disabled(),
    );
    let home_shards: Vec<Vec<usize>> = (0..8).map(|_| (0..16).collect()).collect();
    let supply: Vec<Vec<u64>> = (0..16u64)
        .map(|s| (0..8u64).map(|k| 3 + (s * 7 + k) % 20).collect())
        .collect();
    let lnp: Vec<Vec<f64>> = (0..16)
        .map(|s| {
            (0..8)
                .map(|k| ((s * 13 + k * 5) % 17) as f64 / 8.0 - 1.0)
                .collect()
        })
        .collect();
    let demand: Vec<u64> = (0..8u64).map(|k| 150 + k * 10).collect();
    let mut weights: Vec<Vec<f64>> = (0..8).map(|_| vec![1.0; 16]).collect();
    bench(out, "broker/parent_clear_16_shards", || {
        tier.clear_window(
            black_box(&home_shards),
            black_box(&supply),
            black_box(&lnp),
            black_box(&demand),
            &mut weights,
        )
    });
}

fn bench_allocation(out: &mut Vec<MicroResult>) {
    let mut cfg = SimConfig::small_test(42);
    cfg.num_nodes = 50;
    let scenario = Scenario::two_class(cfg, TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 0.6, 10);
    for m in [
        MechanismKind::QaNt,
        MechanismKind::Greedy,
        MechanismKind::Random,
    ] {
        bench(out, &format!("allocate_run_10s_50_nodes/{m}"), || {
            Federation::new(black_box(&scenario), m, black_box(&trace)).run(&trace)
        });
    }
}

fn bench_telemetry(out: &mut Vec<MicroResult>) {
    use qa_simnet::telemetry::{CountingSink, PriceReason, Telemetry, TelemetryEvent};

    // The zero-cost contract: with no sink installed, an emit is one
    // `Option` branch and the event-building closure never runs. Compare
    // against the pricer baseline above (which runs with telemetry
    // disabled) to see the overhead is unmeasurable.
    let disabled = Telemetry::disabled();
    bench(out, "telemetry/emit_disabled", || {
        disabled.emit(|| TelemetryEvent::PriceAdjusted {
            node: black_box(3),
            class: 7,
            old: 1.0,
            new: 1.1,
            reason: PriceReason::Rejection,
        });
    });
    bench(out, "telemetry/span_disabled", || {
        disabled.span("bench.noop")
    });

    // Enabled path for contrast: event built, sink invoked (counting
    // sink, so no allocation growth distorts the numbers).
    let enabled = Telemetry::with_sink(Box::new(CountingSink::new()));
    bench(out, "telemetry/emit_enabled_counting_sink", || {
        enabled.emit(|| TelemetryEvent::PriceAdjusted {
            node: black_box(3),
            class: 7,
            old: 1.0,
            new: 1.1,
            reason: PriceReason::Rejection,
        });
    });
    bench(out, "telemetry/span_enabled", || enabled.span("bench.span"));

    // The full pricer loop with telemetry attached to a counting sink —
    // the realistic "tracing a run" cost next to
    // pricer/reject_and_period_end_100_classes.
    let leftover = QuantityVector::from_counts((0..100).map(|i| i % 3).collect());
    bench(out, "pricer/reject_and_period_end_traced", || {
        let mut p = NonTatonnementPricer::new(100, PricerConfig::default());
        p.set_telemetry(enabled.with_label(0));
        for k in 0..100 {
            if k % 2 == 0 {
                p.on_rejection(k);
            }
        }
        p.on_period_end(black_box(&leftover));
        p
    });
}

fn bench_minidb(out: &mut Vec<MicroResult>) {
    use qa_minidb::{Database, Value};
    let mut db = Database::new();
    db.execute("CREATE TABLE fact (id INT, a INT, b FLOAT, g INT)")
        .unwrap();
    db.execute("CREATE TABLE dim (id INT, v FLOAT)").unwrap();
    db.load_rows(
        "fact",
        (0..2_000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 997),
                    Value::Float(i as f64),
                    Value::Int(i % 20),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.load_rows(
        "dim",
        (0..500)
            .map(|i| vec![Value::Int(i * 4), Value::Float(i as f64)])
            .collect(),
    )
    .unwrap();
    let sql = "SELECT f.g, COUNT(*), SUM(d.v) FROM fact AS f JOIN dim AS d ON f.id = d.id \
               WHERE f.a > 100 GROUP BY f.g ORDER BY f.g";

    bench(out, "minidb/plan_star_query", || {
        db.plan(black_box(sql)).unwrap()
    });
    bench(out, "minidb/explain_star_query", || {
        db.explain(black_box(sql)).unwrap()
    });
    bench(out, "minidb/execute_star_query_2k_rows", || {
        db.query(black_box(sql)).unwrap()
    });
}

/// Runs every case, printing one line per case and returning the
/// measurements.
pub fn run_all() -> Vec<MicroResult> {
    println!("qa-bench micro (budget {:?}/case)\n", budget());
    let mut out = Vec::new();
    bench_supply_solvers(&mut out);
    bench_price_adjustment(&mut out);
    bench_event_queue(&mut out);
    bench_federation_period(&mut out);
    bench_sharded(&mut out);
    bench_broker(&mut out);
    bench_allocation(&mut out);
    bench_telemetry(&mut out);
    bench_minidb(&mut out);
    out
}
