//! Figure 5c: Q1 arrivals vs Q1 executions per half-second, near system
//! capacity — QA-NT tracks the load curve, Greedy falls behind.

use qa_bench::{render_table, scale, write_json, Scale, Sweep};
use qa_core::MechanismKind;
use qa_sim::config::SimConfig;
use qa_sim::experiments::{fig5c_from_outcomes, fig5c_workload, run_cell};

fn main() {
    let (config, secs) = match scale() {
        Scale::Ci => (SimConfig::small_test(2007), 15),
        Scale::Full => (SimConfig::paper_defaults(), 30),
    };
    let (scenario, trace) = fig5c_workload(&config, secs);
    let mechanisms = [MechanismKind::QaNt, MechanismKind::Greedy];
    let outcomes = Sweep::from_env().map(&mechanisms, |_, &m| run_cell(&scenario, &trace, m));
    let r = fig5c_from_outcomes(&config, &trace, &outcomes[0], &outcomes[1]);

    println!(
        "Figure 5c — Q1 arrivals vs executions per {} ms window\n",
        r.period_ms
    );
    let bins = r
        .arrivals_q1
        .len()
        .max(r.executed_q1_qant.len())
        .max(r.executed_q1_greedy.len());
    let get = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0).to_string();
    let rows: Vec<Vec<String>> = (0..bins)
        .map(|i| {
            vec![
                format!("{} ms", i as u64 * r.period_ms),
                get(&r.arrivals_q1, i),
                get(&r.executed_q1_qant, i),
                get(&r.executed_q1_greedy, i),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["t", "Q1 arrivals", "QA-NT exec", "Greedy exec"], &rows)
    );

    // Tracking error: total absolute deviation from the arrival curve.
    let err = |ex: &Vec<u64>| -> u64 {
        (0..bins)
            .map(|i| {
                let a = r.arrivals_q1.get(i).copied().unwrap_or(0);
                let e = ex.get(i).copied().unwrap_or(0);
                a.abs_diff(e)
            })
            .sum()
    };
    println!(
        "tracking error (Σ|arrivals−executed|): QA-NT {}, Greedy {} (paper: QA-NT tracks closely)",
        err(&r.executed_q1_qant),
        err(&r.executed_q1_greedy)
    );

    let path = write_json("fig5c_tracking", &r).expect("write result");
    println!("wrote {}", path.display());
}
