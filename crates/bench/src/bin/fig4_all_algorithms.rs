//! Figure 4: normalized average query response time of all algorithms.
//!
//! 0.05 Hz sinusoid with peak load slightly below total system capacity;
//! every dynamic mechanism runs the same trace; responses are normalized by
//! QA-NT's (the paper's y-axis).

use qa_bench::{fmt_ms, render_table, scale, write_json, Scale, Sweep};
use qa_core::MechanismKind;
use qa_sim::config::SimConfig;
use qa_sim::experiments::{fig4_summarize, fig4_workload, run_cell};

fn main() {
    let (config, secs) = match scale() {
        Scale::Ci => (SimConfig::small_test(2007), 30),
        Scale::Full => (SimConfig::paper_defaults(), 120),
    };
    let (scenario, trace) = fig4_workload(&config, secs);
    let outcomes = Sweep::from_env().map(&MechanismKind::DYNAMIC, |_, &m| {
        run_cell(&scenario, &trace, m)
    });
    let r = fig4_summarize(&outcomes);

    println!(
        "Figure 4 — normalized average query response time (0.05 Hz sinusoid, peak ≈ capacity)\n"
    );
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|m| {
            vec![
                m.mechanism.clone(),
                fmt_ms(m.mean_response_ms),
                format!("{:.2}", m.normalized_response),
                m.completed.to_string(),
                m.unserved.to_string(),
                format!("{:.1}", m.messages_per_query),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "mechanism",
                "mean (ms)",
                "normalized",
                "completed",
                "unserved",
                "msgs/query"
            ],
            &rows
        )
    );
    println!(
        "paper shape: QA-NT & Greedy far ahead; BNQRD mid; two-probes, round-robin, random worst"
    );

    let path = write_json("fig4_all_algorithms", &r).expect("write result");
    println!("wrote {}", path.display());
}
