//! `fig_scale`: throughput scaling of the sharded federation engine.
//!
//! Sweeps the federation size (100 → 10 000 nodes at full scale) and runs
//! the same trace through the engine flat (`S = 1`, byte-identical to the
//! pre-sharding event loop) and sharded, reporting wall-clock throughput
//! (periods/s, queries/s) and the market's convergence period.
//!
//! Two artifacts:
//! * `bench_results/fig_scale.json` — the full points, timings included;
//! * `bench_results/fig_scale_determinism.json` — the timing-free
//!   projection, byte-identical at any `QA_THREADS` and machine speed
//!   (the CI `scale-smoke` job diffs it across 1 vs 8 threads).
//!
//! `--quick` shrinks the sweep for CI (seconds, not minutes).

use qa_bench::{fmt_ms, render_table, write_json, Scale};
use qa_sim::experiments::{scale_point, scale_trace, scale_world, ScalePoint};
use std::time::Instant;

/// Cells as `(nodes, shards, horizon_secs)`. Each size runs flat (S = 1)
/// and sharded on the identical trace so the speedup column is
/// like-for-like.
fn cells(quick: bool) -> Vec<(usize, usize, u64)> {
    if quick {
        vec![(60, 1, 10), (60, 4, 10), (200, 1, 10), (200, 8, 10)]
    } else {
        vec![
            (100, 1, 60),
            (100, 8, 60),
            (300, 1, 60),
            (300, 8, 60),
            (1_000, 1, 120),
            (1_000, 16, 120),
            (3_000, 1, 60),
            (3_000, 16, 60),
            (10_000, 1, 20),
            (10_000, 16, 20),
        ]
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || qa_bench::scale() == Scale::Ci;
    let seed = 2007;
    let mut points: Vec<ScalePoint> = Vec::new();
    for (nodes, shards, secs) in cells(quick) {
        let scenario = scale_world(nodes, seed);
        let trace = scale_trace(&scenario, secs);
        let start = Instant::now();
        let mut p = scale_point(&scenario, &trace, shards);
        let elapsed = start.elapsed().as_secs_f64();
        p.elapsed_s = elapsed;
        p.periods_per_s = p.periods as f64 / elapsed.max(1e-9);
        p.queries_per_s = p.queries as f64 / elapsed.max(1e-9);
        eprintln!(
            "  {} nodes x S={}: {} queries in {:.2}s",
            nodes, shards, p.queries, elapsed
        );
        points.push(p);
    }

    println!("fig_scale — sharded engine throughput vs federation size\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            // Speedup vs the flat (S = 1) run of the same size, which by
            // construction precedes the sharded run in `points`.
            let flat = points
                .iter()
                .find(|q| q.nodes == p.nodes && q.shards == 1)
                .expect("every size has a flat row");
            vec![
                p.nodes.to_string(),
                p.shards.to_string(),
                p.queries.to_string(),
                format!("{:.2}", p.elapsed_s),
                format!("{:.0}", p.queries_per_s),
                format!("{:.0}", p.periods_per_s),
                format!("{:.2}x", flat.elapsed_s / p.elapsed_s.max(1e-9)),
                fmt_ms(p.mean_response_ms),
                if p.convergence_period < 0 {
                    "-".into()
                } else {
                    p.convergence_period.to_string()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "shards",
                "queries",
                "wall (s)",
                "queries/s",
                "periods/s",
                "speedup",
                "response",
                "conv. period"
            ],
            &rows
        )
    );

    let path = write_json("fig_scale", &points).expect("write result");
    println!("wrote {}", path.display());

    // Timing-free projection: what the CI byte-identity check compares
    // across thread budgets and shard layouts.
    let det: Vec<ScalePoint> = points
        .iter()
        .map(|p| ScalePoint {
            elapsed_s: 0.0,
            periods_per_s: 0.0,
            queries_per_s: 0.0,
            ..p.clone()
        })
        .collect();
    let path = write_json("fig_scale_determinism", &det).expect("write determinism artifact");
    println!("wrote {}", path.display());
}
