//! Figure 6: the heterogeneous zipf workload — Greedy's normalized
//! response vs per-class mean inter-arrival time (Table 3 world: 100
//! classes, 0–49 joins, 1 000 relations, ~5 mirrors).

use qa_bench::{fmt_ms, render_table, scale, write_json, Scale, Sweep};
use qa_sim::config::SimConfig;
use qa_sim::experiments::{fig6_point, fig6_scenario};

fn main() {
    let (config, gaps, max_queries): (SimConfig, Vec<u64>, usize) = match scale() {
        Scale::Ci => {
            let mut c = SimConfig::small_test(2007);
            c.num_nodes = 20;
            (c, vec![2_000, 10_000], 400)
        }
        Scale::Full => (
            SimConfig::paper_defaults(),
            vec![10, 100, 1_000, 2_500, 5_000, 10_000, 14_000, 17_000, 20_000],
            10_000,
        ),
    };
    let scenario = fig6_scenario(&config);
    let pts = Sweep::from_env().map(&gaps, |_, &gap| fig6_point(&scenario, gap, max_queries));

    println!("Figure 6 — zipf workload: Greedy normalized response vs inter-arrival time\n");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.0} ms", p.x),
                fmt_ms(p.qant_ms),
                fmt_ms(p.greedy_ms),
                format!("{:.3}", p.normalized_greedy),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["inter-arrival", "QA-NT (ms)", "Greedy (ms)", "greedy/qant"],
            &rows
        )
    );
    println!(
        "paper shape: QA-NT gains 13–26% under overload, gains vanish once the system is unloaded"
    );

    let path = write_json("fig6_zipf_sweep", &pts).expect("write result");
    println!("wrote {}", path.display());
}
