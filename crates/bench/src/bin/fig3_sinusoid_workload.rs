//! Figure 3: an example sinusoid workload.
//!
//! Prints Q1/Q2 arrivals per half-second for the canonical two-class
//! workload (0.05 Hz, 90° phase offset, peak Q1 = 2 × peak Q2).

use qa_bench::{render_table, scale, write_json, Scale, Sweep};
use qa_sim::config::SimConfig;
use qa_sim::experiments::{two_class_trace, Fig3Result};
use qa_sim::scenario::{Scenario, TwoClassParams};
use qa_workload::ClassId;

fn main() {
    let (config, secs) = match scale() {
        Scale::Ci => (SimConfig::small_test(2007), 40),
        Scale::Full => (SimConfig::paper_defaults(), 60),
    };
    let scenario = Scenario::two_class(config.clone(), TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 0.6, secs);
    let classes = [ClassId(0), ClassId(1)];
    let mut series = Sweep::from_env()
        .map(&classes, |_, &c| {
            trace.arrivals_per_period(config.period, Some(c))
        })
        .into_iter();
    let r = Fig3Result {
        period_ms: config.period.as_millis(),
        q1_per_period: series.next().expect("two series"),
        q2_per_period: series.next().expect("two series"),
    };

    println!(
        "Figure 3 — example sinusoid workload (arrivals per {} ms)\n",
        r.period_ms
    );
    let rows: Vec<Vec<String>> = r
        .q1_per_period
        .iter()
        .enumerate()
        .map(|(i, &q1)| {
            let t = i as u64 * r.period_ms;
            let q2 = r.q2_per_period.get(i).copied().unwrap_or(0);
            let bar = "#".repeat((q1 + q2) as usize / 2);
            vec![format!("{t} ms"), q1.to_string(), q2.to_string(), bar]
        })
        .collect();
    println!("{}", render_table(&["t", "Q1", "Q2", "total"], &rows));

    let q1: u64 = r.q1_per_period.iter().sum();
    let q2: u64 = r.q2_per_period.iter().sum();
    println!(
        "total Q1 = {q1}, total Q2 = {q2} (target ratio 2:1 ≈ {:.2})",
        q1 as f64 / q2.max(1) as f64
    );

    let path = write_json("fig3_sinusoid_workload", &r).expect("write result");
    println!("wrote {}", path.display());
}
