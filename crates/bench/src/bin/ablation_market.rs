//! Ablation bench for the market design choices DESIGN.md calls out:
//!
//! * per-node initial price **jitter** (σ = 0 vs default 1.5) — without it
//!   identical sellers flip their supply priorities in lockstep,
//! * period-end price **renormalization** — without it long overloads
//!   saturate the floor/ceiling clamps and erase relative prices,
//! * adjustment speed **λ**,
//! * the §5.1 **price-threshold** deployment mode.
//!
//! Each variant runs the near-capacity and 2× overload sinusoid scenarios;
//! lower mean response is better.

use qa_bench::{fmt_ms, render_table, scale, write_json, Scale, Sweep};
use qa_core::MechanismKind;
use qa_sim::config::SimConfig;
use qa_sim::experiments::{run_cell, two_class_trace};
use qa_sim::scenario::{Scenario, TwoClassParams};

struct AblationRow {
    variant: String,
    mean_ms_at_0_9: f64,
    mean_ms_at_2_0: f64,
    retries_at_2_0: u64,
}

qa_simnet::impl_to_json!(AblationRow {
    variant,
    mean_ms_at_0_9,
    mean_ms_at_2_0,
    retries_at_2_0
});

/// One cell: QA-NT under `config` at load `frac`; returns (mean ms,
/// retries). The scenario rebuild is a pure function of the config, so
/// cells are independent and the sweep can fan them over threads.
fn variant_cell(config: &SimConfig, frac: f64, secs: u64) -> (f64, u64) {
    let scenario = Scenario::two_class(config.clone(), TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, frac, secs);
    let r = run_cell(&scenario, &trace, MechanismKind::QaNt);
    (
        r.metrics.mean_response_ms().unwrap_or(f64::NAN),
        r.metrics.retries,
    )
}

fn main() {
    let (base, secs) = match scale() {
        Scale::Ci => {
            let mut c = SimConfig::small_test(2007);
            c.num_nodes = 20;
            (c, 20)
        }
        Scale::Full => (SimConfig::paper_defaults(), 60),
    };

    let mut variants: Vec<(String, SimConfig)> = Vec::new();
    variants.push(("default (jitter 1.5, renorm, λ=0.1)".into(), base.clone()));
    {
        let mut c = base.clone();
        c.qant.initial_price_jitter = 0.0;
        variants.push(("no price jitter".into(), c));
    }
    {
        let mut c = base.clone();
        c.qant.renormalize_prices = false;
        variants.push(("no renormalization".into(), c));
    }
    {
        let mut c = base.clone();
        c.qant.pricer.lambda = 0.02;
        variants.push(("λ = 0.02 (slow)".into(), c));
    }
    {
        let mut c = base.clone();
        c.qant.pricer.lambda = 0.3;
        variants.push(("λ = 0.30 (fast)".into(), c));
    }
    {
        let mut c = base.clone();
        c.qant.price_threshold = Some(5.0);
        variants.push(("price threshold = 5 (§5.1 mode)".into(), c));
    }

    println!("Market-design ablation — QA-NT mean response (ms)\n");
    // One cell per (variant, load): 12 independent runs.
    let cells: Vec<(usize, f64)> = (0..variants.len())
        .flat_map(|i| [(i, 0.9), (i, 2.0)])
        .collect();
    let cell_out = Sweep::from_env().map(&cells, |_, &(i, frac)| {
        variant_cell(&variants[i].1, frac, secs)
    });
    let results: Vec<AblationRow> = variants
        .iter()
        .enumerate()
        .map(|(i, (name, _))| AblationRow {
            variant: name.clone(),
            mean_ms_at_0_9: cell_out[2 * i].0,
            mean_ms_at_2_0: cell_out[2 * i + 1].0,
            retries_at_2_0: cell_out[2 * i + 1].1,
        })
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                fmt_ms(r.mean_ms_at_0_9),
                fmt_ms(r.mean_ms_at_2_0),
                r.retries_at_2_0.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["variant", "@90% load", "@200% load", "retries @200%"],
            &rows
        )
    );

    let path = write_json("ablation_market", &results).expect("write result");
    println!("wrote {}", path.display());
}
