//! Ablation bench for the market design choices DESIGN.md calls out:
//!
//! * per-node initial price **jitter** (σ = 0 vs default 1.5) — without it
//!   identical sellers flip their supply priorities in lockstep,
//! * period-end price **renormalization** — without it long overloads
//!   saturate the floor/ceiling clamps and erase relative prices,
//! * adjustment speed **λ**,
//! * the §5.1 **price-threshold** deployment mode.
//!
//! Each variant runs the near-capacity and 2× overload sinusoid scenarios;
//! lower mean response is better.

use qa_bench::{fmt_ms, render_table, scale, write_json, Scale};
use qa_core::MechanismKind;
use qa_sim::config::SimConfig;
use qa_sim::experiments::two_class_trace;
use qa_sim::federation::Federation;
use qa_sim::scenario::{Scenario, TwoClassParams};

struct AblationRow {
    variant: String,
    mean_ms_at_0_9: f64,
    mean_ms_at_2_0: f64,
    retries_at_2_0: u64,
}

qa_simnet::impl_to_json!(AblationRow {
    variant,
    mean_ms_at_0_9,
    mean_ms_at_2_0,
    retries_at_2_0
});

fn run_variant(base: &SimConfig, secs: u64) -> (f64, f64, u64) {
    let scenario = Scenario::two_class(base.clone(), TwoClassParams::default());
    let mut out = [f64::NAN; 2];
    let mut retries = 0;
    for (i, frac) in [0.9, 2.0].into_iter().enumerate() {
        let trace = two_class_trace(&scenario, 0.05, frac, secs);
        let r = Federation::new(&scenario, MechanismKind::QaNt, &trace).run(&trace);
        out[i] = r.metrics.mean_response_ms().unwrap_or(f64::NAN);
        if i == 1 {
            retries = r.metrics.retries;
        }
    }
    (out[0], out[1], retries)
}

fn main() {
    let (base, secs) = match scale() {
        Scale::Ci => {
            let mut c = SimConfig::small_test(2007);
            c.num_nodes = 20;
            (c, 20)
        }
        Scale::Full => (SimConfig::paper_defaults(), 60),
    };

    let mut variants: Vec<(String, SimConfig)> = Vec::new();
    variants.push(("default (jitter 1.5, renorm, λ=0.1)".into(), base.clone()));
    {
        let mut c = base.clone();
        c.qant.initial_price_jitter = 0.0;
        variants.push(("no price jitter".into(), c));
    }
    {
        let mut c = base.clone();
        c.qant.renormalize_prices = false;
        variants.push(("no renormalization".into(), c));
    }
    {
        let mut c = base.clone();
        c.qant.pricer.lambda = 0.02;
        variants.push(("λ = 0.02 (slow)".into(), c));
    }
    {
        let mut c = base.clone();
        c.qant.pricer.lambda = 0.3;
        variants.push(("λ = 0.30 (fast)".into(), c));
    }
    {
        let mut c = base.clone();
        c.qant.price_threshold = Some(5.0);
        variants.push(("price threshold = 5 (§5.1 mode)".into(), c));
    }

    println!("Market-design ablation — QA-NT mean response (ms)\n");
    let mut results = Vec::new();
    for (name, cfg) in variants {
        let (a, b, r) = run_variant(&cfg, secs);
        results.push(AblationRow {
            variant: name,
            mean_ms_at_0_9: a,
            mean_ms_at_2_0: b,
            retries_at_2_0: r,
        });
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                fmt_ms(r.mean_ms_at_0_9),
                fmt_ms(r.mean_ms_at_2_0),
                r.retries_at_2_0.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["variant", "@90% load", "@200% load", "retries @200%"],
            &rows
        )
    );

    let path = write_json("ablation_market", &results).expect("write result");
    println!("wrote {}", path.display());
}
