//! Extension experiment: resilience under faults.
//!
//! The paper's deployment story (autonomous nodes, a flaky wireless link,
//! machines that come and go) motivates the question its evaluation never
//! asks: *how does the market degrade when the network loses messages and
//! nodes crash mid-run?* This binary sweeps message-drop probability
//! (0–30%) and crash count for QA-NT vs Greedy in the simulator, then runs
//! the 5-node threaded cluster under 10% negotiation loss plus a crash.
//!
//! Reported per condition: completion rate, mean response time, response
//! normalized by QA-NT's at the same condition, losses and retries. The
//! §2.2 resubmission rule is QA-NT's built-in retransmission: a lost
//! negotiation behaves exactly like a period with no offers.

use qa_bench::{fmt_ms, render_table, scale, write_json, Scale, Sweep};
use qa_cluster::{run_experiment, ClusterConfig, ClusterMechanism, ClusterSpec};
use qa_core::MechanismKind;
use qa_sim::config::SimConfig;
use qa_sim::experiments::two_class_trace;
use qa_sim::federation::Federation;
use qa_sim::scenario::{Scenario, TwoClassParams};
use qa_simnet::{FaultPlan, LinkFaults, SimTime};
use qa_workload::NodeId;
use std::time::Duration;

const DROP_PROBS: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.30];

struct SimRow {
    mechanism: String,
    drop_prob: f64,
    crashes: usize,
    completion_rate: f64,
    mean_response_ms: f64,
    /// Mean response divided by QA-NT's at the same condition.
    normalized_response: f64,
    lost_messages: u64,
    retries: u64,
}

struct ClusterRow {
    mechanism: String,
    drop_prob: f64,
    crashes: usize,
    completion_rate: f64,
    mean_assign_ms: f64,
    mean_total_ms: f64,
    failed: usize,
}

struct Results {
    sim: Vec<SimRow>,
    cluster: Vec<ClusterRow>,
}

qa_simnet::impl_to_json!(SimRow {
    mechanism,
    drop_prob,
    crashes,
    completion_rate,
    mean_response_ms,
    normalized_response,
    lost_messages,
    retries
});
qa_simnet::impl_to_json!(ClusterRow {
    mechanism,
    drop_prob,
    crashes,
    completion_rate,
    mean_assign_ms,
    mean_total_ms,
    failed
});
qa_simnet::impl_to_json!(Results { sim, cluster });

fn main() {
    let (config, secs) = match scale() {
        Scale::Ci => {
            let mut c = SimConfig::small_test(2007);
            c.num_nodes = 20;
            (c, 25u64)
        }
        Scale::Full => (SimConfig::paper_defaults(), 60),
    };
    let scenario = Scenario::two_class(config, TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, 0.8, secs);
    println!(
        "Resilience extension — {} queries over {secs}s, drop sweep × crash schedule\n",
        trace.len()
    );

    // One cell per (crash schedule, drop probability); both mechanisms run
    // inside the cell because normalization is intra-cell (vs QA-NT at the
    // same condition).
    let mut conditions: Vec<(usize, f64)> = Vec::new();
    for &crashes in &[0usize, 2] {
        for &p in &DROP_PROBS {
            conditions.push((crashes, p));
        }
    }
    let sim_rows: Vec<SimRow> = Sweep::from_env()
        .map(&conditions, |_, &(crashes, p)| {
            let mut rows = Vec::with_capacity(2);
            let mut qant_mean = f64::NAN;
            for m in [MechanismKind::QaNt, MechanismKind::Greedy] {
                let mut f = Federation::new(&scenario, m, &trace);
                if p > 0.0 {
                    f.set_fault_plan(FaultPlan::uniform(LinkFaults::lossy(p)));
                }
                if crashes > 0 {
                    // Two crashes around one-third of the horizon; the
                    // first victim recovers at two-thirds.
                    f.kill_node_at(NodeId(0), SimTime::from_secs(secs / 3));
                    f.kill_node_at(NodeId(1), SimTime::from_secs(secs / 3 + 1));
                    f.recover_node_at(NodeId(0), SimTime::from_secs(2 * secs / 3));
                }
                let out = f.run(&trace);
                let mean = out.metrics.mean_response_ms().unwrap_or(f64::NAN);
                if m == MechanismKind::QaNt {
                    qant_mean = mean;
                }
                rows.push(SimRow {
                    mechanism: m.to_string(),
                    drop_prob: p,
                    crashes,
                    completion_rate: out.metrics.completed as f64 / trace.len() as f64,
                    mean_response_ms: mean,
                    normalized_response: mean / qant_mean,
                    lost_messages: out.metrics.lost_messages,
                    retries: out.metrics.retries,
                });
            }
            rows
        })
        .into_iter()
        .flatten()
        .collect();
    let table: Vec<Vec<String>> = sim_rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.clone(),
                format!("{:.0}%", r.drop_prob * 100.0),
                r.crashes.to_string(),
                format!("{:.1}%", r.completion_rate * 100.0),
                fmt_ms(r.mean_response_ms),
                format!("{:.3}", r.normalized_response),
                r.lost_messages.to_string(),
                r.retries.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "mechanism",
                "drop",
                "crashes",
                "completed",
                "mean (ms)",
                "vs QA-NT",
                "lost",
                "retries"
            ],
            &table
        )
    );
    println!(
        "Losses surface as retries (§2.2 resubmission), not as missing queries;\n\
         crashes re-enter their victims' queries into the next period's demand.\n"
    );

    // The threaded 5-node deployment under 10% negotiation loss + a crash.
    let cluster_drop = 0.10;
    let cluster_crashes = vec![(1usize, Duration::from_millis(80))];
    let spec = ClusterSpec::generate(2007, 5, 8, 16, 8, 80);
    let mut cluster_rows: Vec<ClusterRow> = Vec::new();
    for mech in [ClusterMechanism::Greedy, ClusterMechanism::QaNt] {
        let mut cfg = ClusterConfig::ci_scale(mech, 7);
        cfg.num_queries = match scale() {
            Scale::Ci => 30,
            Scale::Full => 120,
        };
        cfg.reply_timeout = Duration::from_secs(5);
        cfg.faults = FaultPlan::uniform(LinkFaults::lossy(cluster_drop));
        cfg.crashes = cluster_crashes.clone();
        let r = run_experiment(&spec, &cfg).expect("spec has evaluable classes");
        cluster_rows.push(ClusterRow {
            mechanism: r.mechanism.clone(),
            drop_prob: cluster_drop,
            crashes: cluster_crashes.len(),
            completion_rate: r.completion_rate,
            mean_assign_ms: r.mean_assign_ms,
            mean_total_ms: r.mean_total_ms,
            failed: r.failed,
        });
    }
    let table: Vec<Vec<String>> = cluster_rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.clone(),
                format!("{:.0}%", r.drop_prob * 100.0),
                r.crashes.to_string(),
                format!("{:.1}%", r.completion_rate * 100.0),
                fmt_ms(r.mean_assign_ms),
                fmt_ms(r.mean_total_ms),
                r.failed.to_string(),
            ]
        })
        .collect();
    println!(
        "5-node threaded cluster, {:.0}% negotiation loss, node 1 crashes at 80 ms\n\
         (driver drops it from the candidate set and finishes the run):\n",
        cluster_drop * 100.0
    );
    println!(
        "{}",
        render_table(
            &[
                "mechanism",
                "drop",
                "crashes",
                "completed",
                "assign (ms)",
                "total (ms)",
                "failed"
            ],
            &table
        )
    );

    let results = Results {
        sim: sim_rows,
        cluster: cluster_rows,
    };
    let path = write_json("ext_resilience", &results).expect("write result");
    println!("wrote {}", path.display());
}
