//! Deterministic protocol exploration: drives the model-checking harness
//! (`qa_cluster::explore`) through a bounded systematic sweep plus a
//! seeded-random sweep, for both allocation mechanisms, and checks the
//! four protocol invariants after every explored schedule.
//!
//! Scale (`QA_SCALE`): `ci` runs a systematic sweep of ≥1k schedules and
//! 200 random seeds per mechanism; `full` multiplies both.
//!
//! On a violation the failing schedule's seed/trail is printed so the
//! exact interleaving can be replayed:
//!
//!   `explore --replay-seed <N>`        — re-run one seeded schedule
//!   `explore --replay-trail "1,0,2"`   — re-run one explicit choice trail
//!
//! Exits non-zero if any schedule violates an invariant.

use qa_bench::{render_table, scale, write_json, Scale};
use qa_cluster::{
    explore_random, explore_systematic, run_seed, run_trail, ExploreConfig, ExploreMechanism,
    ExploreReport, ScheduleOutcome,
};
use qa_simnet::json::Json;
use std::process::ExitCode;

fn base_seed() -> u64 {
    std::env::var("QA_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2007)
}

fn config_for(mechanism: ExploreMechanism) -> ExploreConfig {
    let mut cfg = ExploreConfig::small();
    cfg.mechanism = mechanism;
    cfg
}

fn print_outcome(outcome: &ScheduleOutcome) -> bool {
    println!("schedule:  {}", outcome.description);
    println!("trail:     {}", outcome.trail);
    println!(
        "completed: {} unserved: {} actions: {} steps: {} drops: {}+{} crashes at {:?}",
        outcome.completed,
        outcome.unserved,
        outcome.actions,
        outcome.net.steps,
        outcome.net.dropped_requests,
        outcome.net.dropped_replies,
        outcome.net.crash_steps,
    );
    for v in &outcome.violations {
        println!("VIOLATION [{}]: {}", v.invariant, v.detail);
    }
    outcome.passed()
}

fn report_row(label: &str, mech: &str, r: &ExploreReport) -> Vec<String> {
    vec![
        label.to_string(),
        mech.to_string(),
        r.schedules.to_string(),
        r.schedules_failed.to_string(),
        r.completed.to_string(),
        r.unserved.to_string(),
        format!("{}+{}", r.dropped_requests, r.dropped_replies),
        r.crashes.to_string(),
        r.crash_points.len().to_string(),
        if r.exhausted { "yes" } else { "no" }.to_string(),
    ]
}

fn print_failures(r: &ExploreReport) {
    for f in &r.failures {
        eprintln!("FAILED schedule: {}", f.description);
        eprintln!("  trail: {}", f.trail);
        for v in &f.violations {
            eprintln!("  [{}] {}", v.invariant, v.detail);
        }
        eprintln!("  replay: explore --replay-trail \"{}\"", f.trail);
    }
}

fn report_json(label: &str, mech: &str, r: &ExploreReport) -> Json {
    Json::object([
        ("sweep", Json::Str(label.to_string())),
        ("mechanism", Json::Str(mech.to_string())),
        ("schedules", Json::Int(r.schedules as i64)),
        ("schedules_failed", Json::Int(r.schedules_failed as i64)),
        ("completed", Json::Int(r.completed as i64)),
        ("unserved", Json::Int(r.unserved as i64)),
        ("dropped_requests", Json::Int(r.dropped_requests as i64)),
        ("dropped_replies", Json::Int(r.dropped_replies as i64)),
        ("crashes", Json::Int(r.crashes as i64)),
        ("crash_points", Json::Int(r.crash_points.len() as i64)),
        ("exhausted", Json::Bool(r.exhausted)),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {}
        [flag, value] if flag == "--replay-seed" => {
            let Ok(seed) = value.parse::<u64>() else {
                eprintln!("--replay-seed: not a u64: {value}");
                return ExitCode::FAILURE;
            };
            let mut ok = true;
            for mech in [ExploreMechanism::QaNt, ExploreMechanism::Greedy] {
                ok &= print_outcome(&run_seed(&config_for(mech), seed));
            }
            return if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
        [flag, value] if flag == "--replay-trail" => {
            let indices: Result<Vec<u32>, _> = value
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.trim().parse::<u32>())
                .collect();
            let Ok(indices) = indices else {
                eprintln!("--replay-trail: expected comma-separated u32 list");
                return ExitCode::FAILURE;
            };
            // A trail replays against the mechanism it was recorded
            // under; QA-NT is the default protocol under test.
            let outcome = run_trail(
                &config_for(ExploreMechanism::QaNt),
                indices,
                "of recorded trail",
            );
            return if print_outcome(&outcome) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
        _ => {
            eprintln!("usage: explore [--replay-seed N | --replay-trail \"1,0,2\"]");
            return ExitCode::FAILURE;
        }
    }

    let (sys_depth, sys_budget, random_count) = match scale() {
        Scale::Ci => (6, 1_200, 200),
        Scale::Full => (8, 10_000, 1_000),
    };
    let seed = base_seed();
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    let mut all_passed = true;
    let mut total_schedules = 0u64;

    for mech in [ExploreMechanism::QaNt, ExploreMechanism::Greedy] {
        let mech_name = match mech {
            ExploreMechanism::QaNt => "qant",
            ExploreMechanism::Greedy => "greedy",
        };
        let cfg = config_for(mech);

        let sys = explore_systematic(&cfg, sys_depth, sys_budget);
        total_schedules += sys.schedules;
        all_passed &= sys.passed();
        print_failures(&sys);
        rows.push(report_row("systematic", mech_name, &sys));
        summaries.push(report_json("systematic", mech_name, &sys));

        let rand = explore_random(&cfg, seed, random_count);
        total_schedules += rand.schedules;
        all_passed &= rand.passed();
        print_failures(&rand);
        rows.push(report_row("random", mech_name, &rand));
        summaries.push(report_json("random", mech_name, &rand));
    }

    println!(
        "{}",
        render_table(
            &[
                "sweep",
                "mech",
                "schedules",
                "failed",
                "completed",
                "unserved",
                "drops",
                "crashes",
                "crash pts",
                "exhausted",
            ],
            &rows,
        )
    );
    println!(
        "explored {total_schedules} schedules total (seed base {seed}); invariants: {}",
        if all_passed { "all hold" } else { "VIOLATED" }
    );

    let summary = Json::object([
        ("seed", Json::Int(seed as i64)),
        ("total_schedules", Json::Int(total_schedules as i64)),
        ("passed", Json::Bool(all_passed)),
        ("sweeps", Json::Arr(summaries)),
    ]);
    match write_json("explore", &summary) {
        Ok(path) => println!("summary -> {}", path.display()),
        Err(e) => {
            eprintln!("explore: cannot write summary: {e}");
            return ExitCode::FAILURE;
        }
    }
    if all_passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
