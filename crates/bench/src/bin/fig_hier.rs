//! `fig_hier`: the hierarchical two-tier market vs the flat engine and
//! the raw-signal router.
//!
//! Sweeps the federation size (1 000 → 10 000 nodes at full scale, the
//! largest cell sized to ~10 M queries) and runs the same trace through
//! every [`HierMode`] column: the flat engine, the PR 9 weight-
//! proportional router, and the broker market under each parent mechanism
//! (QA-NT, WALRAS). Reported per cell: wall-clock throughput, mean
//! response, market convergence period, cross-tier messages, escalated
//! demand and inter-shard allocation efficiency.
//!
//! Artifacts:
//! * `bench_results/fig_hier.json` — full points, timings included;
//! * `bench_results/fig_hier_determinism.json` — the timing-free
//!   projection, byte-identical at any `QA_THREADS` (the CI `hier-smoke`
//!   job diffs it across 1 vs 8 threads);
//! * `bench_results/fig_hier_trace.jsonl` (with `--trace`) — the broker
//!   telemetry of a small two-tier cell (`broker_bid`, `parent_cleared`,
//!   `demand_escalated`), byte-deterministic.
//!
//! `--quick` shrinks the sweep for CI (seconds, not minutes). The flat
//! column is skipped above 3 000 nodes at full scale — the single-market
//! engine is the thing the sweep shows being outgrown.

use qa_bench::{fmt_ms, render_table, write_json, Scale};
use qa_sim::experiments::{hier_point, scale_trace, scale_world, HierMode, HierPoint};
use qa_simnet::telemetry::Telemetry;
use std::time::Instant;

/// Horizon of one sweep cell: fixed seconds, or sized so the trace holds
/// roughly this many arrivals (derived from a deterministic probe trace,
/// so the resulting horizon is machine-independent).
enum Horizon {
    Secs(u64),
    Queries(u64),
}

struct Cell {
    nodes: usize,
    shards: usize,
    horizon: Horizon,
    modes: &'static [HierMode],
}

const ALL: &[HierMode] = &HierMode::ALL;
/// Sharded columns only — the flat baseline is dropped where it would
/// dominate the wall-clock without adding information.
const SHARDED: &[HierMode] = &[
    HierMode::Router,
    HierMode::BrokerQant,
    HierMode::BrokerWalras,
];

fn cells(quick: bool) -> Vec<Cell> {
    if quick {
        vec![
            Cell {
                nodes: 60,
                shards: 4,
                horizon: Horizon::Secs(10),
                modes: ALL,
            },
            Cell {
                nodes: 200,
                shards: 8,
                horizon: Horizon::Secs(10),
                modes: ALL,
            },
        ]
    } else {
        vec![
            Cell {
                nodes: 1_000,
                shards: 16,
                horizon: Horizon::Secs(120),
                modes: ALL,
            },
            Cell {
                nodes: 3_000,
                shards: 16,
                horizon: Horizon::Secs(60),
                modes: ALL,
            },
            Cell {
                nodes: 10_000,
                shards: 32,
                horizon: Horizon::Queries(10_000_000),
                modes: SHARDED,
            },
        ]
    }
}

/// Seconds of sinusoid needed for at least `target` arrivals at this
/// world's offered load, derived from a probe trace spanning exactly two
/// full cycles of the 0.05 Hz waveform — whole cycles, or the probe would
/// catch only the crest and bias the rate estimate. The probe rate is
/// unbiased but discrete, so a 2 % pad makes `target` a floor rather
/// than a coin flip.
fn horizon_for_queries(scenario: &qa_sim::Scenario, target: u64) -> u64 {
    const PROBE_SECS: u64 = 40;
    let probe = scale_trace(scenario, PROBE_SECS);
    let qps = probe.len() as f64 / PROBE_SECS as f64;
    ((target as f64 * 1.02 / qps.max(1.0)).ceil() as u64).max(PROBE_SECS)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick") || qa_bench::scale() == Scale::Ci;
    let want_trace = args.iter().any(|a| a == "--trace");
    let seed = 2007;

    let mut points: Vec<HierPoint> = Vec::new();
    for cell in cells(quick) {
        let scenario = scale_world(cell.nodes, seed);
        let secs = match cell.horizon {
            Horizon::Secs(s) => s,
            Horizon::Queries(q) => horizon_for_queries(&scenario, q),
        };
        let trace = scale_trace(&scenario, secs);
        for &mode in cell.modes {
            let start = Instant::now();
            let mut p = hier_point(&scenario, &trace, cell.shards, mode, Telemetry::disabled());
            let elapsed = start.elapsed().as_secs_f64();
            p.elapsed_s = elapsed;
            p.periods_per_s = p.periods as f64 / elapsed.max(1e-9);
            p.queries_per_s = p.queries as f64 / elapsed.max(1e-9);
            eprintln!(
                "  {} nodes x S={} [{}]: {} queries in {:.2}s",
                cell.nodes,
                p.shards,
                mode.label(),
                p.queries,
                elapsed
            );
            points.push(p);
        }
    }

    println!("fig_hier — two-tier broker market vs flat engine and raw-signal router\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                p.shards.to_string(),
                p.mode.clone(),
                p.queries.to_string(),
                format!("{:.2}", p.elapsed_s),
                format!("{:.0}", p.queries_per_s),
                fmt_ms(p.mean_response_ms),
                if p.convergence_period < 0 {
                    "-".into()
                } else {
                    p.convergence_period.to_string()
                },
                p.cross_messages.to_string(),
                p.escalated_units.to_string(),
                format!("{:.4}", p.alloc_efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "shards",
                "mode",
                "queries",
                "wall (s)",
                "queries/s",
                "response",
                "conv. period",
                "x-tier msgs",
                "escalated",
                "alloc eff."
            ],
            &rows
        )
    );

    let path = write_json("fig_hier", &points).expect("write result");
    println!("wrote {}", path.display());

    // Timing-free projection: what the CI byte-identity check compares
    // across thread budgets.
    let det: Vec<HierPoint> = points
        .iter()
        .map(|p| HierPoint {
            elapsed_s: 0.0,
            periods_per_s: 0.0,
            queries_per_s: 0.0,
            ..p.clone()
        })
        .collect();
    let path = write_json("fig_hier_determinism", &det).expect("write determinism artifact");
    println!("wrote {}", path.display());

    // Optional broker-tier trace of a small two-tier cell — sim-time
    // stamped and boundary-serial, hence byte-deterministic.
    if want_trace {
        let scenario = scale_world(60, seed);
        let trace = scale_trace(&scenario, 10);
        let (telemetry, buffer) = Telemetry::buffered();
        let _ = hier_point(&scenario, &trace, 4, HierMode::BrokerQant, telemetry);
        let dir = std::path::PathBuf::from("bench_results");
        std::fs::create_dir_all(&dir).expect("create bench_results/");
        let trace_path = dir.join("fig_hier_trace.jsonl");
        std::fs::write(&trace_path, buffer.to_jsonl()).expect("write broker trace");
        println!("wrote {} ({} events)", trace_path.display(), buffer.len());
    }
}
