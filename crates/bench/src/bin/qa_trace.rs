//! `qa-trace` — offline analyzer for JSONL telemetry traces.
//!
//! Works on any trace the telemetry layer writes (simulator dumps,
//! `qad --trace` node traces, `qa-ctl --trace` driver traces):
//!
//! ```text
//! qa-trace summary     <trace.jsonl>                # event census + span
//! qa-trace filter      <trace.jsonl> [--kind a,b] [--node N] [--class C]
//!                      [--from-us T] [--to-us T]    # re-emit matching JSONL
//! qa-trace prices      <trace.jsonl> [--class C]    # per-class price timelines
//! qa-trace rejections  <trace.jsonl>                # node × class heatmap
//! qa-trace convergence <trace.jsonl> --period-ms P [--tol X]
//! qa-trace spans       <trace.jsonl>                # derived durations
//! ```
//!
//! Every subcommand accepts `--json` to print a machine-readable report
//! instead of tables. `filter` always emits canonical JSONL (feed it back
//! into `check_trace` or `qa-trace` itself).

use qa_bench::render_table;
use qa_simnet::json::{Json, ToJson};
use qa_simnet::stats::{LogHistogram, Welford};
use qa_simnet::telemetry::{ConvergenceReport, TelemetryEvent, TraceRecord};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Pipe-safe `println!`: `filter` output is meant to be piped, and a
/// downstream `head` closing the pipe is a normal end of output, not an
/// error — exit quietly instead of panicking on `BrokenPipe`.
fn out(text: std::fmt::Arguments) {
    use std::io::Write;
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}
macro_rules! outln {
    ($($t:tt)*) => { out(format_args!($($t)*)) };
}

/// The node an event is attributed to, when it names one.
fn event_node(e: &TelemetryEvent) -> Option<u32> {
    match e {
        TelemetryEvent::PriceAdjusted { node, .. }
        | TelemetryEvent::SupplyComputed { node, .. }
        | TelemetryEvent::RequestRejected { node, .. }
        | TelemetryEvent::QueryAssigned { node, .. }
        | TelemetryEvent::QueryCompleted { node, .. }
        | TelemetryEvent::MessageDropped { node, .. }
        | TelemetryEvent::NodeCrashed { node }
        | TelemetryEvent::NodeRecovered { node }
        | TelemetryEvent::PeerConnected { node, .. }
        | TelemetryEvent::HandshakeCompleted { node, .. }
        | TelemetryEvent::ConnectRetried { node, .. }
        | TelemetryEvent::FrameDropped { node, .. }
        | TelemetryEvent::PeerDied { node, .. } => Some(*node),
        // Brokers are shard-level actors; their index shares the `--node`
        // filter slot so one shard's bids can be followed through a trace.
        TelemetryEvent::BrokerBid { broker, .. } => Some(*broker),
        _ => None,
    }
}

/// The query class an event concerns, when it names one.
fn event_class(e: &TelemetryEvent) -> Option<u32> {
    match e {
        TelemetryEvent::PriceAdjusted { class, .. }
        | TelemetryEvent::RequestRejected { class, .. }
        | TelemetryEvent::QueryAssigned { class, .. }
        | TelemetryEvent::QueryCompleted { class, .. }
        | TelemetryEvent::QueryUnserved { class, .. }
        | TelemetryEvent::DemandEscalated { class, .. } => Some(*class),
        _ => None,
    }
}

fn load(path: &str) -> Result<Vec<TraceRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            TraceRecord::parse_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))
        })
        .collect()
}

#[derive(Default)]
struct Filter {
    kinds: Vec<String>,
    node: Option<u32>,
    class: Option<u32>,
    from_us: Option<u64>,
    to_us: Option<u64>,
}

impl Filter {
    fn matches(&self, r: &TraceRecord) -> bool {
        if !self.kinds.is_empty() && !self.kinds.iter().any(|k| k == r.event.kind()) {
            return false;
        }
        if let Some(n) = self.node {
            if event_node(&r.event) != Some(n) {
                return false;
            }
        }
        if let Some(c) = self.class {
            if event_class(&r.event) != Some(c) {
                return false;
            }
        }
        if let Some(t) = self.from_us {
            if r.t_us < t {
                return false;
            }
        }
        if let Some(t) = self.to_us {
            if r.t_us > t {
                return false;
            }
        }
        true
    }
}

struct Args {
    path: String,
    filter: Filter,
    json: bool,
    period_ms: Option<u64>,
    tol: f64,
}

fn parse_args(rest: &[String]) -> Result<Args, String> {
    let mut path = None;
    let mut filter = Filter::default();
    let mut json = false;
    let mut period_ms = None;
    let mut tol = 0.05;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--kind" => {
                filter.kinds = take("--kind")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--node" => {
                filter.node = Some(
                    take("--node")?
                        .parse()
                        .map_err(|e| format!("--node: {e}"))?,
                )
            }
            "--class" => {
                filter.class = Some(
                    take("--class")?
                        .parse()
                        .map_err(|e| format!("--class: {e}"))?,
                )
            }
            "--from-us" => {
                filter.from_us = Some(
                    take("--from-us")?
                        .parse()
                        .map_err(|e| format!("--from-us: {e}"))?,
                )
            }
            "--to-us" => {
                filter.to_us = Some(
                    take("--to-us")?
                        .parse()
                        .map_err(|e| format!("--to-us: {e}"))?,
                )
            }
            "--period-ms" => {
                period_ms = Some(
                    take("--period-ms")?
                        .parse()
                        .map_err(|e| format!("--period-ms: {e}"))?,
                )
            }
            "--tol" => tol = take("--tol")?.parse().map_err(|e| format!("--tol: {e}"))?,
            "--json" => json = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("exactly one trace path expected".to_string());
                }
            }
        }
    }
    Ok(Args {
        path: path.ok_or("a trace path is required")?,
        filter,
        json,
        period_ms,
        tol,
    })
}

fn cmd_summary(args: &Args) -> Result<(), String> {
    let records = load(&args.path)?;
    let kept: Vec<&TraceRecord> = records.iter().filter(|r| args.filter.matches(r)).collect();
    let mut kinds: BTreeMap<&str, u64> = BTreeMap::new();
    let mut nodes: std::collections::BTreeSet<u32> = Default::default();
    for r in &kept {
        *kinds.entry(r.event.kind()).or_insert(0) += 1;
        nodes.extend(event_node(&r.event));
    }
    let (first, last) = match (kept.first(), kept.last()) {
        (Some(f), Some(l)) => (f.t_us, l.t_us),
        _ => (0, 0),
    };
    if args.json {
        let report = Json::object([
            ("records", Json::Int(kept.len() as i64)),
            ("first_us", Json::Int(first as i64)),
            ("last_us", Json::Int(last as i64)),
            ("nodes", Json::Int(nodes.len() as i64)),
            (
                "kinds",
                Json::object(
                    kinds
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::Int(*v as i64))),
                ),
            ),
        ]);
        outln!("{}", report.pretty());
    } else {
        outln!(
            "{} records over {:.1} ms, {} nodes\n",
            kept.len(),
            (last.saturating_sub(first)) as f64 / 1e3,
            nodes.len()
        );
        let rows: Vec<Vec<String>> = kinds
            .iter()
            .map(|(k, v)| vec![k.to_string(), v.to_string()])
            .collect();
        outln!("{}", render_table(&["event", "count"], &rows));
    }
    Ok(())
}

fn cmd_filter(args: &Args) -> Result<(), String> {
    for r in load(&args.path)? {
        if args.filter.matches(&r) {
            outln!("{}", r.to_json().dump());
        }
    }
    Ok(())
}

fn cmd_prices(args: &Args) -> Result<(), String> {
    let records = load(&args.path)?;
    // class -> (adjustments, first, last, min, max) over `new` prices.
    let mut per_class: BTreeMap<u32, (u64, f64, f64, f64, f64)> = BTreeMap::new();
    let mut timeline = Vec::new();
    for r in records.iter().filter(|r| args.filter.matches(r)) {
        if let TelemetryEvent::PriceAdjusted {
            node,
            class,
            old,
            new,
            reason,
        } = &r.event
        {
            let e = per_class
                .entry(*class)
                .or_insert((0, *new, *new, *new, *new));
            e.0 += 1;
            e.2 = *new;
            e.3 = e.3.min(*new);
            e.4 = e.4.max(*new);
            if args.filter.class.is_some() {
                timeline.push((r.t_us, *node, *old, *new, reason.as_str()));
            }
        }
    }
    if args.json {
        let report = Json::object(per_class.iter().map(|(c, (n, first, last, min, max))| {
            (
                format!("class{c}"),
                Json::object([
                    ("adjustments", Json::Int(*n as i64)),
                    ("first", Json::Float(*first)),
                    ("last", Json::Float(*last)),
                    ("min", Json::Float(*min)),
                    ("max", Json::Float(*max)),
                ]),
            )
        }));
        outln!("{}", report.pretty());
        return Ok(());
    }
    let rows: Vec<Vec<String>> = per_class
        .iter()
        .map(|(c, (n, first, last, min, max))| {
            vec![
                c.to_string(),
                n.to_string(),
                format!("{first:.4}"),
                format!("{last:.4}"),
                format!("{min:.4}"),
                format!("{max:.4}"),
            ]
        })
        .collect();
    outln!(
        "{}",
        render_table(
            &["class", "adjustments", "first", "last", "min", "max"],
            &rows
        )
    );
    for (t_us, node, old, new, reason) in timeline {
        outln!("{t_us:>12} us  node {node:<3} {old:>10.4} -> {new:<10.4} ({reason})");
    }
    Ok(())
}

fn cmd_rejections(args: &Args) -> Result<(), String> {
    let records = load(&args.path)?;
    let mut heat: BTreeMap<u32, BTreeMap<u32, u64>> = BTreeMap::new();
    let mut classes: std::collections::BTreeSet<u32> = Default::default();
    for r in records.iter().filter(|r| args.filter.matches(r)) {
        if let TelemetryEvent::RequestRejected { node, class } = r.event {
            *heat.entry(node).or_default().entry(class).or_insert(0) += 1;
            classes.insert(class);
        }
    }
    if args.json {
        let report = Json::object(heat.iter().map(|(n, row)| {
            (
                format!("node{n}"),
                Json::object(
                    row.iter()
                        .map(|(c, v)| (format!("class{c}"), Json::Int(*v as i64))),
                ),
            )
        }));
        outln!("{}", report.pretty());
        return Ok(());
    }
    if heat.is_empty() {
        outln!("no rejections in trace");
        return Ok(());
    }
    let mut header: Vec<String> = vec!["node".to_string()];
    header.extend(classes.iter().map(|c| format!("c{c}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = heat
        .iter()
        .map(|(n, row)| {
            let mut cells = vec![n.to_string()];
            cells.extend(
                classes
                    .iter()
                    .map(|c| row.get(c).copied().unwrap_or(0).to_string()),
            );
            cells
        })
        .collect();
    outln!("{}", render_table(&header_refs, &rows));
    Ok(())
}

fn cmd_convergence(args: &Args) -> Result<(), String> {
    let period_ms = args
        .period_ms
        .ok_or("convergence requires --period-ms MS (the trace's market period)")?;
    let records = load(&args.path)?;
    let kept: Vec<TraceRecord> = records
        .into_iter()
        .filter(|r| args.filter.matches(r))
        .collect();
    let report = ConvergenceReport::from_records(&kept, period_ms * 1000, args.tol);
    if args.json {
        outln!("{}", report.to_json().pretty());
        return Ok(());
    }
    outln!(
        "periods = {}, nodes = {}, price adjustments = {}, rejections = {}, \
         dropped = {}, crashes = {}",
        report.periods,
        report.nodes,
        report.price_adjustments,
        report.rejections,
        report.dropped_messages,
        report.crashes
    );
    if report.broker_bids > 0 || report.parent_clearings > 0 {
        outln!(
            "broker tier: {} bids, {} parent clearings, {} units escalated",
            report.broker_bids,
            report.parent_clearings,
            report.escalated_units
        );
    }
    for c in &report.per_class {
        let settled = match c.stabilized_at_period {
            Some(p) => format!("stabilized at period {p}"),
            None => "still moving in the final period".to_string(),
        };
        outln!(
            "  class {}: {} adjustments, final mean price {:.4}, {}",
            c.class,
            c.adjustments,
            c.final_mean_price,
            settled
        );
    }
    Ok(())
}

/// Durations derived from lifecycle event pairs: per-query
/// assigned→completed, plus the gaps between `period_started` events.
fn cmd_spans(args: &Args) -> Result<(), String> {
    let records = load(&args.path)?;
    let mut assigned: BTreeMap<u64, u64> = BTreeMap::new();
    let mut exec = Welford::new();
    let mut exec_hist = LogHistogram::new();
    let mut period_gap = Welford::new();
    let mut last_period: Option<u64> = None;
    for r in records.iter().filter(|r| args.filter.matches(r)) {
        match &r.event {
            TelemetryEvent::QueryAssigned { query, .. } => {
                assigned.insert(*query, r.t_us);
            }
            TelemetryEvent::QueryCompleted { query, .. } => {
                if let Some(t0) = assigned.remove(query) {
                    let ms = r.t_us.saturating_sub(t0) as f64 / 1e3;
                    exec.add(ms);
                    exec_hist.record(ms);
                }
            }
            TelemetryEvent::PeriodStarted { .. } => {
                if let Some(t0) = last_period {
                    period_gap.add(r.t_us.saturating_sub(t0) as f64 / 1e3);
                }
                last_period = Some(r.t_us);
            }
            _ => {}
        }
    }
    if args.json {
        let report = Json::object([
            ("assigned_to_completed_ms", exec.to_json()),
            ("assigned_to_completed_hist", exec_hist.to_json()),
            ("period_gap_ms", period_gap.to_json()),
            ("unmatched_assignments", Json::Int(assigned.len() as i64)),
        ]);
        outln!("{}", report.pretty());
        return Ok(());
    }
    let fmt = |w: &Welford| match (w.mean(), w.min(), w.max()) {
        (Some(mean), Some(min), Some(max)) => {
            format!("n={} mean={mean:.2} min={min:.2} max={max:.2}", w.count())
        }
        _ => "n=0".to_string(),
    };
    outln!("assigned→completed (ms): {}", fmt(&exec));
    if let (Some(p50), Some(p99)) = (exec_hist.quantile(0.5), exec_hist.quantile(0.99)) {
        outln!("  p50≈{p50:.2} p99≈{p99:.2} (log-bucket upper bounds)");
    }
    outln!("period gaps        (ms): {}", fmt(&period_gap));
    if !assigned.is_empty() {
        outln!("{} assignments never completed in-trace", assigned.len());
    }
    Ok(())
}

fn main() -> ExitCode {
    let usage = "usage: qa-trace <summary|filter|prices|rejections|convergence|spans> \
                 <trace.jsonl> [--kind a,b] [--node N] [--class C] [--from-us T] [--to-us T] \
                 [--period-ms MS] [--tol X] [--json]";
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{usage}");
        return ExitCode::from(2);
    };
    let run = |f: fn(&Args) -> Result<(), String>| parse_args(rest).and_then(|a| f(&a));
    let result = match cmd.as_str() {
        "summary" => run(cmd_summary),
        "filter" => run(cmd_filter),
        "prices" => run(cmd_prices),
        "rejections" => run(cmd_rejections),
        "convergence" => run(cmd_convergence),
        "spans" => run(cmd_spans),
        "--help" | "-h" | "help" => {
            outln!("{usage}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{usage}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qa-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
