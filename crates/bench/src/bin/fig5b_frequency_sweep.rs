//! Figure 5b: Greedy's normalized response vs sinusoid frequency
//! (0.05–2 Hz at 80 % average load).

use qa_bench::{fmt_ms, render_table, scale, write_json, Scale, Sweep};
use qa_sim::config::SimConfig;
use qa_sim::experiments::fig5b_point;
use qa_sim::scenario::{Scenario, TwoClassParams};

fn main() {
    let (config, freqs, secs): (SimConfig, Vec<f64>, u64) = match scale() {
        Scale::Ci => (SimConfig::small_test(2007), vec![0.05, 0.5], 20),
        Scale::Full => (
            SimConfig::paper_defaults(),
            vec![0.05, 0.1, 0.25, 0.5, 1.0, 2.0],
            60,
        ),
    };
    let scenario = Scenario::two_class(config, TwoClassParams::default());
    let pts = Sweep::from_env().map(&freqs, |_, &f| fig5b_point(&scenario, f, secs));

    println!("Figure 5b — Greedy normalized response vs workload frequency (80% load)\n");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.2} Hz", p.x),
                fmt_ms(p.qant_ms),
                fmt_ms(p.greedy_ms),
                format!("{:.3}", p.normalized_greedy),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["frequency", "QA-NT (ms)", "Greedy (ms)", "greedy/qant"],
            &rows
        )
    );
    println!("paper shape: QA-NT's edge shrinks as frequency rises (market adaptation lags)");

    let path = write_json("fig5b_frequency_sweep", &pts).expect("write result");
    println!("wrote {}", path.display());
}
