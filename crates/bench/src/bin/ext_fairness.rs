//! Extension experiment: equitable allocation (§6 future work).
//!
//! The paper's future work names "the constraint of equitable allocation,
//! in which the utility (satisfaction) of all nodes is equalized". This
//! binary measures how evenly each mechanism treats the federation's
//! *client* nodes under overload: Jain's fairness index over the
//! per-origin mean response times (1.0 = perfectly even).

use qa_bench::{fmt_ms, render_table, scale, write_json, Scale, Sweep};
use qa_core::MechanismKind;
use qa_sim::config::SimConfig;
use qa_sim::experiments::{run_cell, two_class_trace};
use qa_sim::scenario::{Scenario, TwoClassParams};

struct FairnessRow {
    mechanism: String,
    mean_response_ms: f64,
    origin_fairness: f64,
}

qa_simnet::impl_to_json!(FairnessRow {
    mechanism,
    mean_response_ms,
    origin_fairness
});

fn main() {
    let (config, secs, frac) = match scale() {
        Scale::Ci => {
            let mut c = SimConfig::small_test(2007);
            c.num_nodes = 20;
            (c, 25, 1.5)
        }
        Scale::Full => (SimConfig::paper_defaults(), 60, 1.5),
    };
    let scenario = Scenario::two_class(config, TwoClassParams::default());
    let trace = two_class_trace(&scenario, 0.05, frac, secs);
    println!(
        "Equitable-allocation extension — {} queries at {:.0}% of capacity\n",
        trace.len(),
        frac * 100.0
    );

    let rows = Sweep::from_env().map(&MechanismKind::DYNAMIC, |_, &m| {
        let out = run_cell(&scenario, &trace, m);
        FairnessRow {
            mechanism: m.to_string(),
            mean_response_ms: out.metrics.mean_response_ms().unwrap_or(f64::NAN),
            origin_fairness: out.metrics.origin_fairness().unwrap_or(f64::NAN),
        }
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.clone(),
                fmt_ms(r.mean_response_ms),
                format!("{:.4}", r.origin_fairness),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["mechanism", "mean (ms)", "Jain fairness"], &table)
    );
    println!(
        "Higher is fairer. The negotiation-based mechanisms (QA-NT, Greedy, two-probes)\n\
         treat origins near-symmetrically; blind balancing (random/round-robin) spreads\n\
         load but not *outcomes*, since capable-node sets differ per class."
    );

    let path = write_json("ext_fairness", &rows).expect("write result");
    println!("wrote {}", path.display());
}
