//! Figure 1 + Figure 2: the motivating example.
//!
//! Two nodes; N1 runs q1 in 400 ms and q2 in 100 ms, N2 in 450 ms and
//! 500 ms. Demand: N1 poses 1×q1 and 6×q2, N2 poses 1×q1 (q1 requests
//! arrive first). The load-balancing (LB) strategy yields a 662 ms average
//! response; the query-allocation (QA) strategy 431 ms — and LB's
//! allocation is Pareto-dominated (Fig. 2).

use qa_economics::{dominates, QuantityVector, Solution, ThroughputPreference};

/// Exec times: `times[node][class]` in ms.
const TIMES: [[u64; 2]; 2] = [[400, 100], [450, 500]];

/// The arrival order of the example: two q1 then six q2.
fn arrivals() -> Vec<usize> {
    let mut v = vec![0, 0];
    v.extend(std::iter::repeat_n(1, 6));
    v
}

/// Greedy least-load-imbalance assignment (the paper's LB): each query
/// goes to the node minimizing the post-assignment load imbalance.
fn lb_assignment() -> Vec<usize> {
    let mut load = [0u64; 2];
    arrivals()
        .into_iter()
        .map(|class| {
            let imbalance = |n: usize| {
                let mut l = load;
                l[n] += TIMES[n][class];
                l[0].abs_diff(l[1])
            };
            let node = if imbalance(0) <= imbalance(1) { 0 } else { 1 };
            load[node] += TIMES[node][class];
            node
        })
        .collect()
}

/// The QA assignment of the paper: N1 evaluates only q2, N2 only q1.
fn qa_assignment() -> Vec<usize> {
    arrivals()
        .into_iter()
        .map(|class| if class == 0 { 1 } else { 0 })
        .collect()
}

/// FIFO per-node completion times → per-query response times (ms).
fn response_times(assignment: &[usize]) -> Vec<u64> {
    let mut busy = [0u64; 2];
    arrivals()
        .iter()
        .zip(assignment)
        .map(|(&class, &node)| {
            busy[node] += TIMES[node][class];
            busy[node]
        })
        .collect()
}

fn mean(v: &[u64]) -> f64 {
    v.iter().sum::<u64>() as f64 / v.len() as f64
}

/// Builds the eq.-1 aggregate vectors of a run (Fig. 2).
fn aggregates(assignment: &[usize]) -> (QuantityVector, QuantityVector) {
    let mut supply = [QuantityVector::zeros(2), QuantityVector::zeros(2)];
    for (&class, &node) in arrivals().iter().zip(assignment) {
        supply[node].add_units(class, 1);
    }
    let agg = QuantityVector::aggregate(&supply);
    (supply[0].clone(), agg)
}

fn main() {
    let lb = lb_assignment();
    let qa = qa_assignment();
    let lb_resp = response_times(&lb);
    let qa_resp = response_times(&qa);

    println!("Figure 1 — Performance optimization vs Load Balancing\n");
    let rows = vec![
        vec![
            "LB".to_string(),
            format!("{lb_resp:?}"),
            format!("{:.1} ms", mean(&lb_resp)),
        ],
        vec![
            "QA".to_string(),
            format!("{qa_resp:?}"),
            format!("{:.1} ms", mean(&qa_resp)),
        ],
    ];
    println!(
        "{}",
        qa_bench::render_table(&["mechanism", "response times (ms)", "average"], &rows)
    );
    println!(
        "LB is {:.0}% slower than QA (paper: 54%)\n",
        100.0 * (mean(&lb_resp) / mean(&qa_resp) - 1.0)
    );

    // Figure 2: aggregate vectors + Pareto check over the first 500 ms
    // period (demand d⃗ = (2,6); LB consumes (2,1), QA consumes (1,5)).
    let (n1_lb, agg_lb) = aggregates(&lb);
    let (n1_qa, agg_qa) = aggregates(&qa);
    println!("Figure 2 — aggregate vectors over the whole run");
    println!("  LB: N1 supplies {n1_lb}, aggregate supply {agg_lb}");
    println!("  QA: N1 supplies {n1_qa}, aggregate supply {agg_qa}");

    // Pareto dominance in the first period, exactly as §2.2 frames it.
    let lb_solution = Solution {
        supplies: vec![
            QuantityVector::from_counts(vec![1, 1]),
            QuantityVector::from_counts(vec![1, 0]),
        ],
        consumptions: vec![
            QuantityVector::from_counts(vec![1, 1]),
            QuantityVector::from_counts(vec![1, 0]),
        ],
    };
    let qa_solution = Solution {
        supplies: vec![
            QuantityVector::from_counts(vec![0, 5]),
            QuantityVector::from_counts(vec![1, 0]),
        ],
        consumptions: vec![
            QuantityVector::from_counts(vec![0, 5]),
            QuantityVector::from_counts(vec![1, 0]),
        ],
    };
    let prefs = vec![ThroughputPreference, ThroughputPreference];
    println!(
        "\nFirst period (T = 500 ms): QA Pareto-dominates LB: {}",
        dominates(&qa_solution, &lb_solution, &prefs)
    );

    let result = qa_simnet::json_obj! {
        "lb_mean_ms": mean(&lb_resp),
        "qa_mean_ms": mean(&qa_resp),
        "paper_lb_ms": 662.0,
        "paper_qa_ms": 431.0,
        "lb_responses": lb_resp,
        "qa_responses": qa_resp,
    };
    let path = qa_bench::write_json("fig1_motivating", &result).expect("write result");
    println!("\nwrote {}", path.display());
}
