//! Table 2: qualitative comparison of query-allocation mechanisms, with
//! the measurable columns backed by an actual run (messages per query and
//! relative performance under a near-capacity sinusoid).

use qa_bench::{render_table, scale, write_json, Scale, Sweep};
use qa_core::MechanismKind;
use qa_sim::config::SimConfig;
use qa_sim::experiments::{fig4_summarize, fig4_workload, run_cell};

struct Table2Row {
    mechanism: String,
    distributed: bool,
    workload_type: &'static str,
    conflicts_with_dqo: bool,
    autonomy: bool,
    measured_normalized_response: Option<f64>,
    measured_messages_per_query: Option<f64>,
}

qa_simnet::impl_to_json!(Table2Row {
    mechanism,
    distributed,
    workload_type,
    conflicts_with_dqo,
    autonomy,
    measured_normalized_response,
    measured_messages_per_query
});

fn main() {
    let (config, secs) = match scale() {
        Scale::Ci => (SimConfig::small_test(2007), 25),
        Scale::Full => (SimConfig::paper_defaults(), 90),
    };
    let (scenario, trace) = fig4_workload(&config, secs);
    let outcomes = Sweep::from_env().map(&MechanismKind::DYNAMIC, |_, &m| {
        run_cell(&scenario, &trace, m)
    });
    let measured = fig4_summarize(&outcomes);

    let rows_data: Vec<Table2Row> = MechanismKind::ALL
        .iter()
        .map(|&m| {
            let meas = measured.rows.iter().find(|r| r.mechanism == m.to_string());
            Table2Row {
                mechanism: m.to_string(),
                distributed: m.is_distributed(),
                workload_type: if m.handles_dynamic_workload() {
                    "Dynamic"
                } else {
                    "Static"
                },
                conflicts_with_dqo: m.conflicts_with_distributed_query_optimization(),
                autonomy: m.respects_autonomy(),
                measured_normalized_response: meas.map(|r| r.normalized_response),
                measured_messages_per_query: meas.map(|r| r.messages_per_query),
            }
        })
        .collect();

    println!("Table 2 — comparison of query allocation mechanisms\n");
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            let check = |b: bool| if b { "X" } else { "-" }.to_string();
            vec![
                r.mechanism.clone(),
                check(r.distributed),
                r.workload_type.to_string(),
                check(r.conflicts_with_dqo),
                check(r.autonomy),
                r.measured_normalized_response
                    .map_or("n/a".into(), |v| format!("{v:.2}")),
                r.measured_messages_per_query
                    .map_or("n/a".into(), |v| format!("{v:.1}")),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "mechanism",
                "distributed",
                "workload",
                "conflicts DQO",
                "autonomy",
                "norm. resp.",
                "msgs/query"
            ],
            &rows
        )
    );
    println!(
        "(Markov runs only on static workloads, hence no measured row in the dynamic experiment)"
    );

    let path = write_json("table2_comparison", &rows_data).expect("write result");
    println!("wrote {}", path.display());
}
