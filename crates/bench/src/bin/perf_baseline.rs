//! Pins the performance baseline: wall-clock of every sweep-shaped bench
//! bin (serial `QA_THREADS=1` vs parallel at the full thread budget) plus
//! the micro-bench suite, written to `bench_results/perf_baseline.json`.
//!
//! Each bin is timed as a subprocess (found next to this executable), so
//! the numbers include exactly what a user-invoked run pays. The real
//! cluster bin (`fig7_real_cluster`) is excluded — it spawns its own
//! threads and sleeps on wall-clock timers, so its duration measures the
//! experiment design, not the simulator.
//!
//! Scale and budget follow the usual env vars: `QA_SCALE` (ci/full) for
//! the bins, `QA_BENCH_SECONDS` for the micro cases.
//! `scripts/bench_baseline.sh` wraps this with a `--quick` mode for CI.

use qa_bench::micro::{self, MicroResult};
use qa_bench::write_json;
use qa_simnet::thread_budget;
use std::process::{Command, Stdio};
use std::time::Instant;

/// The sweep-shaped bins the parallel runner accelerates.
const SWEEP_BINS: [&str; 11] = [
    "fig3_sinusoid_workload",
    "fig4_all_algorithms",
    "fig5a_load_sweep",
    "fig5b_frequency_sweep",
    "fig5c_tracking",
    "fig6_zipf_sweep",
    "table2_comparison",
    "table3_parameters",
    "ablation_market",
    "ext_fairness",
    "ext_resilience",
];

#[derive(Debug, Clone)]
struct BinTiming {
    bin: String,
    serial_s: f64,
    parallel_s: f64,
    speedup: f64,
}

qa_simnet::impl_to_json!(BinTiming {
    bin,
    serial_s,
    parallel_s,
    speedup
});

struct PerfBaseline {
    scale: String,
    threads: usize,
    bins: Vec<BinTiming>,
    micro: Vec<MicroResult>,
}

qa_simnet::impl_to_json!(PerfBaseline {
    scale,
    threads,
    bins,
    micro
});

/// Runs a sibling bin once with the given thread budget, returning its
/// wall-clock seconds. Output is discarded — only the JSON the bin writes
/// under `bench_results/` remains, same as a user run.
fn time_bin(name: &str, threads: Option<usize>) -> f64 {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin directory");
    let mut cmd = Command::new(dir.join(name));
    match threads {
        Some(n) => {
            cmd.env("QA_THREADS", n.to_string());
        }
        None => {
            cmd.env_remove("QA_THREADS");
        }
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::inherit());
    let t = Instant::now();
    let status = cmd.status().unwrap_or_else(|e| panic!("spawn {name}: {e}"));
    assert!(status.success(), "{name} exited with {status}");
    t.elapsed().as_secs_f64()
}

fn main() {
    let scale = match qa_bench::scale() {
        qa_bench::Scale::Ci => "ci",
        qa_bench::Scale::Full => "full",
    };
    let threads = thread_budget();
    println!("perf baseline — scale {scale}, thread budget {threads}\n");

    let mut bins = Vec::new();
    for name in SWEEP_BINS {
        let serial_s = time_bin(name, Some(1));
        let parallel_s = time_bin(name, None);
        let speedup = serial_s / parallel_s.max(1e-9);
        println!("{name:<28} serial {serial_s:>8.3}s   parallel {parallel_s:>8.3}s   speedup {speedup:>5.2}x");
        bins.push(BinTiming {
            bin: name.to_string(),
            serial_s,
            parallel_s,
            speedup,
        });
    }
    println!();

    let micro = micro::run_all();

    let baseline = PerfBaseline {
        scale: scale.to_string(),
        threads,
        bins,
        micro,
    };
    let path = write_json("perf_baseline", &baseline).expect("write result");
    println!("\nwrote {}", path.display());
}
