//! Pins the performance baseline: wall-clock of every sweep-shaped bench
//! bin (serial `QA_THREADS=1` vs parallel at the full thread budget) plus
//! the micro-bench suite, written to `bench_results/perf_baseline.json`.
//!
//! Each bin is timed as a subprocess (found next to this executable), so
//! the numbers include exactly what a user-invoked run pays. The real
//! cluster bin (`fig7_real_cluster`) is excluded — it spawns its own
//! threads and sleeps on wall-clock timers, so its duration measures the
//! experiment design, not the simulator.
//!
//! Scale and budget follow the usual env vars: `QA_SCALE` (ci/full) for
//! the bins, `QA_BENCH_SECONDS` for the micro cases.
//! `scripts/bench_baseline.sh` wraps this with a `--quick` mode for CI.
//!
//! ## Check mode
//!
//! `perf_baseline --check-against <pinned.json>` runs only the micro
//! suite and compares each case against the pinned file's `ns_per_iter`,
//! failing (exit 1) when any case regressed by more than
//! [`CHECK_TOLERANCE`]× or a pinned case disappeared from the suite. The
//! sweep-bin wall-clocks are informational only — they measure the
//! machine as much as the code — so the gate is the micro suite, whose
//! generous tolerance absorbs CI-runner noise while still catching
//! order-of-magnitude regressions.

use qa_bench::micro::{self, MicroResult};
use qa_bench::write_json;
use qa_simnet::{thread_budget, Json};
use std::process::{Command, Stdio};
use std::time::Instant;

/// A micro case fails the check when it is slower than `tolerance ×
/// pinned`. 3× is deliberately loose: shared CI runners jitter by
/// integer factors, and the gate exists to catch structural regressions
/// (an accidental O(n²), a lost fast path), not percent-level drift.
const CHECK_TOLERANCE: f64 = 3.0;

/// The sweep-shaped bins the parallel runner accelerates.
const SWEEP_BINS: [&str; 11] = [
    "fig3_sinusoid_workload",
    "fig4_all_algorithms",
    "fig5a_load_sweep",
    "fig5b_frequency_sweep",
    "fig5c_tracking",
    "fig6_zipf_sweep",
    "table2_comparison",
    "table3_parameters",
    "ablation_market",
    "ext_fairness",
    "ext_resilience",
];

#[derive(Debug, Clone)]
struct BinTiming {
    bin: String,
    serial_s: f64,
    parallel_s: f64,
    speedup: f64,
}

qa_simnet::impl_to_json!(BinTiming {
    bin,
    serial_s,
    parallel_s,
    speedup
});

struct PerfBaseline {
    scale: String,
    threads: usize,
    bins: Vec<BinTiming>,
    micro: Vec<MicroResult>,
}

qa_simnet::impl_to_json!(PerfBaseline {
    scale,
    threads,
    bins,
    micro
});

/// Runs a sibling bin once with the given thread budget, returning its
/// wall-clock seconds. Output is discarded — only the JSON the bin writes
/// under `bench_results/` remains, same as a user run.
fn time_bin(name: &str, threads: Option<usize>) -> f64 {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin directory");
    let mut cmd = Command::new(dir.join(name));
    match threads {
        Some(n) => {
            cmd.env("QA_THREADS", n.to_string());
        }
        None => {
            cmd.env_remove("QA_THREADS");
        }
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::inherit());
    let t = Instant::now();
    let status = cmd.status().unwrap_or_else(|e| panic!("spawn {name}: {e}"));
    assert!(status.success(), "{name} exited with {status}");
    t.elapsed().as_secs_f64()
}

/// Parses the `micro` section of a pinned `perf_baseline.json` into
/// `(name, ns_per_iter)` pairs.
fn pinned_micro(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read pinned baseline {path}: {e}"));
    let json = Json::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let cases = json
        .get("micro")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{path}: no `micro` array"));
    cases
        .iter()
        .map(|c| {
            let name = match c.get("name") {
                Some(Json::Str(s)) => s.clone(),
                other => panic!("{path}: bad case name {other:?}"),
            };
            let ns = match c.get("ns_per_iter") {
                Some(Json::Float(v)) => *v,
                Some(Json::Int(v)) => *v as f64,
                other => panic!("{path}: bad ns_per_iter {other:?}"),
            };
            (name, ns)
        })
        .collect()
}

/// Runs the micro suite and diffs it against the pinned baseline.
/// Returns the process exit code.
fn check_against(path: &str) -> i32 {
    let pinned = pinned_micro(path);
    println!("checking micro suite against {path} (tolerance {CHECK_TOLERANCE}x)\n");
    let current = micro::run_all();
    println!();
    let mut failures = 0;
    for (name, pinned_ns) in &pinned {
        match current.iter().find(|c| &c.name == name) {
            None => {
                println!("FAIL {name}: pinned case missing from the current suite");
                failures += 1;
            }
            Some(c) => {
                let ratio = c.ns_per_iter / pinned_ns.max(1e-9);
                if ratio > CHECK_TOLERANCE {
                    println!(
                        "FAIL {name}: {:.0} ns vs pinned {:.0} ns ({ratio:.2}x > {CHECK_TOLERANCE}x)",
                        c.ns_per_iter, pinned_ns
                    );
                    failures += 1;
                } else {
                    println!(
                        "ok   {name}: {:.0} ns vs pinned {:.0} ns ({ratio:.2}x)",
                        c.ns_per_iter, pinned_ns
                    );
                }
            }
        }
    }
    for c in &current {
        if !pinned.iter().any(|(n, _)| n == &c.name) {
            println!("note {}: not pinned yet (informational)", c.name);
        }
    }
    if failures > 0 {
        println!("\nperf check FAILED: {failures} case(s) regressed past {CHECK_TOLERANCE}x");
        1
    } else {
        println!(
            "\nperf check passed: {} case(s) within tolerance",
            pinned.len()
        );
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check-against") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--check-against needs a path"));
        std::process::exit(check_against(path));
    }
    let scale = match qa_bench::scale() {
        qa_bench::Scale::Ci => "ci",
        qa_bench::Scale::Full => "full",
    };
    let threads = thread_budget();
    println!("perf baseline — scale {scale}, thread budget {threads}\n");

    let mut bins = Vec::new();
    for name in SWEEP_BINS {
        let serial_s = time_bin(name, Some(1));
        let parallel_s = time_bin(name, None);
        let speedup = serial_s / parallel_s.max(1e-9);
        println!("{name:<28} serial {serial_s:>8.3}s   parallel {parallel_s:>8.3}s   speedup {speedup:>5.2}x");
        bins.push(BinTiming {
            bin: name.to_string(),
            serial_s,
            parallel_s,
            speedup,
        });
    }
    println!();

    let micro = micro::run_all();

    let baseline = PerfBaseline {
        scale: scale.to_string(),
        threads,
        bins,
        micro,
    };
    let path = write_json("perf_baseline", &baseline).expect("write result");
    println!("\nwrote {}", path.display());
}
