//! Figure 7: the real (threaded, live-DBMS) deployment — mean assignment
//! time and mean total time for Greedy and QA-NT at two inter-arrival
//! settings (the paper's 300 ms and 400 ms experiments, time-scaled).

use qa_bench::{fmt_ms, render_table, scale, write_json, Scale};
use qa_cluster::{run_experiment, ClusterConfig, ClusterMechanism, ClusterSpec};

struct Fig7Row {
    experiment: String,
    mechanism: String,
    mean_assign_ms: f64,
    mean_total_ms: f64,
    failed: usize,
}

qa_simnet::impl_to_json!(Fig7Row {
    experiment,
    mechanism,
    mean_assign_ms,
    mean_total_ms,
    failed
});

fn main() {
    let (spec, configs): (ClusterSpec, Vec<(String, ClusterConfig, ClusterConfig)>) = match scale()
    {
        Scale::Ci => {
            let spec = ClusterSpec::generate(2007, 5, 8, 16, 8, 80);
            let mk = |mech, seed| {
                let mut c = ClusterConfig::ci_scale(mech, seed);
                c.num_queries = 60;
                c
            };
            (
                spec,
                vec![(
                    "interarrival 5 ms (scaled)".to_string(),
                    mk(ClusterMechanism::Greedy, 1),
                    mk(ClusterMechanism::QaNt, 1),
                )],
            )
        }
        Scale::Full => {
            let rows = ClusterConfig::paper_scale(ClusterMechanism::Greedy, 0, 30).rows_per_table;
            let spec = ClusterSpec::paper(2007, rows);
            (
                spec,
                vec![
                    (
                        "300 queries @ 30 ms (paper: 300 ms)".to_string(),
                        ClusterConfig::paper_scale(ClusterMechanism::Greedy, 1, 30),
                        ClusterConfig::paper_scale(ClusterMechanism::QaNt, 1, 30),
                    ),
                    (
                        "300 queries @ 40 ms (paper: 400 ms)".to_string(),
                        ClusterConfig::paper_scale(ClusterMechanism::Greedy, 2, 40),
                        ClusterConfig::paper_scale(ClusterMechanism::QaNt, 2, 40),
                    ),
                ],
            )
        }
    };

    println!("Figure 7 — real implementation over live engines (5 threaded nodes)\n");
    let mut out_rows = Vec::new();
    for (label, greedy_cfg, qant_cfg) in configs {
        let g = run_experiment(&spec, &greedy_cfg).expect("spec has evaluable classes");
        let q = run_experiment(&spec, &qant_cfg).expect("spec has evaluable classes");
        for r in [&g, &q] {
            out_rows.push(Fig7Row {
                experiment: label.clone(),
                mechanism: r.mechanism.clone(),
                mean_assign_ms: r.mean_assign_ms,
                mean_total_ms: r.mean_total_ms,
                failed: r.failed,
            });
        }
    }
    let rows: Vec<Vec<String>> = out_rows
        .iter()
        .map(|r| {
            vec![
                r.experiment.clone(),
                r.mechanism.clone(),
                fmt_ms(r.mean_assign_ms),
                fmt_ms(r.mean_total_ms),
                r.failed.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "experiment",
                "mechanism",
                "assign (ms)",
                "total (ms)",
                "failed"
            ],
            &rows
        )
    );
    println!(
        "paper shape: QA-NT total < Greedy total; assignment dominated by the slowest replier"
    );

    let path = write_json("fig7_real_cluster", &out_rows).expect("write result");
    println!("wrote {}", path.display());
}
