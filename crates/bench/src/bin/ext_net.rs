//! Extension experiment: the market over real sockets.
//!
//! Every other experiment drives the threaded in-process cluster; this
//! one adds a **TCP-loopback column**: the same seeded federation runs as
//! five real `qad` child processes on `127.0.0.1` ephemeral ports, with
//! the driver talking `qa-net` frames over the [`TcpTransport`]. The
//! sweep crosses negotiation-loss probability with a mid-run crash (the
//! crash is a real process exit, delivered as a wire `Shutdown`), so the
//! table answers: *does the market's fault story survive contact with an
//! actual network stack?*
//!
//! Per condition and transport: completion rate, mean assignment and
//! total latency, failed queries, and (TCP only) whether every server
//! process exited cleanly. Requires the workspace bins to be built
//! (`cargo build --release`) or `QAD_BIN` pointing at a `qad` binary.

use qa_bench::{fmt_ms, render_table, scale, write_json, Scale, Sweep};
use qa_cluster::ctl::Federation;
use qa_cluster::{run_experiment, run_workload, ExperimentResult, FedConfig, Transport};
use qa_simnet::telemetry::Telemetry;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const DROPS: [f64; 3] = [0.0, 0.10, 0.20];

/// Which node dies and when (only in `crashes = 1` cells). Over TCP the
/// "crash" is the server process actually exiting.
const CRASH_NODE: usize = 1;
const CRASH_AT: Duration = Duration::from_millis(60);

struct Row {
    transport: String,
    drop_prob: f64,
    crashes: usize,
    completion_rate: f64,
    mean_assign_ms: f64,
    mean_total_ms: f64,
    failed: usize,
    clean_shutdown: bool,
}

struct Results {
    rows: Vec<Row>,
}

qa_simnet::impl_to_json!(Row {
    transport,
    drop_prob,
    crashes,
    completion_rate,
    mean_assign_ms,
    mean_total_ms,
    failed,
    clean_shutdown
});
qa_simnet::impl_to_json!(Results { rows });

/// The federation under test: the `qa-ctl init` template at bench scale.
fn fed_for(drop_prob: f64, queries: usize) -> FedConfig {
    let mut fed = FedConfig::example();
    fed.num_queries = queries;
    fed.drop_prob = drop_prob;
    fed
}

/// Locates `qad`: the `QAD_BIN` env var, or a sibling of this bench
/// binary (both live in `target/<profile>/`).
fn find_qad() -> PathBuf {
    if let Ok(p) = std::env::var("QAD_BIN") {
        return PathBuf::from(p);
    }
    let me = std::env::current_exe().expect("current_exe");
    let sibling = me.with_file_name(if cfg!(windows) { "qad.exe" } else { "qad" });
    assert!(
        sibling.exists(),
        "cannot find qad at {} — run `cargo build --release` first or set QAD_BIN",
        sibling.display()
    );
    sibling
}

fn row(transport: &str, fed: &FedConfig, crashes: usize, r: &ExperimentResult, clean: bool) -> Row {
    Row {
        transport: transport.to_string(),
        drop_prob: fed.drop_prob,
        crashes,
        completion_rate: r.completion_rate,
        mean_assign_ms: r.mean_assign_ms,
        mean_total_ms: r.mean_total_ms,
        failed: r.failed,
        clean_shutdown: clean,
    }
}

/// One TCP cell: spawn the federation as child processes, replay the
/// workload over loopback sockets, tear everything down.
fn tcp_cell(
    fed: &FedConfig,
    crashes: usize,
    qad: &Path,
    scratch: &Path,
    idx: usize,
) -> (ExperimentResult, bool) {
    let config_path = scratch.join(format!("cell{idx}.json"));
    std::fs::write(&config_path, fed.dump()).expect("write federation config");
    let federation = Federation::spawn(fed, qad, config_path.to_str().expect("utf-8 path"), None)
        .expect("spawn federation");
    let telemetry = Telemetry::disabled();
    let transport: Arc<dyn Transport> =
        Arc::new(federation.connect(&telemetry).expect("connect to fleet"));
    let mut cfg = fed.cluster_config(telemetry);
    if crashes > 0 {
        cfg.crashes = vec![(CRASH_NODE, CRASH_AT)];
    }
    let result = run_workload(&fed.spec(), &cfg, Arc::clone(&transport)).expect("TCP-loopback run");
    transport.shutdown();
    let clean = federation.wait();
    (result, clean)
}

fn main() {
    let queries = match scale() {
        Scale::Ci => 24,
        Scale::Full => 96,
    };
    let qad = find_qad();
    let scratch = std::env::temp_dir().join(format!("qa-ext-net-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    println!(
        "Real-socket extension — {queries} queries per cell, 5-node federation,\n\
         drop × crash sweep, channel transport vs TCP loopback\n"
    );

    let mut conditions: Vec<(usize, f64)> = Vec::new();
    for &crashes in &[0usize, 1] {
        for &p in &DROPS {
            conditions.push((crashes, p));
        }
    }
    let rows: Vec<Row> = Sweep::from_env()
        .map(&conditions, |idx, &(crashes, p)| {
            let fed = fed_for(p, queries);
            // Channel column: the same FedConfig through the in-process
            // transport (run_experiment spawns and reaps its own fleet).
            let mut cfg = fed.cluster_config(Telemetry::disabled());
            if crashes > 0 {
                cfg.crashes = vec![(CRASH_NODE, CRASH_AT)];
            }
            let chan = run_experiment(&fed.spec(), &cfg).expect("channel run");
            // TCP column: real processes, real sockets, same seed.
            let (tcp, clean) = tcp_cell(&fed, crashes, &qad, &scratch, idx);
            vec![
                row("channel", &fed, crashes, &chan, true),
                row("tcp-loopback", &fed, crashes, &tcp, clean),
            ]
        })
        .into_iter()
        .flatten()
        .collect();
    let _ = std::fs::remove_dir_all(&scratch);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.transport.clone(),
                format!("{:.0}%", r.drop_prob * 100.0),
                r.crashes.to_string(),
                format!("{:.1}%", r.completion_rate * 100.0),
                fmt_ms(r.mean_assign_ms),
                fmt_ms(r.mean_total_ms),
                r.failed.to_string(),
                if r.clean_shutdown { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "transport",
                "drop",
                "crashes",
                "completed",
                "assign (ms)",
                "total (ms)",
                "failed",
                "clean exit"
            ],
            &table
        )
    );
    println!(
        "Allocation quality (completion, failures) must track the channel\n\
         column at every loss level — the market does not care which wire\n\
         carried the offer. Latency diverges under loss by design: the\n\
         in-process fleet hangs up a dropped reply's channel instantly,\n\
         while over real sockets the loss detector is the reply deadline,\n\
         so every lossy round costs one deadline before §2.2 resubmits.\n"
    );

    let results = Results { rows };
    let path = write_json("ext_net", &results).expect("write result");
    println!("wrote {}", path.display());
}
