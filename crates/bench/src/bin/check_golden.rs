//! Golden-trace gate: replays the simulator's golden spec and diffs the
//! resulting JSONL byte-for-byte against the checked-in golden.
//!
//! Usage:
//!   `check_golden [path]`           — verify (default path: [`qa_sim::GOLDEN_PATH`])
//!   `check_golden --bless [path]`   — regenerate the golden in place
//!
//! On divergence it prints a pointed report naming the first differing
//! event with surrounding context and a caret at the first differing
//! byte, then exits non-zero. Regenerate deliberately with `--bless` and
//! commit the new golden alongside the behaviour change that caused it.

use qa_sim::{check_golden_text, run_golden, GOLDEN_PATH, GOLDEN_SEED};
use std::process::ExitCode;

fn bless(path: &str) -> Result<(), String> {
    let dump = run_golden(GOLDEN_SEED);
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(path, &dump.jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "check_golden: blessed {path} ({} records, {} bytes, seed {GOLDEN_SEED})",
        dump.records.len(),
        dump.jsonl.len()
    );
    Ok(())
}

fn verify(path: &str) -> Result<(), String> {
    let golden = std::fs::read_to_string(path).map_err(|e| {
        format!("cannot read {path}: {e} (generate it with `check_golden --bless`)")
    })?;
    let records = check_golden_text(&golden, GOLDEN_SEED)?;
    println!("check_golden: {path}: {records} records byte-identical (seed {GOLDEN_SEED})");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut do_bless = false;
    let mut path: Option<String> = None;
    for arg in &args {
        match arg.as_str() {
            "--bless" => do_bless = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let path = path.unwrap_or_else(|| GOLDEN_PATH.to_string());
    let result = if do_bless {
        bless(&path)
    } else {
        verify(&path)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("check_golden: FAIL\n{e}");
            ExitCode::FAILURE
        }
    }
}
