//! Fleet-stats validator: proves a `qa-ctl stats` report is well-formed.
//!
//! Usage: `check_metrics <stats.json> --nodes N [--require name,...]
//! [--fetch ADDR]`
//!
//! Checks that the aggregated report says every node answered the scrape,
//! that the merged fleet registry carries the expected metric families
//! (the worker pre-registers its families at spawn, so even an idle fleet
//! must show them), and — with `--fetch` — that a live `/metrics`
//! endpoint serves syntactically valid Prometheus text exposition.
//! Exits non-zero on the first violation. This is the assertion half of
//! `scripts/metrics_smoke.sh`.

use qa_cluster::metrics_http::http_get;
use qa_simnet::json::Json;
use std::process::ExitCode;

/// Families every healthy `qad` fleet scrape must carry, even idle.
const REQUIRED_COUNTERS: &[&str] = &[
    "qad.queries_executed",
    "qad.offers_made",
    "qad.offers_rejected",
    "net.frames_sent",
    "net.frames_received",
    "net.bytes_sent",
    "net.bytes_received",
];
const REQUIRED_HISTOGRAMS: &[&str] = &["qad.exec_ms", "qad.period_ms"];
const REQUIRED_GAUGES: &[&str] = &["qad.backlog_ms"];

fn check_report(text: &str, nodes: usize, extra: &[String]) -> Result<(), String> {
    let report = Json::parse(text).map_err(|e| format!("stats report is not JSON: {e}"))?;
    let alive = report
        .get("alive")
        .and_then(Json::as_u64)
        .ok_or("report has no numeric 'alive'")?;
    let total = report
        .get("nodes")
        .and_then(Json::as_u64)
        .ok_or("report has no numeric 'nodes'")?;
    if total != nodes as u64 {
        return Err(format!("expected {nodes} nodes in report, found {total}"));
    }
    if alive != total {
        return Err(format!("only {alive}/{total} nodes answered the scrape"));
    }
    for n in 0..nodes {
        let node = report
            .get("per_node")
            .and_then(|p| p.get(&format!("node{n}")))
            .ok_or_else(|| format!("per_node is missing node{n}"))?;
        if !matches!(node.get("alive"), Some(Json::Bool(true))) {
            return Err(format!("node{n} is not alive"));
        }
    }
    let fleet = report.get("fleet").ok_or("report has no 'fleet' section")?;
    let present = |section: &str, name: &str| -> bool {
        fleet.get(section).and_then(|s| s.get(name)).is_some()
    };
    for name in REQUIRED_COUNTERS
        .iter()
        .copied()
        .chain(extra.iter().map(String::as_str))
    {
        if !present("counters", name) {
            return Err(format!("fleet.counters is missing family {name:?}"));
        }
    }
    for name in REQUIRED_HISTOGRAMS {
        if !present("histograms", name) {
            return Err(format!("fleet.histograms is missing family {name:?}"));
        }
    }
    for name in REQUIRED_GAUGES {
        if !present("gauges", name) {
            return Err(format!("fleet.gauges is missing family {name:?}"));
        }
    }
    Ok(())
}

/// Validates one line of Prometheus text exposition (0.0.4): a comment,
/// or `name[{labels}] value`.
fn valid_exposition_line(line: &str) -> bool {
    if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
        return true;
    }
    let (name_part, value) = match line.rsplit_once(' ') {
        Some(parts) => parts,
        None => return false,
    };
    let name = match name_part.split_once('{') {
        Some((n, labels)) => {
            if !labels.ends_with('}') {
                return false;
            }
            n
        }
        None => name_part,
    };
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && (value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN")
}

fn check_endpoint(addr: &str) -> Result<(), String> {
    let addr: std::net::SocketAddr = addr.parse().map_err(|e| format!("--fetch {addr:?}: {e}"))?;
    let (status, body) = http_get(&addr, "/metrics")?;
    if !status.contains("200") {
        return Err(format!("GET /metrics returned {status:?}"));
    }
    if body.is_empty() {
        return Err("GET /metrics returned an empty body".to_string());
    }
    for (i, line) in body.lines().enumerate() {
        if !valid_exposition_line(line) {
            return Err(format!(
                "/metrics line {} is not valid exposition: {line:?}",
                i + 1
            ));
        }
    }
    if !body.contains("_bucket{le=\"+Inf\"}") {
        return Err("/metrics has no histogram with a +Inf bucket".to_string());
    }
    let (status, _) = http_get(&addr, "/definitely-not-a-route")?;
    if !status.contains("404") {
        return Err(format!("unknown path returned {status:?}, want 404"));
    }
    Ok(())
}

fn run(argv: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut nodes = None;
    let mut extra: Vec<String> = Vec::new();
    let mut fetch: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--nodes" => {
                nodes = Some(
                    take("--nodes")?
                        .parse::<usize>()
                        .map_err(|e| format!("--nodes: {e}"))?,
                )
            }
            "--require" => extra.extend(
                take("--require")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string),
            ),
            "--fetch" => fetch.push(take("--fetch")?),
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("exactly one stats.json path expected".to_string());
                }
            }
        }
    }
    let path =
        path.ok_or("usage: check_metrics <stats.json> --nodes N [--require a,b] [--fetch ADDR]")?;
    let nodes = nodes.ok_or("--nodes N is required")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    check_report(&text, nodes, &extra)?;
    println!("stats report OK: {nodes} nodes alive, all required families present");
    for addr in &fetch {
        check_endpoint(addr)?;
        println!("exposition OK: {addr}/metrics");
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("check_metrics: {e}");
            ExitCode::FAILURE
        }
    }
}
