//! Telemetry trace dump: a seeded full-observability QA-NT replay.
//!
//! Runs [`qa_sim::run_trace_dump`] and writes two artifacts under
//! `bench_results/`:
//!
//! * `trace_dump.jsonl` — every telemetry event of the run, one JSON
//!   object per line. Sim-time timestamps and seeded randomness make this
//!   file **byte-deterministic**: two runs at the same scale and seed are
//!   identical (pinned by `tests/telemetry.rs`, validated in CI by
//!   `scripts/check_trace.sh`).
//! * `trace_dump_convergence.json` — run summary: outcome metrics, the
//!   convergence report over per-node price trajectories, and the metrics
//!   registry snapshot (wall-clock span timings — *not* deterministic).
//!
//! Scale via `QA_SCALE` (ci = 10 nodes / 20 s, full = 100 nodes / 120 s);
//! seed via `QA_SEED` (default 2007).

use qa_bench::{render_table, scale, write_json, Scale};
use qa_sim::{run_trace_dump, TraceDumpSpec};
use std::path::PathBuf;

fn main() {
    let seed = std::env::var("QA_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(2007);
    let spec = match scale() {
        Scale::Ci => TraceDumpSpec::ci(seed),
        Scale::Full => TraceDumpSpec::full(seed),
    };
    let dump = run_trace_dump(&spec);

    let dir = PathBuf::from("bench_results");
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    let jsonl_path = dir.join("trace_dump.jsonl");
    std::fs::write(&jsonl_path, &dump.jsonl).expect("write trace JSONL");

    println!(
        "Trace dump — QA-NT, seed {seed}, {} nodes, {} s horizon\n",
        spec.config.num_nodes, spec.secs
    );

    // Event census.
    let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for r in &dump.records {
        *counts.entry(r.event.kind()).or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = counts
        .iter()
        .map(|(k, v)| vec![k.to_string(), v.to_string()])
        .collect();
    println!("{}", render_table(&["event", "count"], &rows));

    // Convergence digest.
    let report = &dump.report;
    println!(
        "periods = {}, nodes = {}, price adjustments = {}, rejections = {}, \
         dropped = {}, crashes = {}",
        report.periods,
        report.nodes,
        report.price_adjustments,
        report.rejections,
        report.dropped_messages,
        report.crashes
    );
    for c in &report.per_class {
        let settled = match c.stabilized_at_period {
            Some(p) => format!("stabilized at period {p}"),
            None => "still moving in the final period".to_string(),
        };
        println!(
            "  class {}: {} adjustments, final mean price {:.4}, {} (tol {})",
            c.class, c.adjustments, c.final_mean_price, settled, spec.convergence_tol
        );
    }

    println!(
        "\nwrote {} ({} records)",
        jsonl_path.display(),
        dump.records.len()
    );
    let path = write_json("trace_dump_convergence", &dump.summary).expect("write summary");
    println!("wrote {}", path.display());
}
