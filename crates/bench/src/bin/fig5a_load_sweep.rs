//! Figure 5a: Greedy's normalized response time vs average workload
//! (10–300 % of total system capacity, 0.05 Hz sinusoid).

use qa_bench::{fmt_ms, render_table, scale, write_json, Scale, Sweep};
use qa_sim::config::SimConfig;
use qa_sim::experiments::fig5a_point;
use qa_sim::scenario::{Scenario, TwoClassParams};

fn main() {
    let (config, fractions, secs): (SimConfig, Vec<f64>, u64) = match scale() {
        Scale::Ci => (SimConfig::small_test(2007), vec![0.3, 0.8, 1.5], 20),
        Scale::Full => (
            SimConfig::paper_defaults(),
            vec![0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0],
            60,
        ),
    };
    let scenario = Scenario::two_class(config, TwoClassParams::default());
    let pts = Sweep::from_env().map(&fractions, |_, &f| fig5a_point(&scenario, f, secs));

    println!("Figure 5a — Greedy normalized response vs average load (fraction of capacity)\n");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.x * 100.0),
                fmt_ms(p.qant_ms),
                fmt_ms(p.greedy_ms),
                format!("{:.3}", p.normalized_greedy),
                p.qant_unserved.to_string(),
                p.greedy_unserved.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "load",
                "QA-NT (ms)",
                "Greedy (ms)",
                "greedy/qant",
                "qant uns.",
                "greedy uns."
            ],
            &rows
        )
    );
    println!("paper shape: ratio < 1 at light load (greedy ~5% faster), > 1 beyond the crossover");

    let path = write_json("fig5a_load_sweep", &pts).expect("write result");
    println!("wrote {}", path.display());
}
