//! Table 3: the simulation parameters — printed from the actual generated
//! world, so the table is a measurement, not a restatement.

use qa_bench::{render_table, write_json, Sweep};
use qa_sim::config::SimConfig;
use qa_sim::scenario::Scenario;

struct Table3 {
    num_nodes: usize,
    hash_join_nodes: usize,
    cpu_ghz_mean: f64,
    io_mbps_mean: f64,
    buffer_mb_mean: f64,
    num_relations: usize,
    relation_mb_mean: f64,
    mean_mirrors: f64,
    num_classes: usize,
    joins_mean: f64,
    base_cost_ms_mean: f64,
}

qa_simnet::impl_to_json!(Table3 {
    num_nodes,
    hash_join_nodes,
    cpu_ghz_mean,
    io_mbps_mean,
    buffer_mb_mean,
    num_relations,
    relation_mb_mean,
    mean_mirrors,
    num_classes,
    joins_mean,
    base_cost_ms_mean
});

fn main() {
    let config = SimConfig::paper_defaults();
    let s = Scenario::table3(config);

    // Each table row is an independent measurement over the shared world;
    // the sweep fans them out (and, at thread budget 1, runs the exact
    // serial loop).
    let stats: [fn(&Scenario) -> f64; 11] = [
        |s| s.hardware.len() as f64,
        |s| s.hardware.iter().filter(|h| h.hash_join).count() as f64,
        |s| s.hardware.iter().map(|h| h.cpu_ghz).sum::<f64>() / s.hardware.len() as f64,
        |s| s.hardware.iter().map(|h| h.io_mbps).sum::<f64>() / s.hardware.len() as f64,
        |s| s.hardware.iter().map(|h| h.buffer_mb).sum::<f64>() / s.hardware.len() as f64,
        |s| s.dataset.num_relations() as f64,
        |s| {
            (0..s.dataset.num_relations())
                .map(|i| {
                    s.dataset
                        .relation(qa_workload::RelationId(i as u32))
                        .size_bytes as f64
                        / (1 << 20) as f64
                })
                .sum::<f64>()
                / s.dataset.num_relations() as f64
        },
        |s| s.dataset.mean_mirrors(),
        |s| s.templates.num_classes() as f64,
        |s| {
            s.templates.iter().map(|t| t.joins as f64).sum::<f64>()
                / s.templates.num_classes() as f64
        },
        |s| s.templates.mean_base_cost().as_millis_f64(),
    ];
    let v = Sweep::from_env().map(&stats, |_, f| f(&s));

    let t = Table3 {
        num_nodes: v[0] as usize,
        hash_join_nodes: v[1] as usize,
        cpu_ghz_mean: v[2],
        io_mbps_mean: v[3],
        buffer_mb_mean: v[4],
        num_relations: v[5] as usize,
        relation_mb_mean: v[6],
        mean_mirrors: v[7],
        num_classes: v[8] as usize,
        joins_mean: v[9],
        base_cost_ms_mean: v[10],
    };

    println!("Table 3 — simulation parameters (measured from the generated world)\n");
    let rows = vec![
        vec![
            "Total size of network".into(),
            format!("{} nodes", t.num_nodes),
            "100 nodes".into(),
        ],
        vec![
            "Hash-join capable nodes".into(),
            t.hash_join_nodes.to_string(),
            "95".into(),
        ],
        vec![
            "CPU (avg)".into(),
            format!("{:.2} GHz", t.cpu_ghz_mean),
            "2.3 GHz".into(),
        ],
        vec![
            "I/O speed (avg)".into(),
            format!("{:.1} MB/s", t.io_mbps_mean),
            "42.5 MB/s".into(),
        ],
        vec![
            "Sort/hash buffers (avg)".into(),
            format!("{:.1} MB", t.buffer_mb_mean),
            "6 MB".into(),
        ],
        vec![
            "# of relations".into(),
            t.num_relations.to_string(),
            "1,000".into(),
        ],
        vec![
            "Relation size (avg)".into(),
            format!("{:.1} MB", t.relation_mb_mean),
            "10.5 MB".into(),
        ],
        vec![
            "Mirrors per relation (avg)".into(),
            format!("{:.1}", t.mean_mirrors),
            "5".into(),
        ],
        vec![
            "# of query classes".into(),
            t.num_classes.to_string(),
            "100".into(),
        ],
        vec![
            "Joins per query (avg)".into(),
            format!("{:.1}", t.joins_mean),
            "24".into(),
        ],
        vec![
            "Best execution time (avg)".into(),
            format!("{:.0} ms", t.base_cost_ms_mean),
            "2,000 ms".into(),
        ],
    ];
    println!(
        "{}",
        render_table(&["parameter", "measured", "paper"], &rows)
    );

    let path = write_json("table3_parameters", &t).expect("write result");
    println!("wrote {}", path.display());
}
