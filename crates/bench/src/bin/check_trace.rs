//! Trace validator: proves a JSONL telemetry trace is well-formed.
//!
//! Usage: `check_trace <trace.jsonl> [--require kind1,kind2,...]`
//!
//! For every line the validator runs the strict parser
//! ([`qa_simnet::telemetry::TraceRecord::parse_line`]) and then re-dumps
//! the record, requiring byte equality with the input line — any schema
//! drift between the emitters and the parser fails CI here, not in a
//! downstream consumer. It also checks timestamps are monotone
//! non-decreasing (traces are emitted in event-loop order) and, with
//! `--require`, that every listed event kind actually occurs. Exits
//! non-zero on any violation, printing the first offending line.

use qa_simnet::json::ToJson;
use qa_simnet::telemetry::TraceRecord;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn run(path: &str, required: &[String]) -> Result<BTreeMap<String, u64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut last_t = 0u64;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            return Err(format!("{path}:{lineno}: empty line"));
        }
        let record = TraceRecord::parse_line(line)
            .map_err(|e| format!("{path}:{lineno}: parse error: {e}"))?;
        let redumped = record.to_json().dump();
        if redumped != line {
            return Err(format!(
                "{path}:{lineno}: not canonical\n  input:  {line}\n  redump: {redumped}"
            ));
        }
        if record.t_us < last_t {
            return Err(format!(
                "{path}:{lineno}: timestamp regression {} -> {}",
                last_t, record.t_us
            ));
        }
        last_t = record.t_us;
        *counts.entry(record.event.kind().to_string()).or_insert(0) += 1;
    }
    if counts.is_empty() {
        return Err(format!("{path}: trace is empty"));
    }
    for kind in required {
        if !counts.contains_key(kind) {
            return Err(format!(
                "{path}: required event kind '{kind}' never occurs (saw: {})",
                counts.keys().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    Ok(counts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require" => {
                if i + 1 >= args.len() {
                    eprintln!("--require needs a comma-separated kind list");
                    return ExitCode::FAILURE;
                }
                required.extend(
                    args[i + 1]
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.to_string()),
                );
                i += 2;
            }
            other if path.is_none() => {
                path = Some(other.to_string());
                i += 1;
            }
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: check_trace <trace.jsonl> [--require kind1,kind2,...]");
        return ExitCode::FAILURE;
    };
    match run(&path, &required) {
        Ok(counts) => {
            let total: u64 = counts.values().sum();
            println!("{path}: {total} records OK");
            for (kind, n) in &counts {
                println!("  {kind}: {n}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_trace: {e}");
            ExitCode::FAILURE
        }
    }
}
