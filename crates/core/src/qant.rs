//! The QA-NT algorithm (§3.3) — per-node server-side state machine.
//!
//! Direct transcription of the paper's pseudo-code:
//!
//! ```text
//! 1  Repeat for ever
//! 2    Given the current prices p⃗, solve (4). This calculates the
//!      optimal supply vector s⃗ᵢ of the node.
//! 3    While a time period τ has not elapsed do
//! 4      If a client asks to evaluate qₖ and s_ik > 0 then
//! 5        Offer to evaluate the query.
//! 6        If offer is accepted set s_ik = s_ik − 1.
//! 7      Else
//! 8        Do not offer to evaluate query qₖ.
//! 9        Set pₖ = pₖ + λpₖ.
//! 10     End If
//! 11   End while
//! 12   For each k s.t. s_ik > 0 do
//! 13     Set pₖ = pₖ − s_ik λ pₖ
//! 14   End For
//! 15 End Repeat
//! ```
//!
//! plus the §5.1 *price-threshold* refinement: a node "will properly track
//! query prices but will only use them to calculate the node's query supply
//! vectors if they are above a specific threshold" — below the threshold
//! the node behaves like an always-offer server (the market is a pure
//! overload-control mechanism).

use qa_economics::{
    DensityOrderCache, NonTatonnementPricer, PriceVector, PricerConfig, QuantityVector,
};
use qa_simnet::telemetry::{Telemetry, TelemetryEvent};
use qa_simnet::{DetRng, SimDuration};
use qa_workload::ClassId;

/// QA-NT tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QantConfig {
    /// Price dynamics (λ, floor, ceiling, initial).
    pub pricer: PricerConfig,
    /// Length of the time period τ (paper default: 500 ms).
    pub period: SimDuration,
    /// Optional §5.1 threshold: when `Some(t)` and every private price is
    /// ≤ `t × its initial value`, the node offers unconditionally (supply
    /// restriction off). Measured relative to the node's own initial
    /// prices so that per-node jitter does not count as market stress.
    pub price_threshold: Option<f64>,
    /// Log-space half-width of per-node initial price jitter (see
    /// [`QantNode::with_jitter`]); 0 = no jitter.
    pub initial_price_jitter: f64,
    /// Renormalize private prices (geometric mean → 1) at every period
    /// end. Scale-invariant (only relative prices drive supply), it keeps
    /// long overloads from saturating the clamps and measurably improves
    /// near-capacity behaviour. **Do not combine with `price_threshold`**:
    /// the recentring lets decayed idle classes drag the mean down and
    /// catapult active classes across the threshold — threshold
    /// deployments should set this to `false`.
    pub renormalize_prices: bool,
}

impl Default for QantConfig {
    fn default() -> Self {
        QantConfig {
            pricer: PricerConfig::default(),
            period: SimDuration::from_millis(500),
            price_threshold: None,
            initial_price_jitter: 1.5,
            renormalize_prices: true,
        }
    }
}

/// Per-node QA-NT state: private prices + current-period supply vector.
#[derive(Debug, Clone)]
pub struct QantNode {
    config: QantConfig,
    pricer: NonTatonnementPricer,
    /// Remaining supply for the current period (`None` before the first
    /// `begin_period`).
    supply: Option<QuantityVector>,
    /// Initial prices (post-jitter), the baseline for the §5.1 threshold.
    initial_prices: Vec<f64>,
    /// Error-diffusion carry: the fractional part of the relaxed eq.-4
    /// solution rolls into the next period, so a class whose equilibrium
    /// amount is e.g. 0.5/period (execution time longer than `T`) is
    /// supplied every other period instead of never. This is the integer
    /// rounding the paper discusses in §5.1.
    carry: Vec<f64>,
    /// The node's per-class execution times used to build the supply set
    /// (refreshed each period — estimates may improve over time). Owned
    /// buffer, refilled in place so steady-state periods allocate nothing.
    unit_costs_ms: Vec<Option<f64>>,
    /// Memoized price-density ordering for the supply solve; re-sorted
    /// only when prices or unit costs actually changed since last period.
    order_cache: DensityOrderCache,
    /// Retired supply buffer, recycled by the next `begin_period` so the
    /// steady-state period cycle performs no quantity-vector allocations.
    spare: Option<QuantityVector>,
    /// Market-event sink (disabled by default: one branch per emit site).
    telemetry: Telemetry,
}

impl QantNode {
    /// A node over `k` query classes with uniform initial prices.
    pub fn new(k: usize, config: QantConfig) -> QantNode {
        QantNode {
            pricer: NonTatonnementPricer::new(k, config.pricer),
            initial_prices: vec![config.pricer.initial_price; k],
            config,
            supply: None,
            carry: vec![0.0; k],
            unit_costs_ms: vec![None; k],
            order_cache: DensityOrderCache::new(),
            spare: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// A node whose initial prices are jittered per class by
    /// `exp(U(-σ, σ))` with `σ = config.initial_price_jitter`.
    ///
    /// Under the multiplicative non-tâtonnement dynamics, log-price offsets
    /// between nodes never decay, so this one-time jitter permanently
    /// staggers the price ratios at which otherwise-identical nodes switch
    /// their supply between classes — the population splits into a stable
    /// mix of specializations instead of flip-flopping in lockstep.
    pub fn with_jitter(k: usize, config: QantConfig, rng: &mut DetRng) -> QantNode {
        let sigma = config.initial_price_jitter;
        assert!(sigma >= 0.0 && sigma.is_finite());
        let prices = PriceVector::from_prices(
            (0..k)
                .map(|_| {
                    let factor = if sigma > 0.0 {
                        rng.float_in(-sigma, sigma).exp()
                    } else {
                        1.0
                    };
                    (config.pricer.initial_price * factor)
                        .clamp(config.pricer.price_floor, config.pricer.price_ceiling)
                })
                .collect(),
        );
        let initial_prices = prices.as_slice().to_vec();
        QantNode {
            pricer: NonTatonnementPricer::with_prices(prices, config.pricer),
            initial_prices,
            config,
            supply: None,
            carry: vec![0.0; k],
            unit_costs_ms: vec![None; k],
            order_cache: DensityOrderCache::new(),
            spare: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle (label it with this node's id via
    /// [`Telemetry::with_label`]); supply solves, request rejections and
    /// the pricer's adjustments emit through it. Install *before* the
    /// first `begin_period` to capture the initial supply solve.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.pricer.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.pricer.num_classes()
    }

    /// The configuration.
    pub fn config(&self) -> &QantConfig {
        &self.config
    }

    /// The private prices (never sent over the network; exposed for
    /// diagnostics and tests only).
    pub fn prices(&self) -> &qa_economics::PriceVector {
        self.pricer.prices()
    }

    /// Batched log-price read (see
    /// [`NonTatonnementPricer::ln_prices_into`][qa_economics::NonTatonnementPricer::ln_prices_into]):
    /// one call per node fills the per-class signal row the sharded
    /// engine's period reports aggregate.
    pub fn ln_prices_into(&self, out: &mut [f64]) {
        self.pricer.ln_prices_into(out);
    }

    /// Remaining supply for the current period.
    pub fn supply(&self) -> Option<&QuantityVector> {
        self.supply.as_ref()
    }

    /// Step 2: start a period. `unit_costs_ms[k]` is this node's estimated
    /// execution time for class `k` in milliseconds (`None` = cannot run);
    /// `demand_caps` optionally bounds per-class supply by observed demand.
    /// The costs are copied into an internal buffer, so the per-period hot
    /// path never clones the caller's vector.
    pub fn begin_period(
        &mut self,
        unit_costs_ms: &[Option<f64>],
        demand_caps: Option<&QuantityVector>,
    ) {
        let budget = self.config.period.as_millis_f64();
        self.begin_period_with_budget(unit_costs_ms, demand_caps, budget);
    }

    /// [`Self::begin_period`] with an explicit capacity budget in
    /// milliseconds.
    ///
    /// The supply set "depends on [the node's] available hardware
    /// resources" (§2.2): an idle node can deliver up to two periods of
    /// work within the coming period-and-backlog window, a backlogged one
    /// proportionally less. Drivers pass `2T − current_backlog` so node
    /// queues stay bounded by `2T` while idle capacity is never refused —
    /// the work-conserving form of QA-NT admission control.
    pub fn begin_period_with_budget(
        &mut self,
        unit_costs_ms: &[Option<f64>],
        demand_caps: Option<&QuantityVector>,
        budget_ms: f64,
    ) {
        assert_eq!(unit_costs_ms.len(), self.num_classes());
        assert!(budget_ms.is_finite() && budget_ms >= 0.0);
        let _span = self.telemetry.span("qant.supply_solve");
        self.unit_costs_ms.clear();
        self.unit_costs_ms.extend_from_slice(unit_costs_ms);
        let period_ms = budget_ms;

        // Integer-greedy fill by price density, with two refinements over
        // the plain knapsack:
        //
        // * capacity left after the whole units of a denser class cascades
        //   to the next class — the paper's §3.2 example where a node
        //   supplies (1 q1, 1 q2) within one 500 ms period;
        // * the fractional remainder of each class rolls over to the next
        //   period (error diffusion), so a class whose equilibrium amount
        //   is e.g. 0.5/period (execution longer than `T`) is supplied
        //   every other period rather than never — the integer-rounding
        //   effect the paper analyses in §5.1.
        //
        // The density ordering is memoized: quiet periods (no rejection,
        // no leftover, no renormalization shift) reuse last period's sort.
        let k_classes = self.num_classes();
        let prices = self.pricer.prices();
        let order = self.order_cache.order(prices, &self.unit_costs_ms);
        let mut supply = match self.spare.take() {
            Some(mut s) if s.num_classes() == k_classes => {
                s.reset_zero();
                s
            }
            _ => QuantityVector::zeros(k_classes),
        };
        let mut remaining = period_ms;
        for &k in order {
            let t = self.unit_costs_ms[k].expect("filtered");
            // Fractional allotment this period plus the rolled-over carry.
            let alloc = remaining / t + self.carry[k];
            let mut units = alloc.floor().max(0.0) as u64;
            if let Some(caps) = demand_caps {
                units = units.min(caps.get(k));
            }
            supply.set(k, units);
            // Carry keeps the unreleased fraction, clamped to < 1 so a
            // demand-capped class cannot hoard unbounded future supply.
            self.carry[k] = (alloc - units as f64).clamp(0.0, 0.999_999);
            remaining = (remaining - units as f64 * t).max(0.0);
        }
        let telemetry = &self.telemetry;
        telemetry.emit(|| TelemetryEvent::SupplyComputed {
            node: telemetry.label(),
            budget_ms,
            supply: supply.as_slice().to_vec(),
        });
        self.supply = Some(supply);
    }

    /// `true` when the §5.1 threshold says the market is quiet and supply
    /// restriction should be bypassed: no price has inflated past
    /// `threshold ×` its initial value.
    fn threshold_bypass(&self) -> bool {
        match self.config.price_threshold {
            Some(t) => !self
                .pricer
                .prices()
                .iter()
                .any(|(k, p)| p > t * self.initial_prices[k]),
            None => false,
        }
    }

    /// Steps 4–10: a request for class `k` arrived. Returns `true` when
    /// the node offers. A refusal raises the private price (step 9).
    ///
    /// In the §5.1 threshold mode the node "properly track[s] query
    /// prices" regardless: supply exhaustion still raises the price even
    /// while the node keeps offering — that is how a quiet market learns
    /// it is becoming overloaded and engages the restriction.
    pub fn on_request(&mut self, class: ClassId) -> bool {
        let k = class.index();
        let can_run = self.unit_costs_ms.get(k).copied().flatten().is_some();
        if !can_run {
            // No data for this class: not a market event, no price change.
            return false;
        }
        let available = self.supply.as_ref().is_some_and(|s| s.get(k) > 0);
        if !available {
            self.pricer.on_rejection(k);
        }
        let offered = available || self.threshold_bypass();
        if !offered {
            let telemetry = &self.telemetry;
            telemetry.emit(|| TelemetryEvent::RequestRejected {
                node: telemetry.label(),
                class: k as u32,
            });
        }
        offered
    }

    /// Applies the price side effects of `count` class-`class` requests
    /// that this node refused, without the per-request [`Self::on_request`]
    /// round-trips. Exactly the rejection arm of `on_request`, batched:
    /// the stepwise price rises are bit-identical to `count` eager calls.
    ///
    /// The caller owns the equivalence argument: it may only defer
    /// refusals it has *proven* would each return `false` from
    /// `on_request` (supply exhausted, threshold bypass already off —
    /// prices are non-decreasing within a period, so a full refusal stays
    /// a full refusal), and only while telemetry is disabled (the eager
    /// path emits a `RequestRejected` event per refusal).
    pub fn on_rejections(&mut self, class: ClassId, count: u64) {
        let k = class.index();
        if count == 0 || self.unit_costs_ms.get(k).copied().flatten().is_none() {
            // Not capable of the class: eager `on_request` would not have
            // been a market event either.
            return;
        }
        self.pricer.on_rejections(k, count);
    }

    /// Batched [`Self::on_rejections`] across a node population:
    /// `counts[i]` refusals of `class` are charged to `nodes[i]`.
    /// Result-identical to the per-node calls, but the independent
    /// per-node price chains run interleaved (see
    /// [`NonTatonnementPricer::on_rejections_batch`]), which is what
    /// makes boundary replay of a period's refusal storm cheap. Nodes
    /// that are absent, uncharged, incapable of the class, or currently
    /// traced take the exact per-node path instead.
    pub fn apply_rejections_batch(nodes: &mut [Option<QantNode>], class: ClassId, counts: &[u64]) {
        assert_eq!(nodes.len(), counts.len());
        let k = class.index();
        // Sparse rows (a handful of charged nodes, as in many-class
        // workloads) don't repay the lane setup: charge them directly.
        if counts.iter().filter(|&&d| d > 0).count() < 4 {
            for (slot, &d) in nodes.iter_mut().zip(counts) {
                if d > 0 {
                    if let Some(node) = slot {
                        node.on_rejections(class, d);
                    }
                }
            }
            return;
        }
        let mut lanes: Vec<&mut NonTatonnementPricer> = Vec::with_capacity(nodes.len());
        let mut lane_counts: Vec<u64> = Vec::with_capacity(nodes.len());
        for (slot, &d) in nodes.iter_mut().zip(counts) {
            let Some(node) = slot else { continue };
            if d == 0 || node.unit_costs_ms.get(k).copied().flatten().is_none() {
                continue;
            }
            if node.telemetry.is_enabled() {
                node.pricer.on_rejections(k, d);
                continue;
            }
            lanes.push(&mut node.pricer);
            lane_counts.push(d);
        }
        // Group similarly-sized chains into the same SIMD chunk: each chunk
        // runs for its max count, so mixing a 300-step chain with 5-step
        // ones wastes seven lanes. Node order is immaterial — the chains
        // are independent and each node's own step sequence is unchanged.
        let mut order: Vec<u32> = (0..lanes.len() as u32).collect();
        order.sort_unstable_by_key(|&i| core::cmp::Reverse(lane_counts[i as usize]));
        let mut sorted_lanes: Vec<&mut NonTatonnementPricer> = Vec::with_capacity(lanes.len());
        let mut sorted_counts: Vec<u64> = Vec::with_capacity(lanes.len());
        let mut lanes_opt: Vec<Option<&mut NonTatonnementPricer>> =
            lanes.into_iter().map(Some).collect();
        for &i in &order {
            sorted_lanes.push(lanes_opt[i as usize].take().expect("unique index"));
            sorted_counts.push(lane_counts[i as usize]);
        }
        NonTatonnementPricer::on_rejections_batch(&mut sorted_lanes, k, &sorted_counts);
    }

    /// Step 6: the node's offer was accepted — consume one supply unit
    /// (saturating: in bypass mode accepts may exceed the period supply).
    pub fn on_accept(&mut self, class: ClassId) {
        if let Some(s) = &mut self.supply {
            let _ = s.take_unit(class.index());
        }
    }

    /// Steps 12–14: the period elapsed; leftover supply lowers prices.
    /// Call `begin_period` afterwards to start the next round.
    pub fn end_period(&mut self) {
        let _span = self.telemetry.span("qant.price_update");
        let leftover = self
            .supply
            .take()
            .unwrap_or_else(|| QuantityVector::zeros(self.num_classes()));
        self.pricer.on_period_end(&leftover);
        if self.config.renormalize_prices {
            self.pricer.renormalize();
        }
        self.spare = Some(leftover);
    }

    /// Diagnostic: highest private price across classes.
    pub fn max_price(&self) -> f64 {
        self.pricer.prices().max_price()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Node N1 of the paper's example: q1 = 400 ms, q2 = 100 ms, T = 500 ms.
    fn n1() -> QantNode {
        let mut n = QantNode::new(2, QantConfig::default());
        n.begin_period(&[Some(400.0), Some(100.0)], None);
        n
    }

    #[test]
    fn initial_supply_prefers_denser_class() {
        // §3.3 walkthrough: at equal prices N1 supplies only q2.
        let n = n1();
        assert_eq!(n.supply().unwrap().as_slice(), &[0, 5]);
    }

    #[test]
    fn offers_while_supply_lasts_then_rejects_and_raises_price() {
        let mut n = n1();
        let p_before = n.prices().get(0);
        // q1 supply is zero: reject and raise p1.
        assert!(!n.on_request(ClassId(0)));
        assert!(n.prices().get(0) > p_before);
        // q2 has 5 units: all five offers succeed.
        for _ in 0..5 {
            assert!(n.on_request(ClassId(1)));
            n.on_accept(ClassId(1));
        }
        // Sixth q2 request: supply exhausted, reject, p2 rises.
        let p2 = n.prices().get(1);
        assert!(!n.on_request(ClassId(1)));
        assert!(n.prices().get(1) > p2);
    }

    #[test]
    fn rejections_eventually_shift_supply_to_scarce_class() {
        // Sustained unmet q1 demand must make N1 start supplying q1 —
        // the paper's §3.3 narrative.
        let mut n = n1();
        for _ in 0..60 {
            let _ = n.on_request(ClassId(0)); // unmet q1 demand
            n.end_period();
            n.begin_period(&[Some(400.0), Some(100.0)], None);
            if n.supply().unwrap().get(0) > 0 {
                break;
            }
        }
        assert!(
            n.supply().unwrap().get(0) > 0,
            "q1 price never rose enough: prices {}",
            n.prices()
        );
    }

    #[test]
    fn leftover_supply_decays_prices() {
        let mut n = n1();
        let p2 = n.prices().get(1);
        // Nothing consumed: 5 leftover q2 units.
        n.end_period();
        assert!(n.prices().get(1) < p2);
    }

    #[test]
    fn incapable_class_neither_offers_nor_moves_price() {
        let mut n = QantNode::new(2, QantConfig::default());
        n.begin_period(&[None, Some(100.0)], None);
        let p_before = n.prices().get(0);
        assert!(!n.on_request(ClassId(0)));
        assert_eq!(
            n.prices().get(0),
            p_before,
            "no market event for missing data"
        );
    }

    #[test]
    fn demand_caps_bound_supply() {
        let mut n = QantNode::new(2, QantConfig::default());
        let caps = QuantityVector::from_counts(vec![0, 2]);
        n.begin_period(&[Some(400.0), Some(100.0)], Some(&caps));
        assert_eq!(n.supply().unwrap().as_slice(), &[0, 2]);
    }

    #[test]
    fn threshold_mode_tracks_prices_and_engages_under_stress() {
        let cfg = QantConfig {
            price_threshold: Some(2.0),
            ..QantConfig::default()
        };
        let mut n = QantNode::new(1, cfg);
        n.begin_period(&[Some(400.0)], None);
        // Supply is 1; with the market quiet the node keeps offering
        // beyond it (bypass), but every over-supply acceptance is a
        // tracked rejection event that inflates the price…
        let mut offered_beyond_supply = 0;
        let mut engaged_at = None;
        for i in 0..20 {
            let offered = n.on_request(ClassId(0));
            if offered {
                n.on_accept(ClassId(0));
                if i > 0 {
                    offered_beyond_supply += 1;
                }
            } else {
                engaged_at = Some(i);
                break;
            }
        }
        // …until the price crosses 2× its initial value (1.1^8 ≈ 2.14)
        // and the restriction engages.
        assert!(offered_beyond_supply > 3, "bypass must have been active");
        let at = engaged_at.expect("restriction must eventually engage");
        assert!((5..=12).contains(&at), "engaged at request {at}");
        assert!(n.prices().get(0) > 2.0);
    }

    #[test]
    fn end_period_without_begin_is_safe() {
        let mut n = QantNode::new(3, QantConfig::default());
        n.end_period(); // no supply yet: all-zero leftover, prices unchanged
        assert_eq!(n.prices().get(0), 1.0);
    }

    #[test]
    fn node_emits_supply_and_rejection_events() {
        use qa_simnet::Telemetry;
        let (tel, buf) = Telemetry::buffered();
        let mut n = QantNode::new(2, QantConfig::default());
        n.set_telemetry(tel.with_label(4));
        n.begin_period(&[Some(400.0), Some(100.0)], None);
        let _ = n.on_request(ClassId(0)); // q1 supply is 0: refused
        let kinds: Vec<&str> = buf.records().iter().map(|r| r.event.kind()).collect();
        assert_eq!(
            kinds,
            vec!["supply_computed", "price_adjusted", "request_rejected"]
        );
        match &buf.records()[0].event {
            TelemetryEvent::SupplyComputed {
                node,
                budget_ms,
                supply,
            } => {
                assert_eq!(*node, 4);
                assert_eq!(*budget_ms, 500.0);
                assert_eq!(supply, &vec![0, 5]);
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Spans landed in the registry, not the trace.
        let snap = tel.registry().unwrap().snapshot();
        assert!(snap
            .get("stats")
            .unwrap()
            .get("span.qant.supply_solve_us")
            .is_some());
    }

    #[test]
    fn accept_on_exhausted_supply_saturates() {
        let mut n = n1();
        for _ in 0..7 {
            n.on_accept(ClassId(1)); // more accepts than supply
        }
        assert_eq!(n.supply().unwrap().get(1), 0);
    }
}
