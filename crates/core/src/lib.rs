//! # qa-core — autonomic query allocation by microeconomics
//!
//! The primary contribution of *Autonomic Query Allocation based on
//! Microeconomics Principles* (Pentaris & Ioannidis, ICDE 2007), plus every
//! baseline the paper compares against (§4, Table 2):
//!
//! | Mechanism | Module | Paper row |
//! |---|---|---|
//! | **QA-NT** (query markets, non-tâtonnement) | [`qant`] | "QA-NT — Very Good, distributed, autonomous" |
//! | Greedy (least completion time) | [`client`] | "Greedy — Very Good, violates autonomy" |
//! | Random | [`client`] | "Random — Poor" |
//! | Round-robin | [`client`] | "Round-robin — Poor" |
//! | BNQRD (central unbalance factor, Carey et al.) | [`bnqrd`] | "BNQRD — Poor, violates autonomy" |
//! | Two random probes (Mitzenmacher) | [`client`] | "(two-random probes) — between Round-robin and BNQRD" |
//! | Markov/stochastic optimal (Drenick & Smith) | [`markov`] | "Markov — Excellent, static only, centralized" |
//!
//! The crate holds the *decision logic* only; the drivers live in `qa-sim`
//! (discrete-event, 100 nodes, §5.1) and `qa-cluster` (threaded deployment
//! over live `qa-minidb` engines, §5.2). Both drive the same negotiation
//! protocol, whose messages ([`messages`]) deliberately carry **no prices**
//! — QA-NT's prices are private per-node state, which is the autonomy
//! argument of the paper.
//!
//! The mapping onto microeconomics (Table 1) is provided by `qa-economics`:
//! queries ↔ commodities, client nodes ↔ buyers, server nodes ↔ sellers,
//! virtual query prices ↔ commodity values.

pub mod bnqrd;
pub mod client;
pub mod estimator;
pub mod hier;
pub mod markov;
pub mod mechanism;
pub mod messages;
pub mod qant;

/// In-tree JSON support (hosted in `qa-simnet` so the workload layer can
/// use it too; re-exported here as the canonical entry point for the
/// upper layers — see DESIGN.md, "Hermetic build").
pub use qa_simnet::json;
pub use qa_simnet::telemetry;

pub use bnqrd::BnqrdCoordinator;
pub use client::{choose_best_offer, RoundRobinState, TwoProbesChooser};
pub use estimator::{EstimatorStats, PlanHistoryEstimator};
pub use hier::{escalation_cap, mean_abs_delta_ln, ShardSignal};
pub use markov::MarkovAllocator;
pub use mechanism::MechanismKind;
pub use messages::{Offer, Request};
pub use qant::{QantConfig, QantNode};
