//! The Markov/stochastic-optimal baseline (Drenick & Smith, §4 and
//! Table 2).
//!
//! "A stochastic mechanism based on Markov chains and queueing theory …
//! has excellent performance and produces Pareto optimal solutions, yet it
//! suffers from scalability problems (it is a centralized mechanism) …
//! it assumes that query execution times are constant and workload is
//! static." The paper cites it as the static-workload upper bound but does
//! not implement it; we do, as the Table-2 extension.
//!
//! Model: each node is an M/M/1-like server with utilization
//! `ρᵢ = Σₖ λ_ik·t_ik` (arrival share × service time); the expected
//! response time of a class-k query at node i is `t_ik / (1 − ρᵢ)`. Given
//! static per-class arrival rates, the allocator discretizes each class's
//! rate into chunks and waterfills: every chunk goes to the node with the
//! least *post-assignment* expected response, which converges to the
//! optimal split as the chunk size shrinks. Queries are then routed by
//! sampling the resulting per-class distribution.

use qa_simnet::DetRng;
use qa_workload::{ClassId, NodeId};

/// Static-workload allocator: per-class routing probabilities.
#[derive(Debug, Clone)]
pub struct MarkovAllocator {
    /// `probs[k]` = cumulative (node, cum-probability) list for class `k`.
    probs: Vec<Vec<(NodeId, f64)>>,
}

impl MarkovAllocator {
    /// Builds the allocator.
    ///
    /// * `arrival_rates_per_sec[k]` — static arrival rate of class `k`,
    /// * `exec_times_ms[i][k]` — node `i`'s execution time for class `k`
    ///   (`None` = not capable),
    /// * `chunks` — discretization granularity per class (≥ 1; higher =
    ///   closer to the continuous optimum).
    ///
    /// # Panics
    /// Panics if some class has demand but no capable node.
    pub fn build(
        arrival_rates_per_sec: &[f64],
        exec_times_ms: &[Vec<Option<f64>>],
        chunks: usize,
    ) -> MarkovAllocator {
        assert!(chunks >= 1);
        let num_nodes = exec_times_ms.len();
        let num_classes = arrival_rates_per_sec.len();
        assert!(exec_times_ms.iter().all(|e| e.len() == num_classes));

        // Utilization per node accumulated as chunks land.
        let mut rho = vec![0.0_f64; num_nodes];
        // counts[k][i] = chunks of class k assigned to node i.
        let mut counts = vec![vec![0usize; num_nodes]; num_classes];

        // Process classes by descending total work so heavy classes seed
        // the waterfilling first (standard LPT-style ordering).
        let mut class_order: Vec<usize> = (0..num_classes).collect();
        let weight = |k: usize| {
            let mean_t: f64 = {
                let ts: Vec<f64> = exec_times_ms.iter().filter_map(|e| e[k]).collect();
                if ts.is_empty() {
                    0.0
                } else {
                    ts.iter().sum::<f64>() / ts.len() as f64
                }
            };
            arrival_rates_per_sec[k] * mean_t
        };
        class_order.sort_by(|&a, &b| weight(b).partial_cmp(&weight(a)).expect("finite"));

        for k in class_order {
            let rate = arrival_rates_per_sec[k];
            if rate <= 0.0 {
                continue;
            }
            let chunk_rate = rate / chunks as f64;
            for _ in 0..chunks {
                // Choose the node minimizing post-assignment expected
                // response for this class.
                let mut best: Option<(usize, f64)> = None;
                for (i, exec) in exec_times_ms.iter().enumerate() {
                    let Some(t) = exec[k] else { continue };
                    // Utilization contribution of the chunk: rate (1/s) ×
                    // service time (s).
                    let du = chunk_rate * t / 1_000.0;
                    let new_rho = rho[i] + du;
                    let resp = if new_rho >= 0.999 {
                        // Saturated: heavily penalized but still rankable.
                        t * 1_000.0 * (1.0 + new_rho)
                    } else {
                        t / (1.0 - new_rho)
                    };
                    if best.is_none_or(|(_, b)| resp < b) {
                        best = Some((i, resp));
                    }
                }
                let (i, _) =
                    best.unwrap_or_else(|| panic!("class q{k} has demand but no capable node"));
                let t = exec_times_ms[i][k].expect("capable");
                rho[i] += chunk_rate * t / 1_000.0;
                counts[k][i] += 1;
            }
        }

        // Normalize to cumulative distributions.
        let probs = counts
            .into_iter()
            .map(|per_node| {
                let total: usize = per_node.iter().sum();
                let mut cum = Vec::new();
                if total == 0 {
                    return cum;
                }
                let mut acc = 0.0;
                for (i, c) in per_node.into_iter().enumerate() {
                    if c > 0 {
                        acc += c as f64 / total as f64;
                        cum.push((NodeId(i as u32), acc));
                    }
                }
                if let Some(last) = cum.last_mut() {
                    last.1 = 1.0;
                }
                cum
            })
            .collect();
        MarkovAllocator { probs }
    }

    /// The routing distribution of a class as `(node, probability)` pairs.
    pub fn distribution(&self, class: ClassId) -> Vec<(NodeId, f64)> {
        let cum = &self.probs[class.index()];
        let mut prev = 0.0;
        cum.iter()
            .map(|&(n, c)| {
                let p = c - prev;
                prev = c;
                (n, p)
            })
            .collect()
    }

    /// Samples a destination node for a class-`k` query.
    ///
    /// # Panics
    /// Panics if the class had no demand at build time (empty
    /// distribution).
    pub fn choose(&self, class: ClassId, rng: &mut DetRng) -> NodeId {
        let cum = &self.probs[class.index()];
        assert!(
            !cum.is_empty(),
            "class {class} had no arrival rate at build time"
        );
        let u = rng.unit();
        cum.iter()
            .find(|&&(_, c)| u <= c)
            .map(|&(n, _)| n)
            .unwrap_or(cum.last().expect("non-empty").0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_capable_node_gets_everything() {
        let a = MarkovAllocator::build(&[10.0], &[vec![None], vec![Some(100.0)]], 50);
        assert_eq!(a.distribution(ClassId(0)), vec![(NodeId(1), 1.0)]);
    }

    #[test]
    fn fast_node_gets_larger_share() {
        // Node 0 is 4× faster for the class: it must take the bulk.
        let a = MarkovAllocator::build(&[20.0], &[vec![Some(25.0)], vec![Some(100.0)]], 200);
        let d = a.distribution(ClassId(0));
        let share0 = d.iter().find(|(n, _)| *n == NodeId(0)).map_or(0.0, |x| x.1);
        let share1 = d.iter().find(|(n, _)| *n == NodeId(1)).map_or(0.0, |x| x.1);
        assert!(share0 > share1, "fast {share0} slow {share1}");
        assert!((share0 + share1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn light_load_concentrates_on_fastest() {
        // With negligible load there is no queueing: everything goes to the
        // fastest node.
        let a = MarkovAllocator::build(&[0.1], &[vec![Some(10.0)], vec![Some(100.0)]], 100);
        let d = a.distribution(ClassId(0));
        assert_eq!(d, vec![(NodeId(0), 1.0)]);
    }

    #[test]
    fn heavy_load_spills_to_slow_node() {
        // 50 q/s at 25 ms = 125% of one node: must spill.
        let a = MarkovAllocator::build(&[50.0], &[vec![Some(25.0)], vec![Some(100.0)]], 500);
        let d = a.distribution(ClassId(0));
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn classes_interact_through_utilization() {
        // Two classes; node 0 fast for both. Heavy class 0 load must push
        // some class-1 traffic onto node 1.
        let a = MarkovAllocator::build(
            &[30.0, 30.0],
            &[vec![Some(25.0), Some(25.0)], vec![Some(30.0), Some(30.0)]],
            300,
        );
        let d0 = a.distribution(ClassId(0));
        let d1 = a.distribution(ClassId(1));
        let total_on_0: f64 = [&d0, &d1]
            .iter()
            .flat_map(|d| d.iter())
            .filter(|(n, _)| *n == NodeId(0))
            .map(|(_, p)| p)
            .sum();
        assert!(total_on_0 < 2.0, "node 0 cannot take 100% of both classes");
        assert!(!d1.is_empty());
    }

    #[test]
    fn sampling_matches_distribution() {
        let a = MarkovAllocator::build(&[40.0], &[vec![Some(25.0)], vec![Some(25.0)]], 100);
        let mut rng = DetRng::seed_from_u64(9);
        let mut counts = [0u32; 2];
        for _ in 0..2_000 {
            counts[a.choose(ClassId(0), &mut rng).index()] += 1;
        }
        // Symmetric nodes: close to 50/50.
        let ratio = counts[0] as f64 / 2_000.0;
        assert!((ratio - 0.5).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "no capable node")]
    fn demand_without_capability_panics() {
        let _ = MarkovAllocator::build(&[1.0], &[vec![None]], 10);
    }
}
