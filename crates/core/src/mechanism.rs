//! Mechanism taxonomy (Table 2).

use std::fmt;

/// The allocation mechanisms compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// The paper's contribution: query markets with non-tâtonnement
    /// pricing.
    QaNt,
    /// Greedy least-completion-time assignment.
    Greedy,
    /// Uniform random server choice.
    Random,
    /// Round-robin server choice.
    RoundRobin,
    /// Two-random-probes (Mitzenmacher).
    TwoProbes,
    /// BNQRD centralized unbalance-factor balancing (Carey et al.).
    Bnqrd,
    /// Markov/stochastic optimal for static workloads (Drenick & Smith).
    Markov,
}

impl MechanismKind {
    /// All mechanisms, in Table 2 order.
    pub const ALL: [MechanismKind; 7] = [
        MechanismKind::QaNt,
        MechanismKind::Greedy,
        MechanismKind::Random,
        MechanismKind::RoundRobin,
        MechanismKind::Bnqrd,
        MechanismKind::TwoProbes,
        MechanismKind::Markov,
    ];

    /// The dynamic mechanisms the paper simulates (§5.1 implements "all
    /// algorithms presented in Section 4 except for the Markov-based one").
    pub const DYNAMIC: [MechanismKind; 6] = [
        MechanismKind::QaNt,
        MechanismKind::Greedy,
        MechanismKind::Random,
        MechanismKind::RoundRobin,
        MechanismKind::Bnqrd,
        MechanismKind::TwoProbes,
    ];

    /// Table 2 column: fully distributed (no central coordinator)?
    pub fn is_distributed(self) -> bool {
        !matches!(self, MechanismKind::Bnqrd | MechanismKind::Markov)
    }

    /// Table 2 column: respects node administrative autonomy? Only QA-NT
    /// lets servers decide what they will offer to evaluate.
    pub fn respects_autonomy(self) -> bool {
        matches!(self, MechanismKind::QaNt)
    }

    /// Table 2 column: handles dynamic workloads?
    pub fn handles_dynamic_workload(self) -> bool {
        !matches!(self, MechanismKind::Markov)
    }

    /// Table 2 column: conflicts with distributed query optimization?
    /// Mechanisms that physically pick a single node per query conflict;
    /// QA-NT only *restricts the set of offering nodes*, staying compatible
    /// with Mariposa/SQPT-style optimizers.
    pub fn conflicts_with_distributed_query_optimization(self) -> bool {
        !matches!(self, MechanismKind::QaNt)
    }
}

impl fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MechanismKind::QaNt => "QA-NT",
            MechanismKind::Greedy => "Greedy",
            MechanismKind::Random => "Random",
            MechanismKind::RoundRobin => "Round-robin",
            MechanismKind::TwoProbes => "Two-probes",
            MechanismKind::Bnqrd => "BNQRD",
            MechanismKind::Markov => "Markov",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_properties() {
        use MechanismKind::*;
        assert!(QaNt.is_distributed() && QaNt.respects_autonomy());
        assert!(!QaNt.conflicts_with_distributed_query_optimization());
        assert!(Greedy.is_distributed() && !Greedy.respects_autonomy());
        assert!(!Bnqrd.is_distributed());
        assert!(!Markov.is_distributed());
        assert!(!Markov.handles_dynamic_workload());
        assert!(Random.handles_dynamic_workload());
        // Every non-QA-NT mechanism conflicts with distributed query
        // optimization (Table 2's "Conflict" column).
        for m in MechanismKind::ALL {
            assert_eq!(m.conflicts_with_distributed_query_optimization(), m != QaNt);
        }
    }

    #[test]
    fn dynamic_set_excludes_markov() {
        assert!(!MechanismKind::DYNAMIC.contains(&MechanismKind::Markov));
        assert_eq!(MechanismKind::DYNAMIC.len(), 6);
    }

    #[test]
    fn display_names() {
        assert_eq!(MechanismKind::QaNt.to_string(), "QA-NT");
        assert_eq!(MechanismKind::TwoProbes.to_string(), "Two-probes");
    }
}
