//! The BNQRD baseline (Carey, Livny & Lu — "load balancing in a locally
//! distributed database system", §4).
//!
//! A *centralized* coordinator keeps an unbalance factor per node derived
//! from reported CPU/I-O usage and assigns each incoming query to the node
//! that keeps usage most evenly spread. It violates node autonomy twice:
//! nodes must disclose their load, and the coordinator assigns queries
//! unilaterally. The paper's experiments show it balances load but performs
//! poorly because "it equalized the load of both the fast and the slow
//! nodes" — which this implementation reproduces by tracking *utilization
//! relative to capacity share* rather than completion times.

use qa_workload::NodeId;

/// The central coordinator state.
#[derive(Debug, Clone)]
pub struct BnqrdCoordinator {
    /// Outstanding assigned work per node, in milliseconds of *reference*
    /// work (not node-local time — that is exactly BNQRD's blind spot: it
    /// equalizes work volume, not completion capacity).
    outstanding_ms: Vec<f64>,
    /// Exponential decay applied between reports, modelling work draining.
    decay: f64,
}

impl BnqrdCoordinator {
    /// A coordinator over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> BnqrdCoordinator {
        BnqrdCoordinator {
            outstanding_ms: vec![0.0; num_nodes],
            decay: 1.0,
        }
    }

    /// Unbalance factor of a node: its outstanding work minus the fleet
    /// average (positive = overloaded relative to peers).
    pub fn unbalance(&self, node: NodeId) -> f64 {
        let avg: f64 = self.outstanding_ms.iter().sum::<f64>() / self.outstanding_ms.len() as f64;
        self.outstanding_ms[node.index()] - avg
    }

    /// Assigns a query among `capable` nodes: the one with the lowest
    /// unbalance factor (i.e. least outstanding work) wins, and its
    /// counter grows by the query's reference cost.
    pub fn assign(&mut self, capable: &[NodeId], reference_cost_ms: f64) -> NodeId {
        assert!(!capable.is_empty());
        let chosen = *capable
            .iter()
            .min_by(|a, b| {
                self.outstanding_ms[a.index()]
                    .partial_cmp(&self.outstanding_ms[b.index()])
                    .expect("finite loads")
                    .then(a.cmp(b))
            })
            .expect("non-empty");
        self.outstanding_ms[chosen.index()] += reference_cost_ms;
        chosen
    }

    /// A node reports completed work (the periodic load report of the
    /// original algorithm).
    pub fn report_completion(&mut self, node: NodeId, reference_cost_ms: f64) {
        let o = &mut self.outstanding_ms[node.index()];
        *o = (*o - reference_cost_ms).max(0.0);
    }

    /// Applies passive decay (work draining between reports).
    pub fn tick(&mut self, factor: f64) {
        self.decay = factor.clamp(0.0, 1.0);
        for o in &mut self.outstanding_ms {
            *o *= self.decay;
        }
    }

    /// Current outstanding work vector (diagnostics).
    pub fn outstanding(&self) -> &[f64] {
        &self.outstanding_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn assigns_to_least_loaded() {
        let mut c = BnqrdCoordinator::new(3);
        let all = nodes(3);
        let a = c.assign(&all, 100.0);
        let b = c.assign(&all, 100.0);
        let d = c.assign(&all, 100.0);
        // All three get one query each (perfect spreading).
        let mut got = vec![a, b, d];
        got.sort();
        assert_eq!(got, all);
    }

    #[test]
    fn equalizes_work_volume_not_speed() {
        // The documented blind spot: a slow node receives as much work as a
        // fast one, because BNQRD only sees work volume.
        let mut c = BnqrdCoordinator::new(2);
        let all = nodes(2);
        let mut counts = [0u32; 2];
        for _ in 0..100 {
            counts[c.assign(&all, 50.0).index()] += 1;
        }
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn completions_reduce_outstanding() {
        let mut c = BnqrdCoordinator::new(2);
        let all = nodes(2);
        let n = c.assign(&all, 100.0);
        assert!(c.outstanding()[n.index()] > 0.0);
        c.report_completion(n, 100.0);
        assert_eq!(c.outstanding()[n.index()], 0.0);
        // Over-reporting saturates at zero.
        c.report_completion(n, 50.0);
        assert_eq!(c.outstanding()[n.index()], 0.0);
    }

    #[test]
    fn respects_capability_restriction() {
        let mut c = BnqrdCoordinator::new(3);
        // Node 0 is very loaded, but only node 0 is capable.
        for _ in 0..5 {
            c.assign(&[NodeId(0)], 100.0);
        }
        assert_eq!(c.assign(&[NodeId(0)], 100.0), NodeId(0));
    }

    #[test]
    fn unbalance_is_relative_to_average() {
        let mut c = BnqrdCoordinator::new(2);
        c.assign(&[NodeId(0)], 100.0);
        assert!(c.unbalance(NodeId(0)) > 0.0);
        assert!(c.unbalance(NodeId(1)) < 0.0);
    }

    #[test]
    fn tick_decays_everything() {
        let mut c = BnqrdCoordinator::new(2);
        c.assign(&nodes(2), 100.0);
        c.tick(0.5);
        assert!(c.outstanding().iter().all(|&o| o <= 50.0));
    }
}
