//! Execution-time estimation with history correction (§5.2).
//!
//! The paper's deployment found raw `EXPLAIN PLAN` estimates "usually
//! incorrect as [they] did not take into account the contents of the DBMS
//! buffers", and settled on a two-step estimator: use `EXPLAIN` to identify
//! the plan, then "past execution information concerning queries with the
//! same plan to estimate the execution time of the new query".
//! [`PlanHistoryEstimator`] is that estimator: keyed by the plan
//! fingerprint (`qa-minidb`'s literal-insensitive plan hash), it blends the
//! optimizer's cost-derived prior with an exponentially weighted moving
//! average of observed execution times.

use std::collections::HashMap;

/// Aggregate statistics for one plan fingerprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorStats {
    /// Observations recorded.
    pub observations: u64,
    /// Current EWMA of execution time in milliseconds.
    pub ewma_ms: f64,
}

/// History-corrected execution time estimator.
#[derive(Debug, Clone)]
pub struct PlanHistoryEstimator {
    history: HashMap<u64, EstimatorStats>,
    /// EWMA smoothing factor in `(0, 1]`: weight of the newest observation.
    alpha: f64,
    /// Multiplier converting optimizer cost units into a millisecond prior
    /// (calibrated per node; crude on purpose — history takes over).
    cost_to_ms: f64,
}

impl PlanHistoryEstimator {
    /// An estimator with the given smoothing factor and cost calibration.
    ///
    /// # Panics
    /// Panics unless `0 < alpha ≤ 1` and `cost_to_ms > 0`.
    pub fn new(alpha: f64, cost_to_ms: f64) -> PlanHistoryEstimator {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(cost_to_ms > 0.0 && cost_to_ms.is_finite());
        PlanHistoryEstimator {
            history: HashMap::new(),
            alpha,
            cost_to_ms,
        }
    }

    /// Paper-ish defaults: responsive EWMA, unit cost calibration.
    pub fn default_config() -> PlanHistoryEstimator {
        PlanHistoryEstimator::new(0.3, 1.0)
    }

    /// Estimated execution time (ms) for a query with plan `fingerprint`
    /// and optimizer `cost`: the history EWMA when available, the
    /// cost-derived prior otherwise.
    pub fn estimate_ms(&self, fingerprint: u64, cost: f64) -> f64 {
        match self.history.get(&fingerprint) {
            Some(s) if s.observations > 0 => s.ewma_ms,
            _ => cost * self.cost_to_ms,
        }
    }

    /// Records an observed execution time for a plan.
    pub fn observe_ms(&mut self, fingerprint: u64, actual_ms: f64) {
        assert!(actual_ms.is_finite() && actual_ms >= 0.0);
        let e = self.history.entry(fingerprint).or_insert(EstimatorStats {
            observations: 0,
            ewma_ms: actual_ms,
        });
        if e.observations == 0 {
            e.ewma_ms = actual_ms;
        } else {
            e.ewma_ms = self.alpha * actual_ms + (1.0 - self.alpha) * e.ewma_ms;
        }
        e.observations += 1;
    }

    /// Statistics for a plan, if any were recorded.
    pub fn stats(&self, fingerprint: u64) -> Option<EstimatorStats> {
        self.history.get(&fingerprint).copied()
    }

    /// Number of distinct plans with history.
    pub fn plans_tracked(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_used_before_any_observation() {
        let e = PlanHistoryEstimator::new(0.5, 2.0);
        assert_eq!(e.estimate_ms(42, 100.0), 200.0);
    }

    #[test]
    fn first_observation_replaces_prior() {
        let mut e = PlanHistoryEstimator::new(0.5, 2.0);
        e.observe_ms(42, 50.0);
        assert_eq!(e.estimate_ms(42, 100.0), 50.0);
    }

    #[test]
    fn ewma_converges_toward_recent_truth() {
        let mut e = PlanHistoryEstimator::new(0.3, 1.0);
        e.observe_ms(1, 100.0);
        for _ in 0..30 {
            e.observe_ms(1, 20.0);
        }
        let est = e.estimate_ms(1, 999.0);
        assert!((est - 20.0).abs() < 1.0, "est {est}");
    }

    #[test]
    fn plans_are_tracked_independently() {
        let mut e = PlanHistoryEstimator::default_config();
        e.observe_ms(1, 10.0);
        e.observe_ms(2, 1_000.0);
        assert_eq!(e.plans_tracked(), 2);
        assert!(e.estimate_ms(1, 0.0) < e.estimate_ms(2, 0.0));
        assert_eq!(e.stats(1).unwrap().observations, 1);
        assert!(e.stats(3).is_none());
    }

    #[test]
    fn reproduces_paper_buffer_warmup_story() {
        // Cold estimate (from cost) is far off; after a few executions with
        // warm buffers the estimator tracks the much cheaper reality.
        let mut e = PlanHistoryEstimator::new(0.5, 1.0);
        let cold_prior = e.estimate_ms(7, 3_000.0);
        assert_eq!(cold_prior, 3_000.0);
        for warm in [2_500.0, 900.0, 400.0, 380.0, 390.0] {
            e.observe_ms(7, warm);
        }
        let warmed = e.estimate_ms(7, 3_000.0);
        assert!(warmed < 600.0, "estimator should have learned: {warmed}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = PlanHistoryEstimator::new(0.0, 1.0);
    }
}
