//! Negotiation protocol messages.
//!
//! The allocation protocol is a one-round call-for-offers:
//!
//! 1. the client broadcasts a [`Request`] for a query to the nodes holding
//!    the relevant data,
//! 2. each willing server answers with an [`Offer`] carrying its estimated
//!    completion time (servers running QA-NT only offer while their supply
//!    vector has units left — step 4 of the QA-NT pseudo-code),
//! 3. the client accepts the best offer ([`Response::Accept`]) and the rest
//!    implicitly expire; if nobody offered, the client re-submits the query
//!    in the next time period (§2.2).
//!
//! **Autonomy invariant**: no message carries a price. Prices are private
//! per-node state; the compiler enforces what §3.3 claims ("Query prices
//! are never disclosed or exchanged over the network").

use qa_simnet::SimDuration;
use qa_workload::{ClassId, NodeId};

// Wire encodings, used by tests to check the autonomy invariant and kept
// here so any future field shows up on the wire (and in the check) too.
qa_simnet::impl_to_json!(Request {
    query_id,
    class,
    from
});
qa_simnet::impl_to_json!(Offer {
    query_id,
    server,
    estimated_completion
});

/// A call-for-offers for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The query's trace id.
    pub query_id: u64,
    /// Its class.
    pub class: ClassId,
    /// The client node.
    pub from: NodeId,
}

/// A server's offer to evaluate a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offer {
    /// The query being offered for.
    pub query_id: u64,
    /// The offering server.
    pub server: NodeId,
    /// The server's estimate of queueing + execution time.
    pub estimated_completion: SimDuration,
}

/// Client decision after collecting offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Accept the named server's offer.
    Accept {
        /// The query.
        query_id: u64,
        /// The chosen server.
        server: NodeId,
    },
    /// Explicit decline (used when a server offered but lost).
    Decline {
        /// The query.
        query_id: u64,
        /// The losing server.
        server: NodeId,
    },
}

/// Approximate wire sizes, used by the network model to charge
/// serialization time and by the Table 2 message-count comparison.
pub const REQUEST_BYTES: u64 = 64;
/// Offer wire size.
pub const OFFER_BYTES: u64 = 48;
/// Accept/decline wire size.
pub const RESPONSE_BYTES: u64 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_compact_and_comparable() {
        let r = Request {
            query_id: 7,
            class: ClassId(1),
            from: NodeId(3),
        };
        assert_eq!(r, r);
        let o = Offer {
            query_id: 7,
            server: NodeId(5),
            estimated_completion: SimDuration::from_millis(120),
        };
        assert_eq!(o.server, NodeId(5));
    }

    /// The autonomy claim, enforced structurally: serialize every message
    /// type and check no field could carry a float price (Request/Response
    /// are integer-only; Offer's only non-integer payload is a duration).
    #[test]
    fn no_price_fields_on_the_wire() {
        use qa_simnet::json::ToJson;
        let r = Request {
            query_id: 1,
            class: ClassId(0),
            from: NodeId(0),
        }
        .to_json();
        let keys = r.keys().unwrap();
        assert_eq!(keys.len(), 3);
        assert!(keys.iter().all(|k| !k.contains("price")));
        let o = Offer {
            query_id: 1,
            server: NodeId(0),
            estimated_completion: SimDuration::from_millis(1),
        }
        .to_json();
        assert!(o.keys().unwrap().iter().all(|k| !k.contains("price")));
    }
}
