//! Client-side choice strategies.
//!
//! * [`choose_best_offer`] — pick the lowest estimated completion time.
//!   Used by QA-NT clients over the offers that arrived, and by the Greedy
//!   baseline over *all* capable servers (Greedy "immediately assigns
//!   queries to server nodes that can evaluate them in the least time",
//!   §4 — unilaterally, which is its autonomy violation).
//! * [`RoundRobinState`] — the commercial-cluster client baseline.
//! * [`TwoProbesChooser`] — Mitzenmacher's two-random-probes: sample two
//!   capable servers, take the one with the smaller current load.

use crate::messages::Offer;
use qa_simnet::DetRng;
use qa_workload::NodeId;

/// Picks the offer with the least estimated completion time; ties break by
/// server id for determinism. `None` on empty input (QA-NT: resubmit next
/// period).
pub fn choose_best_offer(offers: &[Offer]) -> Option<&Offer> {
    offers.iter().min_by(|a, b| {
        a.estimated_completion
            .cmp(&b.estimated_completion)
            .then(a.server.cmp(&b.server))
    })
}

/// Round-robin over capable servers, per client.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinState {
    next: usize,
}

impl RoundRobinState {
    /// Fresh state.
    pub fn new() -> RoundRobinState {
        RoundRobinState::default()
    }

    /// The next server from `capable` (must be non-empty).
    pub fn choose(&mut self, capable: &[NodeId]) -> NodeId {
        assert!(!capable.is_empty());
        let n = capable[self.next % capable.len()];
        self.next = (self.next + 1) % capable.len();
        n
    }
}

/// Two-random-probes: pick two distinct random capable servers, query their
/// load, take the lighter one.
#[derive(Debug)]
pub struct TwoProbesChooser;

impl TwoProbesChooser {
    /// Chooses among `capable` given a load oracle (`load(node)` = current
    /// queued work in any consistent unit).
    pub fn choose<F: Fn(NodeId) -> f64>(rng: &mut DetRng, capable: &[NodeId], load: F) -> NodeId {
        assert!(!capable.is_empty());
        if capable.len() == 1 {
            return capable[0];
        }
        let i = rng.index(capable.len());
        let mut j = rng.index(capable.len() - 1);
        if j >= i {
            j += 1;
        }
        let (a, b) = (capable[i], capable[j]);
        if load(a) <= load(b) {
            a
        } else {
            b
        }
    }
}

/// Uniform random choice among capable servers.
pub fn choose_random(rng: &mut DetRng, capable: &[NodeId]) -> NodeId {
    *rng.pick(capable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_simnet::SimDuration;

    fn offer(server: u32, ms: u64) -> Offer {
        Offer {
            query_id: 1,
            server: NodeId(server),
            estimated_completion: SimDuration::from_millis(ms),
        }
    }

    #[test]
    fn best_offer_is_minimum_time() {
        let offers = [offer(1, 300), offer(2, 100), offer(3, 200)];
        assert_eq!(choose_best_offer(&offers).unwrap().server, NodeId(2));
    }

    #[test]
    fn best_offer_ties_break_by_id() {
        let offers = [offer(5, 100), offer(2, 100)];
        assert_eq!(choose_best_offer(&offers).unwrap().server, NodeId(2));
    }

    #[test]
    fn best_offer_empty_is_none() {
        assert!(choose_best_offer(&[]).is_none());
    }

    #[test]
    fn round_robin_cycles() {
        let capable = [NodeId(3), NodeId(7), NodeId(9)];
        let mut rr = RoundRobinState::new();
        let picks: Vec<NodeId> = (0..6).map(|_| rr.choose(&capable)).collect();
        assert_eq!(
            picks,
            vec![
                NodeId(3),
                NodeId(7),
                NodeId(9),
                NodeId(3),
                NodeId(7),
                NodeId(9)
            ]
        );
    }

    #[test]
    fn two_probes_picks_lighter_of_two() {
        let capable: Vec<NodeId> = (0..10).map(NodeId).collect();
        let mut rng = DetRng::seed_from_u64(1);
        // Node 0 has zero load, everyone else is heavy: over many draws the
        // picked node should often be the lighter of each probed pair, and
        // node 0 must win whenever probed.
        let load = |n: NodeId| {
            if n == NodeId(0) {
                0.0
            } else {
                10.0 + n.0 as f64
            }
        };
        for _ in 0..200 {
            let pick = TwoProbesChooser::choose(&mut rng, &capable, load);
            // The pick must never be the *heavier* of a pair containing 0.
            if pick != NodeId(0) {
                // fine — 0 just wasn't probed this round
                assert!(pick.0 < 10);
            }
        }
        // Distinctness: with 2 nodes the two probes must be the two nodes,
        // so the lighter one always wins.
        let two = [NodeId(0), NodeId(1)];
        for _ in 0..50 {
            assert_eq!(TwoProbesChooser::choose(&mut rng, &two, load), NodeId(0));
        }
    }

    #[test]
    fn two_probes_single_candidate() {
        let mut rng = DetRng::seed_from_u64(2);
        assert_eq!(
            TwoProbesChooser::choose(&mut rng, &[NodeId(4)], |_| 0.0),
            NodeId(4)
        );
    }

    #[test]
    fn random_choice_covers_support() {
        let capable: Vec<NodeId> = (0..5).map(NodeId).collect();
        let mut rng = DetRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[choose_random(&mut rng, &capable).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
