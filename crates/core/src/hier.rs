//! Hierarchical market signal types — the vocabulary spoken between a
//! shard's broker and the parent market.
//!
//! A two-tier federation (DESIGN.md §12) runs one complete QA-NT market per
//! shard and a price-clearing parent market over the shards. The only
//! things that cross the tier boundary are small per-class aggregates:
//!
//! * **up** — each shard's broker reports a [`ShardSignal`]: the shard's
//!   aggregate supply per class and the mean ln-price across its nodes
//!   (the geometric-mean price, taken in the log domain where it is an
//!   arithmetic mean). The signal becomes the broker's sealed
//!   [`BrokerBid`] on the parent market.
//! * **down** — the parent's clearing prices and per-broker quotas, which
//!   bias the router's per-shard credits for the next window.
//! * **up again** — demand the parent could not place
//!   ([`escalation_cap`]-bounded) re-enters the next window's clearing.
//!
//! Keeping these types in `qa-core` (not `qa-sim`) mirrors the paper's
//! layering: the signal vocabulary is mechanism substance, the simulator
//! is just one driver of it.

use qa_economics::parent::BrokerBid;

/// One shard's aggregated per-class market state for one period window.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSignal {
    /// The reporting shard's index.
    pub shard: u32,
    /// Aggregate remaining supply per class across the shard's live nodes.
    pub supply: Vec<u64>,
    /// Mean ln-price per class across the shard's live nodes — the log of
    /// the geometric-mean price, the shard's reservation price signal.
    pub mean_ln_price: Vec<f64>,
}

impl ShardSignal {
    /// An empty signal for shard `shard` over `k` classes.
    pub fn new(shard: u32, k: usize) -> Self {
        ShardSignal {
            shard,
            supply: vec![0; k],
            mean_ln_price: vec![0.0; k],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.supply.len()
    }

    /// Checks internal consistency: matching class counts and finite
    /// prices (a non-finite mean would poison the parent's sort order).
    ///
    /// # Panics
    /// Panics when the vectors disagree in length or a price is not finite.
    pub fn validate(&self) {
        assert_eq!(
            self.supply.len(),
            self.mean_ln_price.len(),
            "shard {}: supply/price class count mismatch",
            self.shard
        );
        for (k, p) in self.mean_ln_price.iter().enumerate() {
            assert!(
                p.is_finite(),
                "shard {} class {k}: non-finite mean ln-price {p}",
                self.shard
            );
        }
    }

    /// The broker's sealed bid for this window: capacity = the shard's
    /// aggregate supply, reservation = the shard's mean ln-price.
    pub fn to_bid(&self) -> BrokerBid {
        BrokerBid {
            capacity: self.supply.clone(),
            reservation_ln: self.mean_ln_price.clone(),
        }
    }
}

/// Bounds escalated demand at the tier's reported capacity: demand the
/// parent could not place re-enters the *next* window's clearing, but only
/// up to what the brokers collectively reported this window — anything
/// beyond that could never clear and would compound into an unbounded
/// carry under sustained overload (the excess stays queued at the shards,
/// which is where QA-NT's own back-pressure handles it).
pub fn escalation_cap(unserved: &[u64], signals: &[ShardSignal]) -> Vec<u64> {
    let mut capped = unserved.to_vec();
    for (k, u) in capped.iter_mut().enumerate() {
        let tier_supply: u64 = signals
            .iter()
            .map(|s| s.supply.get(k).copied().unwrap_or(0))
            .sum();
        *u = (*u).min(tier_supply);
    }
    capped
}

/// Mean |Δ ln p| between two per-class price snapshots — the convergence
/// signal both tiers report (a window counts as converged once this falls
/// below the experiment's ε). Shared by the router and broker paths so
/// their convergence periods are measured identically.
///
/// # Panics
/// Panics when the snapshots differ in length.
pub fn mean_abs_delta_ln(prev: &[f64], next: &[f64]) -> f64 {
    assert_eq!(prev.len(), next.len(), "class count mismatch");
    if prev.is_empty() {
        return 0.0;
    }
    let sum: f64 = prev.iter().zip(next).map(|(a, b)| (b - a).abs()).sum();
    sum / prev.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_round_trips_into_a_bid() {
        let sig = ShardSignal {
            shard: 3,
            supply: vec![7, 0, 12],
            mean_ln_price: vec![0.5, -1.2, 3.0],
        };
        sig.validate();
        let bid = sig.to_bid();
        assert_eq!(bid.capacity, vec![7, 0, 12]);
        assert_eq!(bid.reservation_ln, vec![0.5, -1.2, 3.0]);
    }

    #[test]
    fn empty_signal_is_valid() {
        let sig = ShardSignal::new(0, 4);
        sig.validate();
        assert_eq!(sig.num_classes(), 4);
        assert_eq!(sig.to_bid().capacity, vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn validation_rejects_nan_prices() {
        let sig = ShardSignal {
            shard: 1,
            supply: vec![1],
            mean_ln_price: vec![f64::NAN],
        };
        sig.validate();
    }

    #[test]
    fn escalation_is_capped_at_tier_supply() {
        let signals = vec![
            ShardSignal {
                shard: 0,
                supply: vec![3, 10],
                mean_ln_price: vec![0.0, 0.0],
            },
            ShardSignal {
                shard: 1,
                supply: vec![2, 0],
                mean_ln_price: vec![0.0, 0.0],
            },
        ];
        // Class 0: tier supply 5 caps the carry; class 1: carry fits.
        assert_eq!(escalation_cap(&[100, 4], &signals), vec![5, 4]);
        // No signals at all: nothing can be escalated.
        assert_eq!(escalation_cap(&[9], &[]), vec![0]);
    }

    #[test]
    fn mean_abs_delta_ln_averages_per_class_motion() {
        let d = mean_abs_delta_ln(&[0.0, 1.0], &[0.5, 0.0]);
        assert!((d - 0.75).abs() < 1e-12);
        assert_eq!(mean_abs_delta_ln(&[], &[]), 0.0);
    }
}
