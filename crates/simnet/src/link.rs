//! Network link model.
//!
//! The paper's real deployment (§5.2) interconnects five PCs through a
//! dedicated 100 Mb full-duplex hub, except one PC on a 54 Mb point-to-point
//! wireless link. A [`LinkSpec`] captures exactly what matters for query
//! allocation: a fixed propagation/processing latency plus a serialization
//! delay proportional to message size. Both the discrete-event simulator
//! (`qa-sim`) and the threaded cluster (`qa-cluster`) delay messages with
//! this model.

use crate::time::SimDuration;

/// Latency + bandwidth description of a (directed) network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Fixed one-way latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes per second of virtual time.
    pub bandwidth_bytes_per_sec: f64,
}

impl LinkSpec {
    /// A link with the given latency and bandwidth.
    ///
    /// # Panics
    /// Panics if bandwidth is not strictly positive and finite.
    pub fn new(latency: SimDuration, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(
            bandwidth_bytes_per_sec.is_finite() && bandwidth_bytes_per_sec > 0.0,
            "bad bandwidth {bandwidth_bytes_per_sec}"
        );
        LinkSpec {
            latency,
            bandwidth_bytes_per_sec,
        }
    }

    /// The paper's wired link: 100 Mb/s full duplex, sub-millisecond
    /// switch latency.
    pub fn fast_ethernet() -> Self {
        LinkSpec::new(SimDuration::from_micros(200), 100e6 / 8.0)
    }

    /// The paper's wireless link: 54 Mb/s nominal with the (much) higher
    /// latency typical of 802.11g point-to-point bridges.
    pub fn wireless_54mb() -> Self {
        LinkSpec::new(SimDuration::from_millis(3), 54e6 / 8.0 * 0.5)
    }

    /// A link so fast it is effectively free; useful in unit tests that
    /// want to ignore the network.
    pub fn instant() -> Self {
        LinkSpec::new(SimDuration::ZERO, 1e15)
    }

    /// Time to move `bytes` across this link: latency plus serialization.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let ser = bytes as f64 / self.bandwidth_bytes_per_sec;
        self.latency + SimDuration::from_secs_f64(ser)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency_and_serialization() {
        let link = LinkSpec::new(SimDuration::from_millis(1), 1_000_000.0); // 1 MB/s
                                                                            // 500 KB at 1 MB/s = 0.5 s serialization + 1 ms latency.
        let t = link.transfer_time(500_000);
        assert_eq!(t.as_millis(), 501);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let link = LinkSpec::fast_ethernet();
        assert_eq!(link.transfer_time(0), link.latency);
    }

    #[test]
    fn wireless_is_slower_than_wired_for_same_payload() {
        let wired = LinkSpec::fast_ethernet();
        let wifi = LinkSpec::wireless_54mb();
        let payload = 100_000;
        assert!(wifi.transfer_time(payload) > wired.transfer_time(payload));
    }

    #[test]
    fn instant_link_is_effectively_free() {
        let link = LinkSpec::instant();
        assert_eq!(link.transfer_time(1_000_000).as_micros(), 0);
    }

    #[test]
    #[should_panic(expected = "bad bandwidth")]
    fn rejects_zero_bandwidth() {
        let _ = LinkSpec::new(SimDuration::ZERO, 0.0);
    }
}
