//! # qa-simnet — discrete-event simulation kernel
//!
//! The substrate underneath the federation simulator of
//! *Autonomic Query Allocation based on Microeconomics Principles*
//! (Pentaris & Ioannidis, ICDE 2007), Section 5.1.
//!
//! The paper evaluates its QA-NT allocator on a from-scratch C++ simulator of
//! a 100-node federation of autonomous RDBMSs. This crate provides the
//! domain-independent pieces of such a simulator:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual clock with microsecond
//!   resolution (the paper works in milliseconds; we keep a finer grain so
//!   message latencies do not round to zero),
//! * [`EventQueue`] — a deterministic future-event list with stable FIFO
//!   tie-breaking for simultaneous events,
//! * [`DetRng`] and the distributions in [`dist`] — all randomness in an
//!   experiment flows from a single seed, so every run is reproducible,
//! * [`LinkSpec`] — a latency + bandwidth model for network links,
//! * [`FaultPlan`] — deterministic fault injection layered over the links:
//!   per-link drop probability, latency jitter, scheduled outage windows,
//! * [`stats`] — streaming statistics (Welford mean/variance, histograms,
//!   fixed-bin time series) used to produce the paper's figures,
//! * [`telemetry`] — structured market tracing (typed events, JSONL
//!   sinks, metrics registry, convergence diagnostics), zero-cost when
//!   disabled,
//! * [`par`] — a hermetic scoped thread pool whose [`par_map_indexed`]
//!   fans independent sweep cells over the cores while keeping output
//!   byte-identical to the serial run,
//! * [`sched`] — deterministic schedule exploration for message-passing
//!   protocols: seeded-random, replay, and bounded-systematic choosers
//!   driving the cluster's model-checking harness,
//! * [`watchdog`] — the shared test-support termination bound
//!   (`QA_TEST_TIMEOUT_SECS` override) used by the e2e suites.
//!
//! Everything here is deliberately generic: the same kernel drives the
//! 100-node simulation (`qa-sim`) and the synthetic-workload generators
//! (`qa-workload`).

pub mod dist;
pub mod event;
pub mod exposition;
pub mod fault;
pub mod json;
pub mod link;
pub mod par;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod watchdog;

pub use dist::{Exponential, Uniform, Zipf};
pub use event::{EventQueue, ScheduledEvent};
pub use exposition::prometheus_text;
pub use fault::{FaultPlan, LinkFaults, OutageWindow};
pub use json::{Json, ToJson};
pub use link::LinkSpec;
pub use par::{
    par_for_each_chunk_mut, par_map_indexed, par_map_indexed_with, split_budget, thread_budget,
};
pub use rng::DetRng;
pub use sched::{
    ChoiceTrail, RandomSchedule, ReplaySchedule, Schedule, SystematicExplorer, SystematicSchedule,
};
pub use telemetry::{ConvergenceReport, MetricsRegistry, Telemetry, TelemetryEvent, TraceRecord};
pub use time::{SimDuration, SimTime};
pub use watchdog::with_watchdog;
