//! Deterministic randomness.
//!
//! Every experiment in the reproduction is seeded: the simulator, the
//! workload generators and the synthetic dataset all draw from [`DetRng`]s
//! derived from a single master seed, so any figure can be regenerated
//! bit-for-bit. [`DetRng`] is a thin wrapper over `rand`'s `SmallRng` that
//! adds labelled sub-stream derivation — each subsystem gets its own stream,
//! so adding draws to one subsystem does not perturb another.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, seedable random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// A generator seeded with `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-stream for the subsystem named `label`.
    ///
    /// The derivation mixes the label into the parent seed with an FNV-1a
    /// hash, so `derive("workload")` and `derive("dataset")` never collide
    /// and never depend on how many draws the parent has made before the
    /// derivation — only on the parent's own next draw.
    pub fn derive(&mut self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        DetRng::seed_from_u64(self.inner.gen::<u64>() ^ h)
    }

    /// A uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        self.inner.gen_range(lo..=hi)
    }

    /// A uniform float in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn float_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A uniformly chosen index below `n`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from empty collection");
        self.inner.gen_range(0..n)
    }

    /// Picks a uniformly random element of `items`. Panics on empty input.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices below `n` (order unspecified but
    /// deterministic). Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        // Partial Fisher–Yates over an index vector; O(n) setup is fine at
        // our scales (n ≤ a few thousand relations/nodes).
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn derived_streams_are_label_dependent() {
        let mut parent1 = DetRng::seed_from_u64(7);
        let mut parent2 = DetRng::seed_from_u64(7);
        let mut w = parent1.derive("workload");
        let mut d = parent2.derive("dataset");
        assert_ne!(w.next_u64(), d.next_u64());
    }

    #[test]
    fn derived_streams_are_reproducible() {
        let mut p1 = DetRng::seed_from_u64(7);
        let mut p2 = DetRng::seed_from_u64(7);
        let mut a = p1.derive("x");
        let mut b = p2.derive("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_in_is_inclusive_and_in_range() {
        let mut r = DetRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = r.int_in(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn float_in_stays_in_range() {
        let mut r = DetRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = r.float_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = DetRng::seed_from_u64(6);
        let s = r.sample_indices(20, 7);
        assert_eq!(s.len(), 7);
        let mut u = s.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 7, "indices must be distinct");
        assert!(s.iter().all(|&i| i < 20));
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from_u64(8);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
