//! Deterministic randomness.
//!
//! Every experiment in the reproduction is seeded: the simulator, the
//! workload generators and the synthetic dataset all draw from [`DetRng`]s
//! derived from a single master seed, so any figure can be regenerated
//! bit-for-bit. [`DetRng`] is a native xoshiro256++ generator (seeded via
//! splitmix64, the reference seeding scheme) with labelled sub-stream
//! derivation on top — each subsystem gets its own stream, so adding draws
//! to one subsystem does not perturb another.
//!
//! The generator is implemented in-tree (no `rand` dependency) so the
//! workspace builds offline with only `std`; see the hermetic-build policy
//! in DESIGN.md. xoshiro256++ is the same small-state family `rand`'s
//! `SmallRng` used on 64-bit targets, but the exact streams differ, so
//! seeded experiment outputs changed once at the switchover.

/// One step of the splitmix64 sequence: advances `state` and returns the
/// next output. Used to expand a 64-bit seed into xoshiro's 256-bit state
/// (the seeding recommended by xoshiro's authors) and in [`DetRng::derive`].
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable random number generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// A generator seeded with `seed` (state expanded via splitmix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits (the xoshiro256++ update).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits (upper half of a 64-bit draw —
    /// xoshiro's low bits are its weakest).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Derives an independent sub-stream for the subsystem named `label`.
    ///
    /// The derivation mixes the label into the parent seed with an FNV-1a
    /// hash, so `derive("workload")` and `derive("dataset")` never collide
    /// and never depend on how many draws the parent has made before the
    /// derivation — only on the parent's own next draw.
    pub fn derive(&mut self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        DetRng::seed_from_u64(self.next_u64() ^ h)
    }

    /// A uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    ///
    /// Unbiased via Lemire's multiply-shift rejection method.
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full 64-bit range.
            return self.next_u64();
        }
        let mut m = u128::from(self.next_u64()) * u128::from(span);
        if (m as u64) < span {
            let threshold = span.wrapping_neg() % span;
            while (m as u64) < threshold {
                m = u128::from(self.next_u64()) * u128::from(span);
            }
        }
        lo + (m >> 64) as u64
    }

    /// A uniform float in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn float_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        loop {
            let v = lo + self.unit() * (hi - lo);
            // Floating-point rounding can land exactly on `hi` when the
            // span is tiny; redraw to keep the half-open contract.
            if v < hi {
                return v;
            }
        }
    }

    /// A uniform float in `[0, 1)` (53 uniformly random mantissa bits).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A uniformly chosen index below `n`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from empty collection");
        self.int_in(0, n as u64 - 1) as usize
    }

    /// Picks a uniformly random element of `items`. Panics on empty input.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices below `n` (order unspecified but
    /// deterministic). Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        // Partial Fisher–Yates over an index vector; O(n) setup is fine at
        // our scales (n ≤ a few thousand relations/nodes).
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ------------------------------------------------ known-answer tests
    //
    // Reference vectors computed from an independent implementation of the
    // published splitmix64 / xoshiro256++ algorithms (the splitmix64
    // seed-0 head value 0xE220A8397B1DCDAF is the widely published test
    // vector, which anchors the whole chain).

    #[test]
    fn splitmix64_known_answers() {
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
        assert_eq!(splitmix64(&mut s), 0xF88B_B8A8_724C_81EC);
        let mut s = 42u64;
        assert_eq!(splitmix64(&mut s), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(splitmix64(&mut s), 0x28EF_E333_B266_F103);
    }

    #[test]
    fn xoshiro256pp_known_answers() {
        let mut r = DetRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0x5317_5D61_490B_23DF);
        assert_eq!(r.next_u64(), 0x61DA_6F3D_C380_D507);
        assert_eq!(r.next_u64(), 0x5C0F_DF91_EC9A_7BFC);
        assert_eq!(r.next_u64(), 0x02EE_BF8C_3BBE_5E1A);
        assert_eq!(r.next_u64(), 0x7ECA_04EB_AF4A_5EEA);

        let mut r = DetRng::seed_from_u64(42);
        assert_eq!(r.next_u64(), 0xD076_4D4F_4476_689F);
        assert_eq!(r.next_u64(), 0x519E_4174_576F_3791);
        assert_eq!(r.next_u64(), 0xFBE0_7CFB_0C24_ED8C);

        let mut r = DetRng::seed_from_u64(0xDEAD_BEEF);
        assert_eq!(r.next_u64(), 0x0C52_0EB8_FEA9_8EDE);
        assert_eq!(r.next_u64(), 0x2B74_A633_8B80_E0E2);
    }

    /// Pinned bit-for-bit determinism regression for the full `DetRng`
    /// API surface (derivation, ranges, floats). If this test breaks, a
    /// code change silently altered every seeded experiment in the repo.
    ///
    /// NOTE: these values were pinned when `DetRng` switched from `rand`'s
    /// `SmallRng` to the in-tree xoshiro256++ core — seed streams changed
    /// once at that point, by design.
    #[test]
    fn detrng_stream_is_pinned() {
        let mut r = DetRng::seed_from_u64(2007);
        let mut w = r.derive("workload");
        assert_eq!(r.next_u64(), 4_925_085_062_804_326_506);
        assert_eq!(w.int_in(0, 999), 729);
        assert_eq!(w.index(17), 16);
        let u = w.unit();
        assert!((u - 0.616_100_733_687_662_9).abs() < 1e-15, "{u}");
        let f = r.float_in(-2.0, 3.0);
        assert!((f - 0.734_097_594_798_325_5).abs() < 1e-12, "{f}");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn derived_streams_are_label_dependent() {
        let mut parent1 = DetRng::seed_from_u64(7);
        let mut parent2 = DetRng::seed_from_u64(7);
        let mut w = parent1.derive("workload");
        let mut d = parent2.derive("dataset");
        assert_ne!(w.next_u64(), d.next_u64());
    }

    #[test]
    fn derived_streams_are_reproducible() {
        let mut p1 = DetRng::seed_from_u64(7);
        let mut p2 = DetRng::seed_from_u64(7);
        let mut a = p1.derive("x");
        let mut b = p2.derive("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Sub-stream independence: sibling streams derived under different
    /// labels share no prefix, and draws on one do not perturb the other.
    #[test]
    fn derived_streams_are_independent() {
        let mut p = DetRng::seed_from_u64(99);
        let mut a = p.derive("alpha");
        let mut b = p.derive("beta");
        let head_a: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let head_b: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let overlap = head_a.iter().filter(|v| head_b.contains(v)).count();
        assert_eq!(overlap, 0, "sibling sub-streams must not overlap");

        // Re-derive with extra interleaved draws on the sibling; "beta"
        // still depends only on the parent's own draw order.
        let mut p1 = DetRng::seed_from_u64(123);
        let mut p2 = DetRng::seed_from_u64(123);
        let mut a1 = p1.derive("a");
        let mut b1 = p1.derive("b");
        let mut a2 = p2.derive("a");
        for _ in 0..1000 {
            a2.next_u64(); // draws on a sibling stream ...
        }
        let mut b2 = p2.derive("b");
        let _ = a1.next_u64();
        for _ in 0..16 {
            assert_eq!(b1.next_u64(), b2.next_u64());
        }
    }

    #[test]
    fn int_in_is_inclusive_and_in_range() {
        let mut r = DetRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = r.int_in(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn int_in_handles_extreme_ranges() {
        let mut r = DetRng::seed_from_u64(11);
        assert_eq!(r.int_in(7, 7), 7);
        for _ in 0..64 {
            let _ = r.int_in(0, u64::MAX); // full range must not panic
            let v = r.int_in(u64::MAX - 1, u64::MAX);
            assert!(v >= u64::MAX - 1);
        }
    }

    #[test]
    fn unit_is_in_half_open_range() {
        let mut r = DetRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v = r.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_in_stays_in_range() {
        let mut r = DetRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = r.float_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = DetRng::seed_from_u64(6);
        let s = r.sample_indices(20, 7);
        assert_eq!(s.len(), 7);
        let mut u = s.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 7, "indices must be distinct");
        assert!(s.iter().all(|&i| i < 20));
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from_u64(8);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
