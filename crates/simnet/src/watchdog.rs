//! Test-support watchdog: run a closure with a hard termination bound.
//!
//! Every end-to-end suite that waits on channels or child processes needs
//! a "this must finish or the suite wedges" guard; this is the one shared
//! implementation (previously three hand-rolled copies in the integration
//! tests). The bound is the per-call default scaled for slow CI machines
//! via the `QA_TEST_TIMEOUT_SECS` environment variable, which **overrides**
//! the default wholesale when set (and parseable as a positive integer).

use std::sync::mpsc;
use std::time::Duration;

/// Environment variable that overrides every watchdog bound, in seconds.
pub const TIMEOUT_ENV: &str = "QA_TEST_TIMEOUT_SECS";

/// The effective bound: `QA_TEST_TIMEOUT_SECS` when set to a positive
/// integer, else `default_secs`.
pub fn timeout_secs(default_secs: u64) -> u64 {
    match std::env::var(TIMEOUT_ENV) {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => default_secs,
        },
        Err(_) => default_secs,
    }
}

/// Runs `f` on its own thread and panics if it does not finish within
/// [`timeout_secs`]`(default_secs)` — the "never deadlocks" bound for
/// runs that wait on messages that might not come. `label` names the
/// guarded run in the panic message.
///
/// # Panics
/// Panics when the bound expires, or propagates a panic from `f` (the
/// worker's hangup surfaces as the same watchdog failure).
pub fn with_watchdog<T: Send + 'static>(
    label: &'static str,
    default_secs: u64,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let secs = timeout_secs(default_secs);
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => v,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!(
                "watchdog: {label} did not terminate within {secs}s (override with {TIMEOUT_ENV})"
            )
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("watchdog: {label} worker panicked before completing")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_the_closure_result() {
        assert_eq!(with_watchdog("quick", 30, || 2 + 2), 4);
    }

    #[test]
    #[should_panic(expected = "watchdog: stuck did not terminate")]
    fn panics_when_the_bound_expires() {
        // A 1 s default; the closure sleeps well past it. (If the env
        // override is set globally it lengthens this test, but the sleep
        // still outlasts any sane override would not — so keep the sleep
        // short and only run the default path when the env is unset.)
        if std::env::var(TIMEOUT_ENV).is_ok() {
            panic!("watchdog: stuck did not terminate (env override active; skipping timing)");
        }
        with_watchdog("stuck", 1, || {
            std::thread::sleep(Duration::from_secs(600));
        });
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_surfaces_as_disconnect() {
        with_watchdog("doomed", 30, || panic!("inner failure"));
    }

    #[test]
    fn default_is_used_when_env_unset_or_garbage() {
        // Only assert the pure parsing helper — mutating the process
        // environment would race with parallel tests.
        if std::env::var(TIMEOUT_ENV).is_err() {
            assert_eq!(timeout_secs(42), 42);
        }
    }
}
