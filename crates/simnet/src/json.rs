//! Minimal in-tree JSON support (hermetic-build substitute for
//! `serde`/`serde_json`).
//!
//! The build environment has no cargo-registry access, so every result
//! struct the bench harness emits and the one persisted format in the
//! repo (workload traces) use this module instead of serde. It supports
//! exactly what the repo needs:
//!
//! * a [`Json`] value type (null, bool, integer, float, string, array,
//!   ordered object),
//! * compact and pretty emitters ([`Json::dump`] / [`Json::pretty`]),
//! * a [`ToJson`] conversion trait with impls for primitives, `Option`,
//!   slices and `Vec`, plus the [`impl_to_json!`](crate::impl_to_json) /
//!   [`json_obj!`](crate::json_obj) macros for struct ports,
//! * a small strict parser ([`Json::parse`]) for the trace replay
//!   round-trip.
//!
//! It lives in `qa-simnet` because the substrate crate is the one
//! dependency shared by every layer that serializes (workload traces,
//! simulator results, cluster results, bench output); `qa-core` re-exports
//! it as `qa_core::json` for the upper layers.
//!
//! Non-goals: derive-style deserialization into structs (only `Trace`
//! reads JSON back, and it does so by field extraction), `u64` values
//! above `i64::MAX` (integers are stored as `i64`; larger values saturate
//! through `f64`), and streaming.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without fraction/exponent).
    Int(i64),
    /// A float. Non-finite values emit as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting each element.
    pub fn array<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|v| v.to_json()).collect())
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as `u64` (integers only; rejects negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (accepts both `Int` and `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The keys of an object, in order (`None` for non-objects).
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            Json::Obj(pairs) => Some(pairs.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (two-space indent, trailing newline).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips; integral floats gain a ".0" so they
                    // parse back as floats.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict: rejects trailing input, caps
    /// nesting at 128 levels).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err("unpaired surrogate".to_string());
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid code point")?
                            } else {
                                char::from_u32(hi).ok_or("invalid code point")?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<i64>().map(Json::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Json::Float)
                    .map_err(|e| format!("bad number '{text}': {e}"))
            })
        }
    }
}

/// Conversion into a [`Json`] value — the hermetic stand-in for
/// `serde::Serialize` across the workspace.
pub trait ToJson {
    /// This value as JSON.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! int_to_json {
    ($($ty:ty),+) => {
        $(impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        })+
    };
}
int_to_json!(i8, i16, i32, i64, u8, u16, u32);

impl ToJson for u64 {
    /// Values above `i64::MAX` degrade to a float (documented non-goal).
    fn to_json(&self) -> Json {
        match i64::try_from(*self) {
            Ok(v) => Json::Int(v),
            Err(_) => Json::Float(*self as f64),
        }
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        (*self as u64).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
///
/// ```
/// struct Point { x: f64, y: f64 }
/// qa_simnet::impl_to_json!(Point { x, y });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::object([
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

/// Builds a [`Json`] object literal: `json_obj! { "key": value, ... }`.
/// Values are anything implementing [`ToJson`].
#[macro_export]
macro_rules! json_obj {
    { $($key:literal : $val:expr),* $(,)? } => {
        $crate::json::Json::object([
            $(($key, $crate::json::ToJson::to_json(&$val))),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_compact_values() {
        let v = Json::object([
            ("a", Json::Int(1)),
            ("b", Json::Float(2.5)),
            ("c", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("d", Json::Str("x\"y".to_string())),
        ]);
        assert_eq!(v.dump(), r#"{"a":1,"b":2.5,"c":[true,null],"d":"x\"y"}"#);
    }

    #[test]
    fn integral_floats_keep_a_fraction() {
        assert_eq!(Json::Float(3.0).dump(), "3.0");
        assert_eq!(Json::Float(-0.5).dump(), "-0.5");
        assert_eq!(Json::Int(3).dump(), "3");
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Json::Float(f64::NAN).dump(), "null");
        assert_eq!(Json::Float(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json_obj! { "xs": vec![1, 2] };
        assert_eq!(v.pretty(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn parses_what_it_emits() {
        let v = Json::object([
            ("n", Json::Null),
            ("i", Json::Int(-42)),
            ("f", Json::Float(1.25e-3)),
            ("s", Json::Str("hé\n\"\\ \u{1}".to_string())),
            ("a", Json::Arr(vec![Json::Int(1), Json::Obj(Vec::new())])),
        ]);
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""é😀""#).unwrap(),
            Json::Str("é😀".to_string())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{bad json",
            "",
            "[1,]",
            "{\"a\":}",
            "1 2",
            "nul",
            "\"",
            "[1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn to_json_primitives() {
        assert_eq!(7u32.to_json(), Json::Int(7));
        assert_eq!((u64::MAX).to_json(), Json::Float(u64::MAX as f64));
        assert_eq!(None::<f64>.to_json(), Json::Null);
        assert_eq!(Some("x").to_json(), Json::Str("x".to_string()));
        assert_eq!(
            vec![1u8, 2].to_json(),
            Json::Arr(vec![Json::Int(1), Json::Int(2)])
        );
    }

    #[test]
    fn struct_macro_ports_derive_sites() {
        struct Row {
            name: String,
            value: f64,
            count: Option<u64>,
        }
        impl_to_json!(Row { name, value, count });
        let r = Row {
            name: "q1".to_string(),
            value: 1.5,
            count: None,
        };
        assert_eq!(
            r.to_json().dump(),
            r#"{"name":"q1","value":1.5,"count":null}"#
        );
    }
}
