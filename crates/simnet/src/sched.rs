//! Deterministic schedule exploration for message-passing protocols.
//!
//! A protocol harness (the cluster's `SimTransport` explorer) runs a
//! state machine whose nondeterminism — which in-flight message is
//! delivered next, whether a message or reply is dropped, when a node
//! crashes — is resolved one *choice point* at a time. This module
//! supplies the choosers:
//!
//! * [`Schedule`] — the choice-point interface: `choose(point, n)`
//!   returns an index `< n`. Alternative 0 is by convention the benign
//!   choice (deliver in order, no drop, no crash), so a schedule that
//!   answers 0 everywhere reproduces the happy path.
//! * [`RandomSchedule`] — seeded via [`DetRng`]; every run is fully
//!   reproducible from its `u64` seed, and the trail of choices it made
//!   is recorded so a failure can also be replayed structurally.
//! * [`ReplaySchedule`] — replays a recorded [`ChoiceTrail`] verbatim
//!   (off-trail choice points fall back to 0), turning any printed
//!   failure into a deterministic regression test.
//! * [`SystematicExplorer`] — bounded depth-first enumeration of the
//!   choice tree: run the harness once per schedule, feed the recorded
//!   trail back, and the explorer advances to the next unexplored
//!   branch. With a depth bound `d`, every interleaving whose first `d`
//!   choice points differ is eventually visited (until the schedule
//!   budget runs out).
//!
//! The same trail format serves all three: `point:chosen/arity` hops
//! joined by `,`, which is what the `explore` bench bin prints when an
//! invariant fails.

use crate::rng::DetRng;
use std::fmt;

/// One recorded choice: which alternative was taken, out of how many,
/// at which named choice point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Choice {
    /// The choice-point label (e.g. `"deliver"`, `"drop"`, `"crash"`).
    pub point: &'static str,
    /// The alternative taken.
    pub chosen: u32,
    /// How many alternatives existed.
    pub arity: u32,
}

/// The sequence of choices one schedule made, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChoiceTrail {
    /// The choices, in the order they were resolved.
    pub choices: Vec<Choice>,
}

impl ChoiceTrail {
    /// Number of choice points resolved.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// `true` iff no choice point was resolved.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Just the chosen indices (the replay vector).
    pub fn indices(&self) -> Vec<u32> {
        self.choices.iter().map(|c| c.chosen).collect()
    }
}

impl fmt::Display for ChoiceTrail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}:{}/{}", c.point, c.chosen, c.arity)?;
        }
        Ok(())
    }
}

/// Resolves choice points for one schedule of a protocol exploration.
///
/// Implementations must be deterministic functions of their own state:
/// the harness guarantees it asks the same questions in the same order
/// when re-run, which is what makes seeds and trails replayable.
pub trait Schedule {
    /// Resolves a choice point with `n ≥ 1` alternatives; the result is
    /// `< n`. `point` labels the kind of decision for trail readability.
    fn choose(&mut self, point: &'static str, n: usize) -> usize;

    /// The choices made so far.
    fn trail(&self) -> &ChoiceTrail;

    /// Human-readable identity (`"random seed 0x2a"`, `"systematic #17"`)
    /// for failure reports.
    fn describe(&self) -> String;
}

/// A schedule driven by seeded randomness. Identical seed ⇒ identical
/// choices ⇒ identical run.
pub struct RandomSchedule {
    seed: u64,
    rng: DetRng,
    trail: ChoiceTrail,
}

impl RandomSchedule {
    /// A schedule seeded with `seed` (independent of any other stream:
    /// the RNG is derived under a fixed label).
    pub fn new(seed: u64) -> RandomSchedule {
        RandomSchedule {
            seed,
            rng: DetRng::seed_from_u64(seed).derive("sched"),
            trail: ChoiceTrail::default(),
        }
    }

    /// The seed this schedule was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Schedule for RandomSchedule {
    fn choose(&mut self, point: &'static str, n: usize) -> usize {
        assert!(n >= 1, "choice point {point:?} with no alternatives");
        let chosen = self.rng.index(n);
        self.trail.choices.push(Choice {
            point,
            chosen: chosen as u32,
            arity: n as u32,
        });
        chosen
    }

    fn trail(&self) -> &ChoiceTrail {
        &self.trail
    }

    fn describe(&self) -> String {
        format!("random seed {}", self.seed)
    }
}

/// Replays a recorded choice vector; choice points past the end of the
/// vector resolve to 0 (the benign alternative). A chosen index at or
/// above the live arity is clamped into range, so a trail recorded
/// against a slightly different harness still replays without panicking.
pub struct ReplaySchedule {
    replay: Vec<u32>,
    pos: usize,
    trail: ChoiceTrail,
    label: String,
}

impl ReplaySchedule {
    /// A schedule replaying `indices` (see [`ChoiceTrail::indices`]).
    pub fn new(indices: Vec<u32>, label: impl Into<String>) -> ReplaySchedule {
        ReplaySchedule {
            replay: indices,
            pos: 0,
            trail: ChoiceTrail::default(),
            label: label.into(),
        }
    }
}

impl Schedule for ReplaySchedule {
    fn choose(&mut self, point: &'static str, n: usize) -> usize {
        assert!(n >= 1, "choice point {point:?} with no alternatives");
        let wanted = self.replay.get(self.pos).copied().unwrap_or(0) as usize;
        self.pos += 1;
        let chosen = wanted.min(n - 1);
        self.trail.choices.push(Choice {
            point,
            chosen: chosen as u32,
            arity: n as u32,
        });
        chosen
    }

    fn trail(&self) -> &ChoiceTrail {
        &self.trail
    }

    fn describe(&self) -> String {
        format!("replay {}", self.label)
    }
}

/// One schedule produced by a [`SystematicExplorer`]: a forced prefix of
/// choices, then 0 (benign) beyond it. The full trail it actually walked
/// is fed back to the explorer to compute the next branch.
pub struct SystematicSchedule {
    index: u64,
    prefix: Vec<u32>,
    pos: usize,
    trail: ChoiceTrail,
}

impl SystematicSchedule {
    /// Zero-based index of this schedule within its exploration.
    pub fn index(&self) -> u64 {
        self.index
    }
}

impl Schedule for SystematicSchedule {
    fn choose(&mut self, point: &'static str, n: usize) -> usize {
        assert!(n >= 1, "choice point {point:?} with no alternatives");
        let wanted = self.prefix.get(self.pos).copied().unwrap_or(0) as usize;
        self.pos += 1;
        // The prefix was recorded against the same deterministic harness,
        // so arity mismatches only happen when the harness changed; clamp
        // rather than panic so stale prefixes stay explorable.
        let chosen = wanted.min(n - 1);
        self.trail.choices.push(Choice {
            point,
            chosen: chosen as u32,
            arity: n as u32,
        });
        chosen
    }

    fn trail(&self) -> &ChoiceTrail {
        &self.trail
    }

    fn describe(&self) -> String {
        format!("systematic #{} prefix {:?}", self.index, self.prefix)
    }
}

/// Bounded depth-first enumeration of the choice tree.
///
/// Usage is a begin/finish loop:
///
/// ```
/// use qa_simnet::sched::{Schedule, SystematicExplorer};
/// let mut explorer = SystematicExplorer::new(3, 100);
/// let mut leaves = 0;
/// while let Some(mut schedule) = explorer.begin() {
///     // A tiny "protocol": two binary choice points per run.
///     let _a = schedule.choose("a", 2);
///     let _b = schedule.choose("b", 2);
///     explorer.finish(schedule.trail());
///     leaves += 1;
/// }
/// assert_eq!(leaves, 4); // all 2×2 interleavings visited
/// ```
///
/// `depth_bound` limits which choice points are branched on: points
/// beyond it always take alternative 0. `budget` caps the total number
/// of schedules, so a wide tree cannot run away.
pub struct SystematicExplorer {
    depth_bound: usize,
    budget: u64,
    run: u64,
    /// Forced prefix for the next schedule; `None` once exhausted.
    next_prefix: Option<Vec<u32>>,
    /// Set when [`begin`](Self::begin) hands out a schedule whose trail
    /// [`finish`](Self::finish) has not yet consumed.
    outstanding: bool,
}

impl SystematicExplorer {
    /// An explorer branching on the first `depth_bound` choice points,
    /// visiting at most `budget` schedules.
    pub fn new(depth_bound: usize, budget: u64) -> SystematicExplorer {
        SystematicExplorer {
            depth_bound,
            budget,
            run: 0,
            next_prefix: Some(Vec::new()),
            outstanding: false,
        }
    }

    /// Schedules visited so far.
    pub fn schedules_run(&self) -> u64 {
        self.run
    }

    /// `true` once the bounded tree is fully enumerated (as opposed to
    /// the budget running out).
    pub fn exhausted(&self) -> bool {
        self.next_prefix.is_none()
    }

    /// Starts the next schedule, or `None` when the tree is exhausted or
    /// the budget is spent.
    ///
    /// # Panics
    /// Panics if the previous schedule was never passed to
    /// [`finish`](Self::finish) — the explorer cannot advance without
    /// its trail.
    pub fn begin(&mut self) -> Option<SystematicSchedule> {
        assert!(
            !self.outstanding,
            "finish() the previous schedule before begin()ning the next"
        );
        if self.run >= self.budget {
            return None;
        }
        let prefix = self.next_prefix.as_ref()?.clone();
        self.outstanding = true;
        Some(SystematicSchedule {
            index: self.run,
            prefix,
            pos: 0,
            trail: ChoiceTrail::default(),
        })
    }

    /// Consumes a finished schedule's trail and computes the next branch:
    /// the deepest in-bound choice point with an untaken alternative is
    /// bumped, everything after it is reset. The trail must come from the
    /// schedule the preceding [`begin`](Self::begin) handed out.
    pub fn finish(&mut self, trail: &ChoiceTrail) {
        self.outstanding = false;
        self.run += 1;
        let trail = &trail.choices;
        let scan = trail.len().min(self.depth_bound);
        for i in (0..scan).rev() {
            let c = &trail[i];
            if c.chosen + 1 < c.arity {
                let mut prefix: Vec<u32> = trail[..i].iter().map(|c| c.chosen).collect();
                prefix.push(c.chosen + 1);
                self.next_prefix = Some(prefix);
                return;
            }
        }
        self.next_prefix = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A three-point "protocol" with arities 2, 3, 2; returns the leaf id.
    fn walk(s: &mut dyn Schedule) -> usize {
        let a = s.choose("a", 2);
        let b = s.choose("b", 3);
        let c = s.choose("c", 2);
        a * 6 + b * 2 + c
    }

    #[test]
    fn systematic_visits_every_leaf_exactly_once() {
        let mut explorer = SystematicExplorer::new(8, 1000);
        let mut seen = std::collections::BTreeSet::new();
        while let Some(mut s) = explorer.begin() {
            assert!(seen.insert(walk(&mut s)), "leaf visited twice");
            explorer.finish(&s.trail().clone());
        }
        assert_eq!(seen.len(), 2 * 3 * 2);
        assert!(explorer.exhausted());
        assert_eq!(explorer.schedules_run(), 12);
    }

    #[test]
    fn systematic_depth_bound_truncates_branching() {
        // Branch only on the first choice point: 2 schedules, the rest 0.
        let mut explorer = SystematicExplorer::new(1, 1000);
        let mut seen = Vec::new();
        while let Some(mut s) = explorer.begin() {
            seen.push(walk(&mut s));
            explorer.finish(&s.trail().clone());
        }
        assert_eq!(seen, vec![0, 6]);
    }

    #[test]
    fn systematic_budget_caps_schedules() {
        let mut explorer = SystematicExplorer::new(8, 5);
        let mut n = 0;
        while let Some(mut s) = explorer.begin() {
            walk(&mut s);
            explorer.finish(&s.trail().clone());
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(!explorer.exhausted(), "budget ran out before the tree did");
    }

    #[test]
    fn random_schedule_is_seed_reproducible_and_seed_sensitive() {
        let run = |seed: u64| {
            let mut s = RandomSchedule::new(seed);
            let leaf = walk(&mut s);
            (leaf, s.trail().clone())
        };
        assert_eq!(run(42), run(42), "same seed ⇒ same choices");
        let distinct: std::collections::BTreeSet<usize> = (0..32).map(|seed| run(seed).0).collect();
        assert!(distinct.len() > 1, "seeds must actually vary the walk");
    }

    #[test]
    fn replay_reproduces_a_random_trail() {
        let mut random = RandomSchedule::new(7);
        let leaf = walk(&mut random);
        let mut replay = ReplaySchedule::new(random.trail().indices(), "seed 7");
        assert_eq!(walk(&mut replay), leaf);
        assert_eq!(replay.trail(), random.trail());
    }

    #[test]
    fn replay_off_trail_falls_back_to_benign() {
        let mut replay = ReplaySchedule::new(vec![1], "short");
        assert_eq!(replay.choose("a", 2), 1);
        assert_eq!(replay.choose("b", 3), 0, "past the trail ⇒ alternative 0");
        // Out-of-range recorded choices clamp instead of panicking.
        let mut replay = ReplaySchedule::new(vec![9], "stale");
        assert_eq!(replay.choose("a", 2), 1);
    }

    #[test]
    fn trail_formats_compactly() {
        let mut s = ReplaySchedule::new(vec![1, 2], "x");
        s.choose("deliver", 3);
        s.choose("drop", 4);
        assert_eq!(s.trail().to_string(), "deliver:1/3,drop:2/4");
        assert_eq!(s.trail().len(), 2);
        assert!(!s.trail().is_empty());
    }
}
