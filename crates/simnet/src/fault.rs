//! Deterministic fault injection for network links.
//!
//! DESIGN §7 promises failure injection — "node crash mid-period, message
//! loss on the slow link" — and the related federated-market literature
//! treats node churn and unreliable links as the *defining* deployment
//! condition for market-based orchestrators. This module provides the
//! link-level half of that story: a [`FaultPlan`] layered on top of
//! [`LinkSpec`](crate::LinkSpec) that describes, per directed link,
//!
//! * a **message-drop probability** (each message independently lost),
//! * **latency jitter** (a uniform extra delay added to every delivery),
//! * **scheduled outage windows** (intervals during which the link
//!   delivers nothing — a crashed switch, or one side of a partition).
//!
//! Node crash/recovery schedules are the *node*-level half and live with
//! the drivers (`qa_sim::Federation`, `qa_cluster::ClusterConfig`), since
//! only they know what dying means for queued work.
//!
//! Every random decision is drawn from a caller-supplied [`DetRng`], so a
//! faulty run is exactly as reproducible as a clean one: same seed + same
//! plan ⇒ the same messages are lost at the same virtual times. The
//! disabled plan ([`FaultPlan::none`]) is a strict zero-cost path — no RNG
//! draw is ever made for a link whose drop probability and jitter are both
//! zero and whose outage list is empty, so runs without faults are
//! bit-identical to runs on a build that predates this module.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// A half-open window `[from, until)` of virtual time during which a link
/// delivers nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// First instant of the outage.
    pub from: SimTime,
    /// First instant *after* the outage.
    pub until: SimTime,
}

impl OutageWindow {
    /// A window covering `[from, until)`.
    ///
    /// # Panics
    /// Panics if `until <= from` (empty or inverted window).
    pub fn new(from: SimTime, until: SimTime) -> OutageWindow {
        assert!(from < until, "empty outage window [{from}, {until})");
        OutageWindow { from, until }
    }

    /// Whether `at` falls inside the window.
    pub fn contains(&self, at: SimTime) -> bool {
        self.from <= at && at < self.until
    }
}

/// Fault behaviour of one (directed) link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    /// Probability that any one message is silently dropped (`0..=1`).
    pub drop_prob: f64,
    /// Maximum extra delivery latency; each delivered message pays a
    /// uniform draw from `[0, jitter]`. Zero disables the draw entirely.
    pub jitter: SimDuration,
    /// Scheduled outages: messages sent while any window is active are
    /// dropped deterministically (no RNG draw).
    pub outages: Vec<OutageWindow>,
}

impl LinkFaults {
    /// A perfectly healthy link: nothing dropped, no jitter, no outages.
    pub fn none() -> LinkFaults {
        LinkFaults {
            drop_prob: 0.0,
            jitter: SimDuration::ZERO,
            outages: Vec::new(),
        }
    }

    /// A link that loses each message with probability `p` (clamped to
    /// `[0, 1]`), with no jitter or outages.
    pub fn lossy(p: f64) -> LinkFaults {
        LinkFaults {
            drop_prob: p.clamp(0.0, 1.0),
            jitter: SimDuration::ZERO,
            outages: Vec::new(),
        }
    }

    /// `true` iff this link behaves exactly like a fault-free one.
    pub fn is_none(&self) -> bool {
        self.drop_prob <= 0.0 && self.jitter.is_zero() && self.outages.is_empty()
    }

    /// Whether a message sent at `at` over this link is delivered.
    ///
    /// Outage windows are consulted first and are fully deterministic;
    /// only a genuinely positive drop probability costs an RNG draw.
    pub fn delivers(&self, at: SimTime, rng: &mut DetRng) -> bool {
        if self.outages.iter().any(|w| w.contains(at)) {
            return false;
        }
        if self.drop_prob > 0.0 {
            return !rng.chance(self.drop_prob);
        }
        true
    }

    /// The extra latency paid by a message delivered over this link.
    /// Zero-configured jitter returns [`SimDuration::ZERO`] without
    /// touching the RNG.
    pub fn sample_jitter(&self, rng: &mut DetRng) -> SimDuration {
        if self.jitter.is_zero() {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(rng.int_in(0, self.jitter.as_micros()))
    }
}

/// A full fault schedule for a federation: a default link behaviour plus
/// per-node overrides (the link between the clients and node `i`).
///
/// The simulator's network model is client-centric — every allocation
/// message traverses the link of the *server* it targets — so keying
/// overrides by server node index matches [`LinkSpec`](crate::LinkSpec)'s
/// role in the drivers. `FaultPlan::none()` is the disabled plan and is
/// guaranteed zero-cost (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Behaviour of every link without an override.
    pub default: LinkFaults,
    /// `(node, faults)` overrides, consulted before `default`.
    pub overrides: Vec<(usize, LinkFaults)>,
}

impl FaultPlan {
    /// The disabled plan: every link healthy.
    pub fn none() -> FaultPlan {
        FaultPlan {
            default: LinkFaults::none(),
            overrides: Vec::new(),
        }
    }

    /// A plan applying the same faults to every link.
    pub fn uniform(faults: LinkFaults) -> FaultPlan {
        FaultPlan {
            default: faults,
            overrides: Vec::new(),
        }
    }

    /// Adds (or replaces) the override for `node`'s link.
    pub fn with_link(mut self, node: usize, faults: LinkFaults) -> FaultPlan {
        self.overrides.retain(|(n, _)| *n != node);
        self.overrides.push((node, faults));
        self
    }

    /// `true` iff no link in the plan can ever misbehave.
    pub fn is_none(&self) -> bool {
        self.default.is_none() && self.overrides.iter().all(|(_, f)| f.is_none())
    }

    /// The fault behaviour of `node`'s link.
    pub fn link(&self, node: usize) -> &LinkFaults {
        self.overrides
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, f)| f)
            .unwrap_or(&self.default)
    }

    /// Whether a message sent to (or from) `node` at `at` is delivered.
    pub fn delivers(&self, node: usize, at: SimTime, rng: &mut DetRng) -> bool {
        self.link(node).delivers(at, rng)
    }

    /// Extra delivery latency on `node`'s link.
    pub fn sample_jitter(&self, node: usize, rng: &mut DetRng) -> SimDuration {
        self.link(node).sample_jitter(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_none_and_always_delivers() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut rng = DetRng::seed_from_u64(1);
        let mut untouched = rng.clone();
        for t in 0..100 {
            assert!(plan.delivers(t as usize % 7, SimTime::from_millis(t), &mut rng));
            assert_eq!(
                plan.sample_jitter(t as usize % 7, &mut rng),
                SimDuration::ZERO
            );
        }
        // Zero-cost guarantee: the RNG was never advanced.
        assert_eq!(rng.next_u64(), untouched.next_u64());
    }

    #[test]
    fn drop_probability_is_respected_statistically() {
        let plan = FaultPlan::uniform(LinkFaults::lossy(0.3));
        let mut rng = DetRng::seed_from_u64(7);
        let delivered = (0..10_000)
            .filter(|&i| plan.delivers(0, SimTime::from_micros(i), &mut rng))
            .count();
        // E[delivered] = 7000; allow wide tolerance.
        assert!((6_600..=7_400).contains(&delivered), "{delivered}");
    }

    #[test]
    fn same_seed_same_loss_realization() {
        let plan = FaultPlan::uniform(LinkFaults::lossy(0.5));
        let run = |seed| {
            let mut rng = DetRng::seed_from_u64(seed);
            (0..256)
                .map(|i| plan.delivers(0, SimTime::from_micros(i), &mut rng))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds, different losses");
    }

    #[test]
    fn outage_windows_drop_deterministically() {
        let w = OutageWindow::new(SimTime::from_millis(10), SimTime::from_millis(20));
        let plan = FaultPlan::uniform(LinkFaults {
            drop_prob: 0.0,
            jitter: SimDuration::ZERO,
            outages: vec![w],
        });
        let mut rng = DetRng::seed_from_u64(1);
        assert!(plan.delivers(0, SimTime::from_millis(9), &mut rng));
        assert!(!plan.delivers(0, SimTime::from_millis(10), &mut rng));
        assert!(!plan.delivers(0, SimTime::from_millis(19), &mut rng));
        assert!(
            plan.delivers(0, SimTime::from_millis(20), &mut rng),
            "half-open"
        );
    }

    #[test]
    fn overrides_shadow_default() {
        let plan = FaultPlan::none().with_link(3, LinkFaults::lossy(1.0));
        assert!(!plan.is_none());
        let mut rng = DetRng::seed_from_u64(2);
        assert!(plan.delivers(0, SimTime::ZERO, &mut rng));
        assert!(!plan.delivers(3, SimTime::ZERO, &mut rng));
    }

    #[test]
    fn with_link_replaces_existing_override() {
        let plan = FaultPlan::none()
            .with_link(1, LinkFaults::lossy(1.0))
            .with_link(1, LinkFaults::none());
        assert_eq!(plan.overrides.len(), 1);
        assert!(plan.is_none());
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let faults = LinkFaults {
            drop_prob: 0.0,
            jitter: SimDuration::from_millis(5),
            outages: Vec::new(),
        };
        let mut a = DetRng::seed_from_u64(9);
        let mut b = DetRng::seed_from_u64(9);
        for _ in 0..100 {
            let j = faults.sample_jitter(&mut a);
            assert!(j <= SimDuration::from_millis(5));
            assert_eq!(j, faults.sample_jitter(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "empty outage window")]
    fn rejects_inverted_window() {
        let _ = OutageWindow::new(SimTime::from_millis(5), SimTime::from_millis(5));
    }
}
