//! Deterministic fork–join parallelism for embarrassingly-parallel sweeps.
//!
//! The paper's evaluation (§5) is a grid of *independent* simulation cells
//! — algorithms × loads × frequencies × skews × seeds — and every cell
//! derives all of its randomness from its own seed. That makes the sweep
//! trivially parallel *as long as the harness preserves two properties*:
//!
//! 1. **Input-order results.** [`par_map_indexed`] fans jobs over a scoped
//!    worker pool but returns results in input order, so downstream
//!    serialization is byte-identical to the serial run at any thread
//!    count.
//! 2. **No shared mutable state.** Jobs receive `&T` and produce `R`; the
//!    only coordination is an atomic job counter. Nothing about scheduling
//!    order can leak into a job's output.
//!
//! The pool is hermetic: plain `std::thread::scope` workers, no external
//! crates (the build is offline), no globals, no channels. Workers pull
//! jobs from an atomic counter, so long and short cells interleave without
//! static partitioning skew.
//!
//! Thread budget: [`thread_budget`] honours the `QA_THREADS` env var
//! (default: all available cores); a budget of `1` runs every job inline
//! on the caller thread — exactly the old serial behaviour, no threads
//! spawned.
//!
//! Panics in a job propagate to the caller when the scope joins (the
//! remaining workers finish their current job first).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parses a `QA_THREADS`-style value. `None`, empty, unparsable or zero
/// fall back to `default`.
fn parse_threads(value: Option<&str>, default: usize) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => default,
    }
}

/// The number of worker threads sweeps should use: `QA_THREADS` when set
/// to a positive integer, otherwise all available cores (and 1 when even
/// that is unknown).
///
/// The core count is probed once and cached: `available_parallelism`
/// re-reads cgroup limits from the filesystem on every call (~20 µs),
/// which matters to callers on per-run construction paths. The env var is
/// still read every call so tests can vary `QA_THREADS` at runtime.
pub fn thread_budget() -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    let default =
        *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    parse_threads(std::env::var("QA_THREADS").ok().as_deref(), default)
}

/// Splits one thread budget between `outer_jobs` concurrent outer tasks
/// and the parallelism available *inside* each, returning
/// `(outer, inner)` with `outer * inner <= budget`.
///
/// Nested fork–join layers (e.g. the sharded federation stepping shards
/// in parallel while each shard's period boundary fans its eq.-4 supply
/// solves over workers) must share a single budget or they multiply:
/// `S` shards each spawning `budget` solvers oversubscribes the machine
/// `S`-fold. The outer layer gets `min(budget, outer_jobs)` workers and
/// each outer task inherits the even share `budget / outer` (at least 1)
/// for its inner pool.
///
/// # Panics
/// Panics if `budget == 0`.
pub fn split_budget(budget: usize, outer_jobs: usize) -> (usize, usize) {
    assert!(budget >= 1, "thread budget must be at least 1");
    let outer = budget.min(outer_jobs).max(1);
    let inner = (budget / outer).max(1);
    (outer, inner)
}

/// Maps `f` over `items` on up to [`thread_budget`] worker threads,
/// returning results in input order. See [`par_map_indexed_with`].
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_with(thread_budget(), items, f)
}

/// Maps `f(index, item)` over `items` on `min(threads, items.len())`
/// scoped workers and returns the results **in input order**.
///
/// * `threads == 1` (or a single item) runs everything inline on the
///   caller thread — byte-for-byte the serial loop, no threads spawned.
/// * Workers claim jobs from a shared atomic counter, so a slow cell never
///   stalls the rest of a static chunk.
/// * A panicking job panics this call when the scope joins; the other
///   workers finish the job they already claimed and stop.
///
/// # Panics
/// Panics if `threads == 0`, or propagates the first job panic.
pub fn par_map_indexed_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(threads >= 1, "thread budget must be at least 1");
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // One slot per job; each slot is written exactly once by whichever
    // worker claimed the job. A per-slot mutex keeps this safe without
    // `unsafe`; with cell granularity of whole simulation runs the lock
    // cost is unmeasurable.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let slots_ref = &slots;
    let next_ref = &next;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots_ref[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job filled its slot")
        })
        .collect()
}

/// Runs `f(offset, chunk)` over contiguous chunks of `items`, one chunk
/// per worker, mutating in place. `offset` is the index of the chunk's
/// first element in `items`.
///
/// This is the intra-run counterpart of [`par_map_indexed_with`]: where
/// that fans out whole simulation cells, this fans the *independent
/// per-element updates inside one run* (e.g. each node's eq.-4 supply
/// solve at a period boundary). Because every element is visited exactly
/// once and elements share nothing, the result is identical at any thread
/// count — the split only decides which worker performs which update.
///
/// * `threads == 1` (or an empty/singleton slice) runs inline on the
///   caller thread: byte-for-byte the serial loop, no threads spawned.
/// * A panicking chunk panics this call when the scope joins.
///
/// # Panics
/// Panics if `threads == 0`, or propagates the first chunk panic.
pub fn par_for_each_chunk_mut<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(threads >= 1, "thread budget must be at least 1");
    let n = items.len();
    if threads == 1 || n <= 1 {
        f(0, items);
        return;
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (c, part) in items.chunks_mut(chunk).enumerate() {
            scope.spawn(move || f(c * chunk, part));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 8, 64] {
            let out = par_map_indexed_with(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u32; 0] = [];
        let out = par_map_indexed_with(8, &items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        // One item must not spawn workers: the job observes the caller's
        // thread id.
        let caller = std::thread::current().id();
        let out = par_map_indexed_with(8, &[7u32], |i, &x| {
            assert_eq!(i, 0);
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn thread_budget_one_is_the_serial_loop() {
        let caller = std::thread::current().id();
        let items: Vec<u32> = (0..16).collect();
        let out = par_map_indexed_with(1, &items, |_, &x| {
            assert_eq!(std::thread::current().id(), caller);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn job_panic_propagates_to_caller() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_indexed_with(4, &items, |_, &x| {
                if x == 13 {
                    panic!("unlucky job");
                }
                x
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn parallel_matches_serial_for_borrowing_jobs() {
        // Jobs that borrow caller state (the common sweep shape: a shared
        // &Scenario) still compile and agree with the serial run.
        let base = [10u64, 20, 30];
        let items: Vec<usize> = (0..100).collect();
        let serial = par_map_indexed_with(1, &items, |i, &x| base[x % base.len()] + i as u64);
        let parallel = par_map_indexed_with(8, &items, |i, &x| base[x % base.len()] + i as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parse_threads_handles_garbage_and_zero() {
        assert_eq!(parse_threads(None, 6), 6);
        assert_eq!(parse_threads(Some(""), 6), 6);
        assert_eq!(parse_threads(Some("banana"), 6), 6);
        assert_eq!(parse_threads(Some("0"), 6), 6);
        assert_eq!(parse_threads(Some("1"), 6), 1);
        assert_eq!(parse_threads(Some(" 12 "), 6), 12);
    }

    #[test]
    fn thread_budget_is_positive() {
        assert!(thread_budget() >= 1);
    }

    #[test]
    fn split_budget_never_oversubscribes() {
        for budget in 1..=32 {
            for jobs in 0..=40 {
                let (outer, inner) = split_budget(budget, jobs);
                assert!(outer >= 1 && inner >= 1);
                assert!(
                    outer * inner <= budget.max(1),
                    "budget={budget} jobs={jobs} -> {outer}x{inner}"
                );
                assert!(outer <= jobs.max(1));
            }
        }
        // The two layers split a shared machine: 4 shards on 8 cores get
        // 4 outer workers with 2 solver threads each, not 4x8.
        assert_eq!(split_budget(8, 4), (4, 2));
        assert_eq!(split_budget(8, 16), (8, 1));
        assert_eq!(split_budget(1, 4), (1, 1));
        assert_eq!(split_budget(8, 1), (1, 8));
        assert_eq!(split_budget(6, 4), (4, 1));
    }

    #[test]
    fn chunked_mutation_visits_every_element_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..257).collect();
            par_for_each_chunk_mut(threads, &mut items, |offset, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    assert_eq!(*x, (offset + j) as u64);
                    *x = *x * 2 + 1;
                }
            });
            let expect: Vec<u64> = (0..257).map(|x| x * 2 + 1).collect();
            assert_eq!(items, expect, "threads={threads}");
        }
    }

    #[test]
    fn chunked_mutation_single_thread_runs_inline() {
        let caller = std::thread::current().id();
        let mut items = [1u32, 2, 3];
        par_for_each_chunk_mut(1, &mut items, |_, chunk| {
            assert_eq!(std::thread::current().id(), caller);
            chunk.iter_mut().for_each(|x| *x += 1);
        });
        assert_eq!(items, [2, 3, 4]);
    }

    #[test]
    fn chunked_mutation_empty_slice_is_a_noop() {
        let mut items: [u32; 0] = [];
        par_for_each_chunk_mut(4, &mut items, |_, _| {});
    }
}
