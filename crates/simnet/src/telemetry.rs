//! Structured market telemetry: typed events, sinks, a metrics registry,
//! and convergence diagnostics.
//!
//! The paper's central claim (§3, §5) is that QA-NT's decentralized price
//! adjustments *converge*; end-of-run aggregates cannot show that. This
//! module is the observability plane shared by the simulator and the real
//! cluster:
//!
//! * [`TelemetryEvent`] — the typed market-event taxonomy (price
//!   adjustments, supply solves, rejections, assignments, faults),
//! * [`Telemetry`] — a cloneable handle that is **zero-cost when
//!   disabled**: every emit site compiles to one branch on an
//!   `Option<Arc<_>>`, and event construction is deferred behind a
//!   closure so no formatting or allocation happens unless a sink is
//!   installed,
//! * [`EventSink`] / [`TraceBuffer`] / [`WriterSink`] /
//!   [`CountingSink`] — pluggable destinations (in-memory for tests and
//!   `trace_dump`, JSONL writers for files/stderr, a counter for
//!   overhead benches),
//! * [`MetricsRegistry`] — named counters, gauges, [`Welford`] handles
//!   and log-bucket [`HistogramHandle`]s with a deterministic JSON
//!   snapshot; snapshots from different processes merge exactly, which
//!   is what the fleet stats scrape (`qa-ctl stats`) builds on,
//! * [`Span`] — wall-clock timing guards around hot paths (supply
//!   solve, assignment round, price update) that record into the
//!   registry, *not* the event stream, so traces stay byte-deterministic,
//! * [`ConvergenceReport`] — per-class cross-node price-variance series
//!   and time-to-stabilization computed from a trace.
//!
//! # Time
//!
//! Events are stamped from a shared microsecond clock set by the driver:
//! the simulator writes sim-time before dispatching each event, the
//! cluster writes wall-clock-since-epoch. Timestamps are therefore
//! deterministic exactly when the driver's clock is (sim yes, cluster no).
//!
//! # Serialization
//!
//! Records serialize as flattened JSONL objects
//! (`{"t_us":…,"type":"price_adjusted",…}`) through the in-tree
//! [`crate::json`] module, and parse back via [`TraceRecord::from_json`]
//! for strict round-trip validation (`scripts/check_trace.sh`).

use crate::json::{Json, ToJson};
use crate::stats::{LogHistogram, Welford};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Why a price moved (§3.1 rejection raises, §3.2 leftover-supply decay,
/// plus the implementation's periodic renormalization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriceReason {
    /// A rejected request raised the price by `×(1 + λ)`.
    Rejection,
    /// Leftover supply at period end lowered the price.
    PeriodDecay,
    /// Geometric-mean renormalization rescaled the whole vector.
    Renormalize,
}

impl PriceReason {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            PriceReason::Rejection => "rejection",
            PriceReason::PeriodDecay => "period_decay",
            PriceReason::Renormalize => "renormalize",
        }
    }

    fn parse(s: &str) -> Result<PriceReason, String> {
        match s {
            "rejection" => Ok(PriceReason::Rejection),
            "period_decay" => Ok(PriceReason::PeriodDecay),
            "renormalize" => Ok(PriceReason::Renormalize),
            other => Err(format!("unknown price reason {other:?}")),
        }
    }
}

/// Severity of a [`TelemetryEvent::Diag`] message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Verbose diagnostics.
    Debug,
    /// Normal progress notes.
    Info,
    /// Something surprising but survivable.
    Warn,
    /// Something went wrong.
    Error,
}

impl Severity {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    fn parse(s: &str) -> Result<Severity, String> {
        match s {
            "debug" => Ok(Severity::Debug),
            "info" => Ok(Severity::Info),
            "warn" => Ok(Severity::Warn),
            "error" => Ok(Severity::Error),
            other => Err(format!("unknown severity {other:?}")),
        }
    }
}

/// A typed market event. Field names are the wire schema; changing them
/// breaks `scripts/check_trace.sh` deliberately.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A node's private price for one class changed.
    PriceAdjusted {
        /// The adjusting node.
        node: u32,
        /// The query class whose price moved.
        class: u32,
        /// Price before the adjustment.
        old: f64,
        /// Price after the adjustment.
        new: f64,
        /// What triggered the move.
        reason: PriceReason,
    },
    /// A node solved its per-period supply (§3.2 quantity allocation).
    SupplyComputed {
        /// The supplying node.
        node: u32,
        /// The period's capacity budget in milliseconds.
        budget_ms: f64,
        /// Offered units per class.
        supply: Vec<u64>,
    },
    /// A node refused a request it was capable of serving (out of supply).
    RequestRejected {
        /// The refusing node.
        node: u32,
        /// The class of the refused request.
        class: u32,
    },
    /// The allocation protocol assigned a query to a node.
    QueryAssigned {
        /// Trace index of the query.
        query: u64,
        /// The query's class.
        class: u32,
        /// The chosen node.
        node: u32,
        /// Resubmissions before this assignment.
        retries: u32,
    },
    /// A query finished executing.
    QueryCompleted {
        /// Trace index of the query.
        query: u64,
        /// The query's class.
        class: u32,
        /// The node that executed it.
        node: u32,
        /// Arrival-to-completion response time in milliseconds.
        response_ms: f64,
    },
    /// A query exhausted its retries (or had no capable node).
    QueryUnserved {
        /// Trace index of the query.
        query: u64,
        /// The query's class.
        class: u32,
        /// Resubmissions spent before giving up.
        retries: u32,
    },
    /// A protocol message to/from a node was lost (fault injection or a
    /// dead mailbox).
    MessageDropped {
        /// The unreachable node.
        node: u32,
        /// Which protocol step lost the message.
        context: String,
    },
    /// A node crashed (§2.2 autonomy: the market must route around it).
    NodeCrashed {
        /// The crashed node.
        node: u32,
    },
    /// A crashed node rejoined the federation.
    NodeRecovered {
        /// The recovered node.
        node: u32,
    },
    /// A new market period began.
    PeriodStarted {
        /// Zero-based period index.
        index: u64,
    },
    /// A free-form severity-tagged diagnostic (replaces `eprintln!`).
    Diag {
        /// Message severity.
        severity: Severity,
        /// Emitting component, e.g. `"sim.federation"`.
        component: String,
        /// Human-readable message.
        message: String,
    },
    /// A transport connection to a peer was established (TCP federation).
    PeerConnected {
        /// The peer node.
        node: u32,
        /// The peer's socket address.
        addr: String,
    },
    /// The magic + protocol-version handshake with a peer completed.
    HandshakeCompleted {
        /// The peer node.
        node: u32,
        /// The negotiated protocol version.
        version: u32,
    },
    /// A connection attempt failed and will be retried after backoff.
    ConnectRetried {
        /// The peer node.
        node: u32,
        /// One-based attempt number that just failed.
        attempt: u32,
        /// Backoff delay before the next attempt, in milliseconds.
        delay_ms: u64,
    },
    /// An undecodable or unwritable wire frame was discarded.
    FrameDropped {
        /// The peer node.
        node: u32,
        /// What was wrong with the frame.
        context: String,
    },
    /// A transport peer died (handshake failure, heartbeat timeout, or a
    /// closed socket).
    PeerDied {
        /// The dead peer.
        node: u32,
        /// Why the transport declared it dead.
        reason: String,
    },
    /// A protocol-exploration schedule began (model-checking harness).
    ScheduleStarted {
        /// Zero-based schedule index within the exploration.
        schedule: u64,
        /// Schedule family: `"random"`, `"systematic"`, or `"replay"`.
        mode: String,
    },
    /// A machine-checked protocol invariant failed under an explored
    /// schedule. The trail in `detail` replays the interleaving.
    InvariantViolated {
        /// Which invariant broke (e.g. `"conservation"`).
        invariant: String,
        /// What was observed, plus the choice trail for replay.
        detail: String,
    },
    /// A shard broker submitted its sealed bid for the next parent-market
    /// clearing (hierarchical tier, DESIGN.md §12).
    BrokerBid {
        /// The bidding broker (= its shard index).
        broker: u32,
        /// Aggregate remaining supply per class across the shard.
        supply: Vec<u64>,
        /// Mean ln-price per class across the shard's live nodes.
        mean_ln_price: Vec<f64>,
    },
    /// The parent market cleared one window over the broker bids.
    ParentCleared {
        /// Price-adjustment rounds the clearing spent (internal to the
        /// parent — not cross-tier messages).
        rounds: u32,
        /// Clearing ln-price per class after the window.
        ln_prices: Vec<f64>,
        /// Demand per class the market could not place this window.
        unserved: Vec<u64>,
    },
    /// Unplaced parent-tier demand was escalated into the next window's
    /// clearing (excess demand flowing up).
    DemandEscalated {
        /// The class whose demand is carried over.
        class: u32,
        /// Units carried into the next window.
        units: u64,
    },
}

impl TelemetryEvent {
    /// The stable `"type"` discriminator used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::PriceAdjusted { .. } => "price_adjusted",
            TelemetryEvent::SupplyComputed { .. } => "supply_computed",
            TelemetryEvent::RequestRejected { .. } => "request_rejected",
            TelemetryEvent::QueryAssigned { .. } => "query_assigned",
            TelemetryEvent::QueryCompleted { .. } => "query_completed",
            TelemetryEvent::QueryUnserved { .. } => "query_unserved",
            TelemetryEvent::MessageDropped { .. } => "message_dropped",
            TelemetryEvent::NodeCrashed { .. } => "node_crashed",
            TelemetryEvent::NodeRecovered { .. } => "node_recovered",
            TelemetryEvent::PeriodStarted { .. } => "period_started",
            TelemetryEvent::Diag { .. } => "diag",
            TelemetryEvent::PeerConnected { .. } => "peer_connected",
            TelemetryEvent::HandshakeCompleted { .. } => "handshake_completed",
            TelemetryEvent::ConnectRetried { .. } => "connect_retried",
            TelemetryEvent::FrameDropped { .. } => "frame_dropped",
            TelemetryEvent::PeerDied { .. } => "peer_died",
            TelemetryEvent::ScheduleStarted { .. } => "schedule_started",
            TelemetryEvent::InvariantViolated { .. } => "invariant_violated",
            TelemetryEvent::BrokerBid { .. } => "broker_bid",
            TelemetryEvent::ParentCleared { .. } => "parent_cleared",
            TelemetryEvent::DemandEscalated { .. } => "demand_escalated",
        }
    }
}

/// One timestamped event, as written to a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Timestamp in microseconds (sim-time or wall-clock-since-epoch,
    /// depending on the driver).
    pub t_us: u64,
    /// The event payload.
    pub event: TelemetryEvent,
}

impl ToJson for TraceRecord {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("t_us".into(), self.t_us.to_json()),
            ("type".into(), Json::Str(self.event.kind().into())),
        ];
        match &self.event {
            TelemetryEvent::PriceAdjusted {
                node,
                class,
                old,
                new,
                reason,
            } => {
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("class".into(), class.to_json()));
                pairs.push(("old".into(), old.to_json()));
                pairs.push(("new".into(), new.to_json()));
                pairs.push(("reason".into(), Json::Str(reason.as_str().into())));
            }
            TelemetryEvent::SupplyComputed {
                node,
                budget_ms,
                supply,
            } => {
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("budget_ms".into(), budget_ms.to_json()));
                pairs.push(("supply".into(), Json::array(supply.iter().copied())));
            }
            TelemetryEvent::RequestRejected { node, class } => {
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("class".into(), class.to_json()));
            }
            TelemetryEvent::QueryAssigned {
                query,
                class,
                node,
                retries,
            } => {
                pairs.push(("query".into(), query.to_json()));
                pairs.push(("class".into(), class.to_json()));
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("retries".into(), retries.to_json()));
            }
            TelemetryEvent::QueryCompleted {
                query,
                class,
                node,
                response_ms,
            } => {
                pairs.push(("query".into(), query.to_json()));
                pairs.push(("class".into(), class.to_json()));
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("response_ms".into(), response_ms.to_json()));
            }
            TelemetryEvent::QueryUnserved {
                query,
                class,
                retries,
            } => {
                pairs.push(("query".into(), query.to_json()));
                pairs.push(("class".into(), class.to_json()));
                pairs.push(("retries".into(), retries.to_json()));
            }
            TelemetryEvent::MessageDropped { node, context } => {
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("context".into(), Json::Str(context.clone())));
            }
            TelemetryEvent::NodeCrashed { node } => {
                pairs.push(("node".into(), node.to_json()));
            }
            TelemetryEvent::NodeRecovered { node } => {
                pairs.push(("node".into(), node.to_json()));
            }
            TelemetryEvent::PeriodStarted { index } => {
                pairs.push(("index".into(), index.to_json()));
            }
            TelemetryEvent::Diag {
                severity,
                component,
                message,
            } => {
                pairs.push(("severity".into(), Json::Str(severity.as_str().into())));
                pairs.push(("component".into(), Json::Str(component.clone())));
                pairs.push(("message".into(), Json::Str(message.clone())));
            }
            TelemetryEvent::PeerConnected { node, addr } => {
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("addr".into(), Json::Str(addr.clone())));
            }
            TelemetryEvent::HandshakeCompleted { node, version } => {
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("version".into(), version.to_json()));
            }
            TelemetryEvent::ConnectRetried {
                node,
                attempt,
                delay_ms,
            } => {
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("attempt".into(), attempt.to_json()));
                pairs.push(("delay_ms".into(), delay_ms.to_json()));
            }
            TelemetryEvent::FrameDropped { node, context } => {
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("context".into(), Json::Str(context.clone())));
            }
            TelemetryEvent::PeerDied { node, reason } => {
                pairs.push(("node".into(), node.to_json()));
                pairs.push(("reason".into(), Json::Str(reason.clone())));
            }
            TelemetryEvent::ScheduleStarted { schedule, mode } => {
                pairs.push(("schedule".into(), schedule.to_json()));
                pairs.push(("mode".into(), Json::Str(mode.clone())));
            }
            TelemetryEvent::InvariantViolated { invariant, detail } => {
                pairs.push(("invariant".into(), Json::Str(invariant.clone())));
                pairs.push(("detail".into(), Json::Str(detail.clone())));
            }
            TelemetryEvent::BrokerBid {
                broker,
                supply,
                mean_ln_price,
            } => {
                pairs.push(("broker".into(), broker.to_json()));
                pairs.push(("supply".into(), Json::array(supply.iter().copied())));
                pairs.push((
                    "mean_ln_price".into(),
                    Json::array(mean_ln_price.iter().copied()),
                ));
            }
            TelemetryEvent::ParentCleared {
                rounds,
                ln_prices,
                unserved,
            } => {
                pairs.push(("rounds".into(), rounds.to_json()));
                pairs.push(("ln_prices".into(), Json::array(ln_prices.iter().copied())));
                pairs.push(("unserved".into(), Json::array(unserved.iter().copied())));
            }
            TelemetryEvent::DemandEscalated { class, units } => {
                pairs.push(("class".into(), class.to_json()));
                pairs.push(("units".into(), units.to_json()));
            }
        }
        Json::Obj(pairs)
    }
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not a non-negative integer"))
}

fn u32_field(v: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(u64_field(v, key)?).map_err(|_| format!("field {key:?} exceeds u32"))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    match req(v, key)? {
        Json::Float(x) => Ok(*x),
        Json::Int(x) => Ok(*x as f64),
        _ => Err(format!("field {key:?} is not a number")),
    }
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    match req(v, key)? {
        Json::Str(s) => Ok(s),
        _ => Err(format!("field {key:?} is not a string")),
    }
}

fn u64_array_field(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    req(v, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} is not an array"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| format!("field {key:?} has a non-integer element"))
        })
        .collect()
}

fn f64_array_field(v: &Json, key: &str) -> Result<Vec<f64>, String> {
    req(v, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} is not an array"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("field {key:?} has a non-numeric element"))
        })
        .collect()
}

impl TraceRecord {
    /// Parses a record back from its JSON form (strict: unknown `type`
    /// or a missing/ill-typed field is an error).
    pub fn from_json(v: &Json) -> Result<TraceRecord, String> {
        let t_us = u64_field(v, "t_us")?;
        let event = match str_field(v, "type")? {
            "price_adjusted" => TelemetryEvent::PriceAdjusted {
                node: u32_field(v, "node")?,
                class: u32_field(v, "class")?,
                old: f64_field(v, "old")?,
                new: f64_field(v, "new")?,
                reason: PriceReason::parse(str_field(v, "reason")?)?,
            },
            "supply_computed" => TelemetryEvent::SupplyComputed {
                node: u32_field(v, "node")?,
                budget_ms: f64_field(v, "budget_ms")?,
                supply: u64_array_field(v, "supply")?,
            },
            "request_rejected" => TelemetryEvent::RequestRejected {
                node: u32_field(v, "node")?,
                class: u32_field(v, "class")?,
            },
            "query_assigned" => TelemetryEvent::QueryAssigned {
                query: u64_field(v, "query")?,
                class: u32_field(v, "class")?,
                node: u32_field(v, "node")?,
                retries: u32_field(v, "retries")?,
            },
            "query_completed" => TelemetryEvent::QueryCompleted {
                query: u64_field(v, "query")?,
                class: u32_field(v, "class")?,
                node: u32_field(v, "node")?,
                response_ms: f64_field(v, "response_ms")?,
            },
            "query_unserved" => TelemetryEvent::QueryUnserved {
                query: u64_field(v, "query")?,
                class: u32_field(v, "class")?,
                retries: u32_field(v, "retries")?,
            },
            "message_dropped" => TelemetryEvent::MessageDropped {
                node: u32_field(v, "node")?,
                context: str_field(v, "context")?.to_string(),
            },
            "node_crashed" => TelemetryEvent::NodeCrashed {
                node: u32_field(v, "node")?,
            },
            "node_recovered" => TelemetryEvent::NodeRecovered {
                node: u32_field(v, "node")?,
            },
            "period_started" => TelemetryEvent::PeriodStarted {
                index: u64_field(v, "index")?,
            },
            "diag" => TelemetryEvent::Diag {
                severity: Severity::parse(str_field(v, "severity")?)?,
                component: str_field(v, "component")?.to_string(),
                message: str_field(v, "message")?.to_string(),
            },
            "peer_connected" => TelemetryEvent::PeerConnected {
                node: u32_field(v, "node")?,
                addr: str_field(v, "addr")?.to_string(),
            },
            "handshake_completed" => TelemetryEvent::HandshakeCompleted {
                node: u32_field(v, "node")?,
                version: u32_field(v, "version")?,
            },
            "connect_retried" => TelemetryEvent::ConnectRetried {
                node: u32_field(v, "node")?,
                attempt: u32_field(v, "attempt")?,
                delay_ms: u64_field(v, "delay_ms")?,
            },
            "frame_dropped" => TelemetryEvent::FrameDropped {
                node: u32_field(v, "node")?,
                context: str_field(v, "context")?.to_string(),
            },
            "peer_died" => TelemetryEvent::PeerDied {
                node: u32_field(v, "node")?,
                reason: str_field(v, "reason")?.to_string(),
            },
            "schedule_started" => TelemetryEvent::ScheduleStarted {
                schedule: u64_field(v, "schedule")?,
                mode: str_field(v, "mode")?.to_string(),
            },
            "invariant_violated" => TelemetryEvent::InvariantViolated {
                invariant: str_field(v, "invariant")?.to_string(),
                detail: str_field(v, "detail")?.to_string(),
            },
            "broker_bid" => TelemetryEvent::BrokerBid {
                broker: u32_field(v, "broker")?,
                supply: u64_array_field(v, "supply")?,
                mean_ln_price: f64_array_field(v, "mean_ln_price")?,
            },
            "parent_cleared" => TelemetryEvent::ParentCleared {
                rounds: u32_field(v, "rounds")?,
                ln_prices: f64_array_field(v, "ln_prices")?,
                unserved: u64_array_field(v, "unserved")?,
            },
            "demand_escalated" => TelemetryEvent::DemandEscalated {
                class: u32_field(v, "class")?,
                units: u64_field(v, "units")?,
            },
            other => return Err(format!("unknown event type {other:?}")),
        };
        Ok(TraceRecord { t_us, event })
    }

    /// Parses one JSONL line (strict JSON, then [`TraceRecord::from_json`]).
    pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
        TraceRecord::from_json(&Json::parse(line)?)
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Destination for emitted records. Implementations must tolerate being
/// called from multiple threads in turn (the handle serializes calls
/// behind a mutex).
pub trait EventSink: Send {
    /// Consumes one record.
    fn record(&mut self, record: &TraceRecord);
}

#[derive(Default)]
struct BufferSink {
    records: Arc<Mutex<Vec<TraceRecord>>>,
}

impl EventSink for BufferSink {
    fn record(&mut self, record: &TraceRecord) {
        self.records.lock().unwrap().push(record.clone());
    }
}

/// Shared view of an in-memory trace, returned by [`Telemetry::buffered`].
#[derive(Clone, Default)]
pub struct TraceBuffer {
    records: Arc<Mutex<Vec<TraceRecord>>>,
}

impl TraceBuffer {
    /// Snapshot of the records captured so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// `true` iff nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the whole buffer as JSONL (one compact object per line,
    /// each line newline-terminated).
    pub fn to_jsonl(&self) -> String {
        let records = self.records.lock().unwrap();
        let mut out = String::new();
        for r in records.iter() {
            out.push_str(&r.to_json().dump());
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("len", &self.len())
            .finish()
    }
}

/// Streams each record as a compact JSONL line to any writer
/// (`stderr`, a file, …).
pub struct WriterSink<W: std::io::Write + Send> {
    writer: W,
}

impl<W: std::io::Write + Send> WriterSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        WriterSink { writer }
    }
}

impl<W: std::io::Write + Send> EventSink for WriterSink<W> {
    fn record(&mut self, record: &TraceRecord) {
        // Telemetry is best-effort: a broken pipe must not kill the run.
        let _ = writeln!(self.writer, "{}", record.to_json().dump());
    }
}

/// Counts records without storing them — the enabled-path overhead bench
/// uses this so the buffer doesn't grow unboundedly.
#[derive(Clone, Default)]
pub struct CountingSink {
    count: Arc<AtomicU64>,
}

impl CountingSink {
    /// A fresh counter.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Records seen so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl EventSink for CountingSink {
    fn record(&mut self, _record: &TraceRecord) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A named monotonic counter.
#[derive(Clone, Default, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named last-write-wins float gauge.
#[derive(Clone, Default, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, x: f64) {
        self.bits.store(x.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A named streaming mean/variance accumulator.
#[derive(Clone, Default, Debug)]
pub struct WelfordHandle {
    inner: Arc<Mutex<Welford>>,
}

impl WelfordHandle {
    /// Adds one observation.
    pub fn observe(&self, x: f64) {
        self.inner.lock().unwrap().add(x);
    }

    /// Merges a whole accumulator in.
    pub fn merge(&self, other: &Welford) {
        self.inner.lock().unwrap().merge(other);
    }

    /// Snapshot of the accumulator.
    pub fn snapshot(&self) -> Welford {
        self.inner.lock().unwrap().clone()
    }
}

/// A named log-bucket distribution ([`LogHistogram`]). The fixed bucket
/// layout makes any two handles — including one rebuilt from a scraped
/// snapshot — exactly mergeable.
#[derive(Clone, Default, Debug)]
pub struct HistogramHandle {
    inner: Arc<Mutex<LogHistogram>>,
}

impl HistogramHandle {
    /// Records one observation.
    pub fn observe(&self, x: f64) {
        self.inner.lock().unwrap().record(x);
    }

    /// Merges a whole histogram in.
    pub fn merge(&self, other: &LogHistogram) {
        self.inner.lock().unwrap().merge(other);
    }

    /// Snapshot of the histogram.
    pub fn snapshot(&self) -> LogHistogram {
        self.inner.lock().unwrap().clone()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    stats: BTreeMap<String, WelfordHandle>,
    histograms: BTreeMap<String, HistogramHandle>,
}

/// Registry of named metrics. Cloning shares the underlying store;
/// `BTreeMap` keys make [`MetricsRegistry::snapshot`] order-deterministic.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the Welford accumulator named `name`.
    pub fn welford(&self, name: &str) -> WelfordHandle {
        let mut inner = self.inner.lock().unwrap();
        inner.stats.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the log-bucket histogram named `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// JSON snapshot:
    /// `{"counters":{…},"gauges":{…},"stats":{…},"histograms":{…}}`, keys
    /// sorted, empty sections omitted from their maps but the four keys
    /// always present. Histogram entries include `p50`/`p90`/`p99`
    /// quantiles plus the sparse bucket counts that
    /// [`MetricsRegistry::merge_snapshot`] rebuilds from.
    pub fn snapshot(&self) -> Json {
        let inner = self.inner.lock().unwrap();
        let counters = Json::object(
            inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get().to_json())),
        );
        let gauges = Json::object(
            inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get().to_json())),
        );
        let stats = Json::object(
            inner
                .stats
                .iter()
                .map(|(k, w)| (k.clone(), w.snapshot().to_json())),
        );
        let histograms = Json::object(
            inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot().to_json())),
        );
        Json::object([
            ("counters", counters),
            ("gauges", gauges),
            ("stats", stats),
            ("histograms", histograms),
        ])
    }

    /// Merges another registry's [`snapshot`](Self::snapshot) into this
    /// one: counters add, gauges take the incoming value (last write
    /// wins), Welford summaries reconstruct-and-merge, histograms merge
    /// by bucket. This is the fleet-aggregation primitive behind
    /// `qa-ctl stats`: scrape each node's snapshot off the wire, merge
    /// them all into a fresh registry, snapshot that. Unparseable
    /// entries are skipped (a malformed node must not poison the fleet
    /// view); returns the number of entries merged.
    pub fn merge_snapshot(&self, snap: &Json) -> usize {
        let mut merged = 0;
        if let Some(Json::Obj(pairs)) = snap.get("counters") {
            for (name, v) in pairs {
                if let Some(n) = v.as_u64() {
                    self.counter(name).add(n);
                    merged += 1;
                }
            }
        }
        if let Some(Json::Obj(pairs)) = snap.get("gauges") {
            for (name, v) in pairs {
                if let Some(x) = v.as_f64() {
                    self.gauge(name).set(x);
                    merged += 1;
                }
            }
        }
        if let Some(Json::Obj(pairs)) = snap.get("stats") {
            for (name, v) in pairs {
                let Some(n) = v.get("count").and_then(Json::as_u64) else {
                    continue;
                };
                if n == 0 {
                    // An empty accumulator serializes its optionals as
                    // null; merging it is a no-op, but still register the
                    // name so the merged snapshot lists every family.
                    self.welford(name);
                    merged += 1;
                    continue;
                }
                let field = |k: &str| v.get(k).and_then(Json::as_f64);
                let (Some(mean), Some(min), Some(max)) =
                    (field("mean"), field("min"), field("max"))
                else {
                    continue;
                };
                let std_dev = field("std_dev").unwrap_or(0.0);
                self.welford(name)
                    .merge(&Welford::from_summary(n, mean, std_dev, min, max));
                merged += 1;
            }
        }
        if let Some(Json::Obj(pairs)) = snap.get("histograms") {
            for (name, v) in pairs {
                if let Some(h) = LogHistogram::from_json(v) {
                    self.histogram(name).merge(&h);
                    merged += 1;
                }
            }
        }
        merged
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MetricsRegistry({})", self.snapshot().dump())
    }
}

// ---------------------------------------------------------------------------
// Telemetry handle
// ---------------------------------------------------------------------------

struct TelemetryInner {
    now_us: AtomicU64,
    sink: Mutex<Box<dyn EventSink>>,
    registry: MetricsRegistry,
}

/// Cloneable telemetry handle. A disabled handle (the default) carries a
/// `None` and every [`Telemetry::emit`] / [`Telemetry::span`] call is a
/// single branch; clones share the sink, clock and registry.
///
/// `label` is the node id stamped on market events emitted *by* that
/// node's pricer/market state; derive per-node handles with
/// [`Telemetry::with_label`].
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
    label: u32,
}

impl Telemetry {
    /// A handle that drops everything (the zero-cost default).
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// A handle with a live [`MetricsRegistry`] but no event stream:
    /// every emitted record is discarded at the sink. This is what `qad`
    /// runs by default — the stats scrape and `/metrics` endpoint always
    /// have a registry to answer from, without paying for (or leaking)
    /// JSONL traces nobody asked for.
    pub fn metrics_only() -> Telemetry {
        struct NullSink;
        impl EventSink for NullSink {
            fn record(&mut self, _record: &TraceRecord) {}
        }
        Telemetry::with_sink(Box::new(NullSink))
    }

    /// A handle writing into an in-memory buffer; returns the buffer too.
    pub fn buffered() -> (Telemetry, TraceBuffer) {
        let buffer = TraceBuffer::default();
        let sink = BufferSink {
            records: Arc::clone(&buffer.records),
        };
        (Telemetry::with_sink(Box::new(sink)), buffer)
    }

    /// A handle driving an arbitrary sink.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                now_us: AtomicU64::new(0),
                sink: Mutex::new(sink),
                registry: MetricsRegistry::new(),
            })),
            label: 0,
        }
    }

    /// Builds a handle from the `QA_TELEMETRY` environment variable:
    /// `stderr` / `stdout` stream JSONL there; anything else (or unset)
    /// is disabled. This is how opt-in diagnostics replace `eprintln!`.
    pub fn from_env() -> Telemetry {
        match std::env::var("QA_TELEMETRY").as_deref() {
            Ok("stderr") => Telemetry::with_sink(Box::new(WriterSink::new(std::io::stderr()))),
            Ok("stdout") => Telemetry::with_sink(Box::new(WriterSink::new(std::io::stdout()))),
            _ => Telemetry::disabled(),
        }
    }

    /// A handle streaming JSONL into a file (truncated on open). Each
    /// record is written immediately, so a process that exits without
    /// explicit teardown still leaves a complete trace — this is what the
    /// multi-process federation bins (`qad --trace`, `qa-ctl --trace`)
    /// use.
    pub fn to_file<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Telemetry> {
        let file = std::fs::File::create(path)?;
        Ok(Telemetry::with_sink(Box::new(WriterSink::new(file))))
    }

    /// `true` iff a sink is installed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The node label stamped by this handle.
    #[inline]
    pub fn label(&self) -> u32 {
        self.label
    }

    /// A clone of this handle that stamps `node` as its label.
    pub fn with_label(&self, node: u32) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            label: node,
        }
    }

    /// Advances the shared event clock (microseconds). The simulator
    /// writes sim-time here before dispatching each event; the cluster
    /// writes wall-clock-since-epoch. The clock is **monotone**: a stamp
    /// below the current value is ignored (`fetch_max`), so concurrent
    /// wall-clock stampers racing between `elapsed()` and the store can
    /// never make trace timestamps regress — which `check_trace` rejects.
    #[inline]
    pub fn set_now_us(&self, t_us: u64) {
        if let Some(inner) = &self.inner {
            inner.now_us.fetch_max(t_us, Ordering::Relaxed);
        }
    }

    /// The current event clock (0 when disabled).
    #[inline]
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.now_us.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Emits one event. The closure only runs when a sink is installed,
    /// so a disabled handle pays exactly one branch — no allocation, no
    /// formatting.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> TelemetryEvent) {
        if let Some(inner) = &self.inner {
            let record = TraceRecord {
                t_us: inner.now_us.load(Ordering::Relaxed),
                event: build(),
            };
            inner.sink.lock().unwrap().record(&record);
        }
    }

    /// Severity-tagged diagnostic; the message closure only runs when
    /// enabled (no `format!` cost otherwise).
    #[inline]
    pub fn diag(&self, severity: Severity, component: &str, message: impl FnOnce() -> String) {
        self.emit(|| TelemetryEvent::Diag {
            severity,
            component: component.to_string(),
            message: message(),
        });
    }

    /// The shared metrics registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// Starts a wall-clock timing span. On drop the elapsed microseconds
    /// are recorded into the registry Welford named `span.{name}_us` —
    /// *not* the event stream, which keeps traces byte-deterministic.
    /// Disabled handles return an inert guard without reading the clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            state: self
                .inner
                .as_ref()
                .map(|inner| (Arc::clone(inner), Instant::now())),
            name,
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("label", &self.label)
            .finish()
    }
}

/// Timing guard returned by [`Telemetry::span`].
pub struct Span {
    state: Option<(Arc<TelemetryInner>, Instant)>,
    name: &'static str,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, start)) = self.state.take() {
            let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
            inner
                .registry
                .welford(&format!("span.{}_us", self.name))
                .observe(elapsed_us);
        }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.name)
            .field("enabled", &self.state.is_some())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Convergence diagnostics
// ---------------------------------------------------------------------------

/// Per-class convergence series extracted from a trace.
#[derive(Debug, Clone)]
pub struct ClassConvergence {
    /// The query class.
    pub class: u32,
    /// Total price adjustments for this class across all nodes.
    pub adjustments: u64,
    /// Mean final price across nodes that ever priced this class.
    pub final_mean_price: f64,
    /// Per-period population variance of `ln(price)` across nodes —
    /// the paper's price-dispersion view of convergence.
    pub log_price_variance: Vec<f64>,
    /// Per-period mean `|Δ ln(price)|` over the period's adjustments
    /// (0 for quiet periods).
    pub mean_abs_log_step: Vec<f64>,
    /// First period after which `mean_abs_log_step` stays at or below
    /// the tolerance for the rest of the run; `None` if prices were
    /// still moving in the final period.
    pub stabilized_at_period: Option<u64>,
}

impl ToJson for ClassConvergence {
    fn to_json(&self) -> Json {
        crate::json_obj! {
            "class": self.class,
            "adjustments": self.adjustments,
            "final_mean_price": self.final_mean_price,
            "log_price_variance": self.log_price_variance,
            "mean_abs_log_step": self.mean_abs_log_step,
            "stabilized_at_period": self.stabilized_at_period,
        }
    }
}

/// Convergence summary computed from a trace: did the decentralized
/// price adjustments settle, and how fast?
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// Period length (µs) the trace was bucketed by.
    pub period_us: u64,
    /// Number of periods covered.
    pub periods: u64,
    /// Distinct nodes that emitted price or supply events.
    pub nodes: u64,
    /// Total price-adjustment events.
    pub price_adjustments: u64,
    /// Total request-rejection events.
    pub rejections: u64,
    /// Total supply-solve events.
    pub supply_events: u64,
    /// Total dropped-message events.
    pub dropped_messages: u64,
    /// Total node-crash events.
    pub crashes: u64,
    /// Total broker-bid events (hierarchical tier).
    pub broker_bids: u64,
    /// Total parent-market clearings (hierarchical tier).
    pub parent_clearings: u64,
    /// Total units of demand escalated across clearing windows.
    pub escalated_units: u64,
    /// Per-class series, sorted by class id.
    pub per_class: Vec<ClassConvergence>,
}

impl ToJson for ConvergenceReport {
    fn to_json(&self) -> Json {
        crate::json_obj! {
            "period_us": self.period_us,
            "periods": self.periods,
            "nodes": self.nodes,
            "price_adjustments": self.price_adjustments,
            "rejections": self.rejections,
            "supply_events": self.supply_events,
            "dropped_messages": self.dropped_messages,
            "crashes": self.crashes,
            "broker_bids": self.broker_bids,
            "parent_clearings": self.parent_clearings,
            "escalated_units": self.escalated_units,
            "per_class": self.per_class,
        }
    }
}

/// Population variance of `ln(x)` over the *positive* values.
/// Non-positive prices have no logarithm — a node that zeroes a price
/// (e.g. while crashed) would otherwise inject `−∞`/NaN into the series
/// and, through it, `null`-holes into the report JSON.
fn log_variance(values: impl Iterator<Item = f64> + Clone) -> f64 {
    let mut n = 0u64;
    let mut sum = 0.0;
    for v in values.clone() {
        if v <= 0.0 {
            continue;
        }
        n += 1;
        sum += v.ln();
    }
    if n == 0 {
        return 0.0;
    }
    let mean = sum / n as f64;
    let mut ss = 0.0;
    for v in values {
        if v <= 0.0 {
            continue;
        }
        let d = v.ln() - mean;
        ss += d * d;
    }
    ss / n as f64
}

impl ConvergenceReport {
    /// Computes the report from a trace. Records must be in emission
    /// order (traces are); `period_us` buckets them, `tol` is the
    /// `mean_abs_log_step` threshold below which a period counts as
    /// quiet.
    ///
    /// # Panics
    /// Panics if `period_us == 0`.
    pub fn from_records(records: &[TraceRecord], period_us: u64, tol: f64) -> ConvergenceReport {
        assert!(period_us > 0, "period_us must be positive");
        // Latest price per (class, node), plus per-class/per-period step
        // accumulators.
        let mut prices: BTreeMap<u32, BTreeMap<u32, f64>> = BTreeMap::new();
        let mut variance: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        let mut steps: BTreeMap<u32, Vec<Welford>> = BTreeMap::new();
        let mut nodes: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        let mut price_adjustments = 0u64;
        let mut rejections = 0u64;
        let mut supply_events = 0u64;
        let mut dropped_messages = 0u64;
        let mut crashes = 0u64;
        let mut broker_bids = 0u64;
        let mut parent_clearings = 0u64;
        let mut escalated_units = 0u64;
        let mut adjustments: BTreeMap<u32, u64> = BTreeMap::new();

        let mut cur_period = 0u64;
        let close_period = |prices: &BTreeMap<u32, BTreeMap<u32, f64>>,
                            variance: &mut BTreeMap<u32, Vec<f64>>,
                            period: u64| {
            for (&class, by_node) in prices {
                let series = variance.entry(class).or_default();
                let v = log_variance(by_node.values().copied());
                while (series.len() as u64) <= period {
                    // Pad with the last known value so late-appearing
                    // classes still get a full-length series.
                    let last = series.last().copied().unwrap_or(0.0);
                    series.push(last);
                }
                series[period as usize] = v;
            }
        };

        for rec in records {
            let period = rec.t_us / period_us;
            while cur_period < period {
                close_period(&prices, &mut variance, cur_period);
                cur_period += 1;
            }
            match &rec.event {
                TelemetryEvent::PriceAdjusted {
                    node,
                    class,
                    old,
                    new,
                    ..
                } => {
                    price_adjustments += 1;
                    *adjustments.entry(*class).or_default() += 1;
                    nodes.insert(*node);
                    prices.entry(*class).or_default().insert(*node, *new);
                    if *old > 0.0 && *new > 0.0 {
                        let series = steps.entry(*class).or_default();
                        while (series.len() as u64) <= period {
                            series.push(Welford::new());
                        }
                        series[period as usize].add((new.ln() - old.ln()).abs());
                    }
                }
                TelemetryEvent::RequestRejected { node, .. } => {
                    rejections += 1;
                    nodes.insert(*node);
                }
                TelemetryEvent::SupplyComputed { node, .. } => {
                    supply_events += 1;
                    nodes.insert(*node);
                }
                TelemetryEvent::MessageDropped { .. } => dropped_messages += 1,
                TelemetryEvent::NodeCrashed { .. } => crashes += 1,
                TelemetryEvent::BrokerBid { .. } => broker_bids += 1,
                TelemetryEvent::ParentCleared { .. } => parent_clearings += 1,
                TelemetryEvent::DemandEscalated { units, .. } => escalated_units += units,
                _ => {}
            }
        }
        close_period(&prices, &mut variance, cur_period);
        let periods = cur_period + 1;

        let per_class = prices
            .iter()
            .map(|(&class, by_node)| {
                let var_series = variance.get(&class).cloned().unwrap_or_default();
                let mut step_series: Vec<f64> = steps
                    .get(&class)
                    .map(|ws| ws.iter().map(|w| w.mean().unwrap_or(0.0)).collect())
                    .unwrap_or_default();
                step_series.resize(periods as usize, 0.0);
                // Trailing-quiet scan: the first period of the final
                // all-quiet suffix.
                let mut stabilized = Some(0u64);
                for (i, &s) in step_series.iter().enumerate() {
                    if s > tol {
                        stabilized = if i + 1 < step_series.len() {
                            Some(i as u64 + 1)
                        } else {
                            None
                        };
                    }
                }
                let final_mean_price = if by_node.is_empty() {
                    0.0
                } else {
                    by_node.values().sum::<f64>() / by_node.len() as f64
                };
                ClassConvergence {
                    class,
                    adjustments: adjustments.get(&class).copied().unwrap_or(0),
                    final_mean_price,
                    log_price_variance: var_series,
                    mean_abs_log_step: step_series,
                    stabilized_at_period: stabilized,
                }
            })
            .collect();

        ConvergenceReport {
            period_us,
            periods,
            nodes: nodes.len() as u64,
            price_adjustments,
            rejections,
            supply_events,
            dropped_messages,
            crashes,
            broker_bids,
            parent_clearings,
            escalated_units,
            per_class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_event_kinds() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::PriceAdjusted {
                node: 3,
                class: 1,
                old: 1.0,
                new: 1.25,
                reason: PriceReason::Rejection,
            },
            TelemetryEvent::SupplyComputed {
                node: 3,
                budget_ms: 500.0,
                supply: vec![4, 0, 7],
            },
            TelemetryEvent::RequestRejected { node: 2, class: 0 },
            TelemetryEvent::QueryAssigned {
                query: 42,
                class: 1,
                node: 5,
                retries: 2,
            },
            TelemetryEvent::QueryCompleted {
                query: 42,
                class: 1,
                node: 5,
                response_ms: 123.5,
            },
            TelemetryEvent::QueryUnserved {
                query: 43,
                class: 0,
                retries: 8,
            },
            TelemetryEvent::MessageDropped {
                node: 7,
                context: "poll".to_string(),
            },
            TelemetryEvent::NodeCrashed { node: 7 },
            TelemetryEvent::NodeRecovered { node: 7 },
            TelemetryEvent::PeriodStarted { index: 9 },
            TelemetryEvent::Diag {
                severity: Severity::Warn,
                component: "sim.federation".to_string(),
                message: "something \"quoted\"".to_string(),
            },
            TelemetryEvent::PeerConnected {
                node: 4,
                addr: "127.0.0.1:4410".to_string(),
            },
            TelemetryEvent::HandshakeCompleted {
                node: 4,
                version: 1,
            },
            TelemetryEvent::ConnectRetried {
                node: 4,
                attempt: 2,
                delay_ms: 160,
            },
            TelemetryEvent::FrameDropped {
                node: 4,
                context: "unknown tag 0xfe".to_string(),
            },
            TelemetryEvent::PeerDied {
                node: 4,
                reason: "heartbeat timeout".to_string(),
            },
            TelemetryEvent::ScheduleStarted {
                schedule: 17,
                mode: "systematic".to_string(),
            },
            TelemetryEvent::InvariantViolated {
                invariant: "conservation".to_string(),
                detail: "query 3 committed twice; trail deliver:1/3".to_string(),
            },
            TelemetryEvent::BrokerBid {
                broker: 2,
                supply: vec![14, 0, 3],
                mean_ln_price: vec![0.25, -1.5, 3.0],
            },
            TelemetryEvent::ParentCleared {
                rounds: 6,
                ln_prices: vec![0.5, -0.125],
                unserved: vec![0, 11],
            },
            TelemetryEvent::DemandEscalated {
                class: 1,
                units: 11,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_strict_parser() {
        for (i, event) in all_event_kinds().into_iter().enumerate() {
            let rec = TraceRecord {
                t_us: i as u64 * 500_000,
                event,
            };
            let line = rec.to_json().dump();
            let back = TraceRecord::parse_line(&line)
                .unwrap_or_else(|e| panic!("round-trip failed for {line}: {e}"));
            assert_eq!(back, rec);
            // Canonical: re-serializing the parsed record reproduces the
            // exact line (this is what check_trace enforces).
            assert_eq!(back.to_json().dump(), line);
        }
    }

    #[test]
    fn clock_is_monotone_under_stale_stamps() {
        let (tel, buf) = Telemetry::buffered();
        tel.set_now_us(1_000);
        // A racing thread that computed its elapsed time earlier must not
        // drag the clock (and hence trace timestamps) backwards.
        tel.set_now_us(400);
        tel.emit(|| TelemetryEvent::PeriodStarted { index: 0 });
        assert_eq!(buf.records()[0].t_us, 1_000);
    }

    #[test]
    fn parse_rejects_unknown_type_and_missing_fields() {
        assert!(TraceRecord::parse_line(r#"{"t_us":0,"type":"nope"}"#).is_err());
        assert!(TraceRecord::parse_line(r#"{"t_us":0,"type":"node_crashed"}"#).is_err());
        assert!(TraceRecord::parse_line(r#"{"type":"node_crashed","node":1}"#).is_err());
        assert!(TraceRecord::parse_line("not json").is_err());
    }

    #[test]
    fn disabled_handle_runs_no_closures() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.emit(|| panic!("closure must not run when disabled"));
        tel.diag(Severity::Error, "x", || {
            panic!("message must not build when disabled")
        });
        tel.set_now_us(123);
        assert_eq!(tel.now_us(), 0);
        let _span = tel.span("noop");
        assert!(tel.registry().is_none());
    }

    #[test]
    fn buffered_handle_captures_in_order_with_clock_and_label() {
        let (tel, buf) = Telemetry::buffered();
        let node3 = tel.with_label(3);
        tel.set_now_us(1_000);
        node3.emit(|| TelemetryEvent::NodeCrashed {
            node: node3.label(),
        });
        // The clock is shared across labeled clones.
        node3.set_now_us(2_000);
        tel.emit(|| TelemetryEvent::NodeRecovered { node: 3 });
        let records = buf.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].t_us, 1_000);
        assert_eq!(records[0].event, TelemetryEvent::NodeCrashed { node: 3 });
        assert_eq!(records[1].t_us, 2_000);
        let jsonl = buf.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            TraceRecord::parse_line(line).unwrap();
        }
    }

    #[test]
    fn registry_snapshot_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(2);
        reg.counter("a.count").incr();
        reg.gauge("fairness").set(0.5);
        reg.welford("latency_us").observe(10.0);
        reg.welford("latency_us").observe(20.0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("counters").unwrap().keys().unwrap(),
            vec!["a.count", "b.count"]
        );
        assert_eq!(
            snap.get("counters").unwrap().get("b.count").unwrap(),
            &Json::Int(2)
        );
        assert_eq!(
            snap.get("stats")
                .unwrap()
                .get("latency_us")
                .unwrap()
                .get("count")
                .unwrap(),
            &Json::Int(2)
        );
        assert_eq!(reg.welford("latency_us").snapshot().count(), 2);
        // All four sections are present even when empty.
        assert_eq!(
            snap.keys().unwrap(),
            vec!["counters", "gauges", "stats", "histograms"]
        );
        assert_eq!(snap.get("histograms").unwrap().keys().unwrap().len(), 0);
    }

    #[test]
    fn registry_histograms_snapshot_with_quantiles() {
        let reg = MetricsRegistry::new();
        for i in 0..100 {
            reg.histogram("alloc_ms").observe(i as f64);
        }
        let snap = reg.snapshot();
        let h = snap.get("histograms").unwrap().get("alloc_ms").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(100));
        assert!(h.get("p50").unwrap().as_f64().unwrap() >= 49.0);
        assert!(h.get("p99").unwrap().as_f64().unwrap() >= 99.0);
        assert_eq!(reg.histogram("alloc_ms").snapshot().count(), 100);
    }

    #[test]
    fn registry_merge_snapshot_aggregates_across_processes() {
        // Two "remote" registries, scraped as JSON, merged into a fresh one.
        let (a, b, fleet) = (
            MetricsRegistry::new(),
            MetricsRegistry::new(),
            MetricsRegistry::new(),
        );
        a.counter("qad.queries").add(3);
        b.counter("qad.queries").add(4);
        a.gauge("qad.backlog_ms").set(10.0);
        b.gauge("qad.backlog_ms").set(20.0);
        for x in [1.0, 2.0, 3.0] {
            a.welford("lat").observe(x);
            a.histogram("lat_h").observe(x);
        }
        for x in [4.0, 5.0] {
            b.welford("lat").observe(x);
            b.histogram("lat_h").observe(x);
        }
        b.welford("empty_family").snapshot(); // registered, never observed
        for snap in [a.snapshot(), b.snapshot()] {
            // Round-trip through the dump, as the wire does.
            let parsed = Json::parse(&snap.dump()).unwrap();
            assert!(fleet.merge_snapshot(&parsed) > 0);
        }
        assert_eq!(fleet.counter("qad.queries").get(), 7);
        assert_eq!(fleet.gauge("qad.backlog_ms").get(), 20.0);
        let lat = fleet.welford("lat").snapshot();
        assert_eq!(lat.count(), 5);
        assert!((lat.mean().unwrap() - 3.0).abs() < 1e-9);
        assert_eq!(lat.min(), Some(1.0));
        assert_eq!(lat.max(), Some(5.0));
        let lat_h = fleet.histogram("lat_h").snapshot();
        assert_eq!(lat_h.count(), 5);
        assert!((lat_h.sum() - 15.0).abs() < 1e-9);
        // Empty families still appear in the merged snapshot.
        assert!(fleet
            .snapshot()
            .get("stats")
            .unwrap()
            .get("empty_family")
            .is_some());
        // Garbage input merges nothing and does not panic.
        assert_eq!(fleet.merge_snapshot(&Json::Null), 0);
    }

    #[test]
    fn metrics_only_has_registry_but_silent_event_stream() {
        let tel = Telemetry::metrics_only();
        assert!(tel.is_enabled());
        tel.emit(|| TelemetryEvent::PeriodStarted { index: 0 });
        let reg = tel.registry().expect("metrics-only handle has a registry");
        reg.counter("x").incr();
        assert_eq!(reg.counter("x").get(), 1);
    }

    #[test]
    fn span_records_into_registry() {
        let (tel, _buf) = Telemetry::buffered();
        {
            let _span = tel.span("work");
        }
        let snap = tel.registry().unwrap().snapshot();
        let count = snap
            .get("stats")
            .unwrap()
            .get("span.work_us")
            .unwrap()
            .get("count")
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(count, 1);
        // Spans never touch the event stream (byte-determinism contract).
        assert!(_buf.is_empty());
    }

    #[test]
    fn counting_sink_counts_without_storing() {
        let sink = CountingSink::new();
        let tel = Telemetry::with_sink(Box::new(sink.clone()));
        for _ in 0..5 {
            tel.emit(|| TelemetryEvent::PeriodStarted { index: 0 });
        }
        assert_eq!(sink.count(), 5);
    }

    fn adj(t_us: u64, node: u32, class: u32, old: f64, new: f64) -> TraceRecord {
        TraceRecord {
            t_us,
            event: TelemetryEvent::PriceAdjusted {
                node,
                class,
                old,
                new,
                reason: PriceReason::Rejection,
            },
        }
    }

    #[test]
    fn convergence_report_detects_stabilization() {
        let period = 1_000u64;
        // Class 0: big moves in periods 0–1 on two nodes, silent after.
        let records = vec![
            adj(0, 0, 0, 1.0, 2.0),
            adj(10, 1, 0, 1.0, 1.5),
            adj(1_500, 0, 0, 2.0, 2.5),
            TraceRecord {
                t_us: 3_500,
                event: TelemetryEvent::SupplyComputed {
                    node: 0,
                    budget_ms: 500.0,
                    supply: vec![1],
                },
            },
        ];
        let report = ConvergenceReport::from_records(&records, period, 1e-3);
        assert_eq!(report.periods, 4);
        assert_eq!(report.nodes, 2);
        assert_eq!(report.price_adjustments, 3);
        assert_eq!(report.supply_events, 1);
        let c0 = &report.per_class[0];
        assert_eq!(c0.class, 0);
        assert_eq!(c0.adjustments, 3);
        assert_eq!(c0.mean_abs_log_step.len(), 4);
        assert!(c0.mean_abs_log_step[0] > 0.0);
        assert!(c0.mean_abs_log_step[1] > 0.0);
        assert_eq!(c0.mean_abs_log_step[2], 0.0);
        // Quiet from period 2 onward.
        assert_eq!(c0.stabilized_at_period, Some(2));
        // Final prices 2.5 and 1.5 → mean 2.0, nonzero dispersion.
        assert!((c0.final_mean_price - 2.0).abs() < 1e-12);
        assert!(c0.log_price_variance[3] > 0.0);
    }

    #[test]
    fn convergence_report_counts_broker_tier_events() {
        let records = vec![
            TraceRecord {
                t_us: 0,
                event: TelemetryEvent::BrokerBid {
                    broker: 0,
                    supply: vec![4],
                    mean_ln_price: vec![0.0],
                },
            },
            TraceRecord {
                t_us: 1,
                event: TelemetryEvent::BrokerBid {
                    broker: 1,
                    supply: vec![2],
                    mean_ln_price: vec![0.5],
                },
            },
            TraceRecord {
                t_us: 2,
                event: TelemetryEvent::ParentCleared {
                    rounds: 1,
                    ln_prices: vec![0.1],
                    unserved: vec![3],
                },
            },
            TraceRecord {
                t_us: 3,
                event: TelemetryEvent::DemandEscalated { class: 0, units: 3 },
            },
            TraceRecord {
                t_us: 1_200,
                event: TelemetryEvent::DemandEscalated { class: 0, units: 2 },
            },
        ];
        let report = ConvergenceReport::from_records(&records, 1_000, 1e-3);
        assert_eq!(report.broker_bids, 2);
        assert_eq!(report.parent_clearings, 1);
        assert_eq!(report.escalated_units, 5);
        let dump = report.to_json().dump();
        assert!(dump.contains("\"broker_bids\":2"));
    }

    #[test]
    fn convergence_report_unstable_to_the_end_is_none() {
        let records = vec![adj(0, 0, 0, 1.0, 2.0), adj(2_500, 0, 0, 2.0, 4.0)];
        let report = ConvergenceReport::from_records(&records, 1_000, 1e-3);
        assert_eq!(report.per_class[0].stabilized_at_period, None);
    }

    #[test]
    fn convergence_report_empty_trace() {
        let report = ConvergenceReport::from_records(&[], 1_000, 1e-3);
        assert_eq!(report.periods, 1);
        assert_eq!(report.nodes, 0);
        assert!(report.per_class.is_empty());
        // The report itself serializes.
        assert!(report.to_json().dump().contains("\"periods\":1"));
    }

    #[test]
    fn convergence_report_single_period_trace() {
        // Every record lands in period 0; nothing to pad, nothing NaN.
        let records = vec![adj(0, 0, 7, 1.0, 2.0), adj(500, 1, 7, 1.0, 3.0)];
        let report = ConvergenceReport::from_records(&records, 1_000, 1e-3);
        assert_eq!(report.periods, 1);
        assert_eq!(report.nodes, 2);
        let c = &report.per_class[0];
        assert_eq!(c.class, 7);
        assert_eq!(c.log_price_variance.len(), 1);
        assert_eq!(c.mean_abs_log_step.len(), 1);
        assert!(c.log_price_variance[0].is_finite());
        assert!(c.mean_abs_log_step[0].is_finite());
        // A single still-moving period never counts as stabilized.
        assert_eq!(c.stabilized_at_period, None);
        report.to_json().dump();
    }

    #[test]
    fn convergence_report_zero_price_class_has_no_nans() {
        // A class whose every market node reports a non-positive price
        // (e.g. zeroed while crashed): ln() is undefined there, but the
        // report must stay finite — no NaN/±∞ leaking into JSON as
        // spurious nulls.
        let records = vec![
            adj(0, 0, 3, 1.0, 0.0),
            adj(10, 1, 3, 1.0, 0.0),
            adj(2_500, 0, 3, 0.0, 0.0),
        ];
        let report = ConvergenceReport::from_records(&records, 1_000, 1e-3);
        let c = &report.per_class[0];
        assert_eq!(c.class, 3);
        assert_eq!(c.final_mean_price, 0.0);
        assert!(c.log_price_variance.iter().all(|v| v.is_finite()));
        assert!(c.mean_abs_log_step.iter().all(|v| v.is_finite()));
        // Mixed case: one live node (positive price), one zeroed — the
        // variance is computed over the positive prices only.
        let mixed = vec![adj(0, 0, 3, 1.0, 2.0), adj(10, 1, 3, 1.0, 0.0)];
        let report = ConvergenceReport::from_records(&mixed, 1_000, 1e-3);
        let c = &report.per_class[0];
        assert!(c.log_price_variance.iter().all(|v| v.is_finite()));
        let dump = report.to_json().dump();
        assert!(!dump.contains("NaN") && !dump.contains("inf"));
    }
}
