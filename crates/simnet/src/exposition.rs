//! Prometheus text exposition (format 0.0.4) for registry snapshots.
//!
//! Renders a [`MetricsRegistry`](crate::telemetry::MetricsRegistry)
//! snapshot — or a fleet-merged one — as the plain-text format every
//! Prometheus-compatible scraper speaks. Hand-rolled on purpose: the
//! workspace is hermetic (zero registry deps) and the format is four
//! line shapes over text we already own.
//!
//! Mapping from the registry's four sections:
//!
//! * counters → `counter` (value line as-is),
//! * gauges → `gauge`,
//! * stats (Welford) → `summary` with `_count` and `_sum` series
//!   (`sum = mean × count`; quantile series are deliberately omitted —
//!   a mean/variance accumulator has no honest quantiles),
//! * histograms ([`LogHistogram`](crate::stats::LogHistogram)) →
//!   `histogram` with cumulative `_bucket{le="…"}` series at each
//!   non-empty bucket bound, the mandatory `le="+Inf"` bucket, `_sum`
//!   and `_count`.
//!
//! Metric names are sanitized to the exposition charset
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other byte becomes `_`, so the
//! registry's dotted names (`qad.queries_executed`) become the
//! conventional underscore form (`qad_queries_executed`).

use crate::json::Json;
use crate::stats::LogHistogram;
use std::fmt::Write;

/// Sanitizes a registry metric name into the exposition charset.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for (i, c) in raw.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x}")
    }
}

fn section<'j>(snapshot: &'j Json, key: &str) -> Vec<(&'j String, &'j Json)> {
    match snapshot.get(key) {
        Some(Json::Obj(pairs)) => pairs.iter().map(|(k, v)| (k, v)).collect(),
        _ => Vec::new(),
    }
}

/// Renders a registry snapshot (the JSON from
/// [`MetricsRegistry::snapshot`](crate::telemetry::MetricsRegistry::snapshot))
/// as Prometheus text exposition format 0.0.4. Entries that fail to
/// parse (foreign JSON) are skipped — exposition must never panic on a
/// scraped payload.
pub fn prometheus_text(snapshot: &Json) -> String {
    let mut out = String::new();

    for (name, v) in section(snapshot, "counters") {
        let Some(n) = v.as_u64() else { continue };
        let name = metric_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {n}");
    }

    for (name, v) in section(snapshot, "gauges") {
        let Some(x) = v.as_f64() else { continue };
        let name = metric_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_f64(x));
    }

    for (name, v) in section(snapshot, "stats") {
        let Some(count) = v.get("count").and_then(Json::as_u64) else {
            continue;
        };
        let mean = v.get("mean").and_then(Json::as_f64).unwrap_or(0.0);
        let name = metric_name(name);
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}_count {count}");
        let _ = writeln!(out, "{name}_sum {}", fmt_f64(mean * count as f64));
    }

    for (name, v) in section(snapshot, "histograms") {
        let Some(h) = LogHistogram::from_json(v) else {
            continue;
        };
        let name = metric_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &c) in h.buckets().iter().enumerate() {
            let Some(bound) = LogHistogram::bucket_bound(i) else {
                break; // overflow bucket is covered by le="+Inf"
            };
            if c == 0 {
                continue;
            }
            cumulative += c;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                fmt_f64(bound)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum()));
        let _ = writeln!(out, "{name}_count {}", h.count());
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MetricsRegistry;

    #[test]
    fn sanitizes_metric_names() {
        assert_eq!(metric_name("qad.queries_executed"), "qad_queries_executed");
        assert_eq!(metric_name("net.bytes-in"), "net_bytes_in");
        assert_eq!(metric_name("9lives"), "_9lives");
        assert_eq!(metric_name("span.poll_us"), "span_poll_us");
        assert_eq!(metric_name(""), "_");
    }

    #[test]
    fn renders_all_four_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("qad.queries").add(5);
        reg.gauge("qad.backlog_ms").set(12.5);
        reg.welford("alloc.assign_ms").observe(2.0);
        reg.welford("alloc.assign_ms").observe(4.0);
        for x in [0.5, 3.0, 3.5, 2_000_000.0] {
            reg.histogram("rpc.round_trip_ms").observe(x);
        }
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE qad_queries counter\nqad_queries 5\n"));
        assert!(text.contains("# TYPE qad_backlog_ms gauge\nqad_backlog_ms 12.5\n"));
        assert!(text.contains("# TYPE alloc_assign_ms summary"));
        assert!(text.contains("alloc_assign_ms_count 2"));
        assert!(text.contains("alloc_assign_ms_sum 6"));
        assert!(text.contains("# TYPE rpc_round_trip_ms histogram"));
        // Cumulative buckets: 0.5 ≤ 0.5, then 3.0/3.5 ≤ 4, overflow at +Inf.
        assert!(text.contains("rpc_round_trip_ms_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("rpc_round_trip_ms_bucket{le=\"4\"} 3"));
        assert!(text.contains("rpc_round_trip_ms_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("rpc_round_trip_ms_count 4"));
    }

    #[test]
    fn bucket_series_is_cumulative_and_monotone() {
        let reg = MetricsRegistry::new();
        for i in 1..=64 {
            reg.histogram("h").observe(i as f64);
        }
        let text = prometheus_text(&reg.snapshot());
        let mut last = 0u64;
        let mut saw_inf = false;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("h_bucket{le=\"") {
                let (_, count) = rest.split_once("\"} ").unwrap();
                let count: u64 = count.parse().unwrap();
                assert!(count >= last, "bucket counts must be cumulative: {line}");
                last = count;
                saw_inf |= rest.starts_with("+Inf");
            }
        }
        assert!(saw_inf, "the +Inf bucket is mandatory");
        assert_eq!(last, 64);
    }

    #[test]
    fn every_line_matches_the_exposition_grammar() {
        let reg = MetricsRegistry::new();
        reg.counter("c").incr();
        reg.gauge("g").set(-0.25);
        reg.welford("w").observe(1.0);
        reg.histogram("h").observe(1.0);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.ends_with('\n'));
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let (name, kind) = (it.next().unwrap(), it.next().unwrap());
                assert!(it.next().is_none());
                assert!(name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
                assert!(["counter", "gauge", "summary", "histogram"].contains(&kind));
            } else {
                // `name{labels} value` or `name value`
                let (name_part, value) = line.rsplit_once(' ').unwrap();
                let name = name_part.split('{').next().unwrap();
                assert!(!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit()));
                assert!(
                    value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                    "unparseable sample value in {line:?}"
                );
            }
        }
    }

    #[test]
    fn empty_and_foreign_snapshots_render_without_panicking() {
        assert_eq!(prometheus_text(&MetricsRegistry::new().snapshot()), "");
        assert_eq!(prometheus_text(&Json::Null), "");
        let garbage = Json::object([("histograms", Json::object([("x", Json::Int(3))]))]);
        assert_eq!(prometheus_text(&garbage), "");
    }
}
