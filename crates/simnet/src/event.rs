//! Deterministic future-event list.
//!
//! A discrete-event simulation is a loop that pops the earliest scheduled
//! event, advances the clock to its timestamp, and lets the handler schedule
//! further events. Correctness of our experiments requires *determinism*:
//! two runs with the same seed must process events in the same order, so
//! every event carries a monotonically increasing sequence number used as a
//! timestamp tie-breaker — simultaneous events pop in the order they were
//! scheduled.
//!
//! The store is a calendar queue rather than a binary heap: a ring of
//! buckets keyed by absolute time slot (`time_µs >> width_shift`). Because
//! a simulation clock only moves forward, every pending event's slot lies
//! in `[slot(now), slot(now) + buckets)` — the queue grows the ring (while
//! it is smaller than ~4× the pending-event count) or the slot width until
//! that invariant holds, so each bucket holds at most one distinct slot and
//! the earliest non-empty bucket at or after `slot(now)` always holds the
//! globally earliest event. Scheduling is an append plus an `O(1)`
//! cached-head update; popping re-scans only the buckets between the old
//! and new head slot through a per-bucket occupancy bitmap (64 empty
//! buckets per word load), ranges that never overlap across pops, so total
//! scan work is bounded by elapsed virtual time divided by `64 ×` the slot
//! width. Buckets sort lazily: the common append-in-time-order case is
//! recognised and served by a reversal instead of a comparison sort.

use crate::time::SimTime;
use std::cmp::Ordering;

/// An event scheduled for a point in virtual time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Scheduling order, used to break timestamp ties FIFO.
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: E,
}

impl<E> ScheduledEvent<E> {
    /// The total order key: earlier time first, then scheduling order.
    fn key(&self) -> (u64, u64) {
        (self.time.as_micros(), self.seq)
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    /// Reversed so that the *earliest* event is the max of a max-heap
    /// (kept for callers that use `ScheduledEvent` in a `BinaryHeap`).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// How a bucket's backing vector is currently ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BucketOrder {
    /// Push order happens to be ascending by key (the common case when a
    /// slot's events are scheduled in time order). Pop-ready after an
    /// `O(n)` reversal, no comparisons.
    PushAscending,
    /// Descending by key: the minimum is at the back, `Vec::pop` serves it.
    Descending,
    /// Out of order; the next pop sorts it descending first.
    Dirty,
}

#[derive(Debug)]
struct Bucket<E> {
    events: Vec<ScheduledEvent<E>>,
    order: BucketOrder,
}

impl<E> Bucket<E> {
    fn new() -> Self {
        Bucket {
            events: Vec::new(),
            order: BucketOrder::PushAscending,
        }
    }

    fn push(&mut self, ev: ScheduledEvent<E>) {
        if let Some(last) = self.events.last() {
            let keeps = match self.order {
                BucketOrder::PushAscending => ev.key() > last.key(),
                BucketOrder::Descending => ev.key() < last.key(),
                BucketOrder::Dirty => false,
            };
            if !keeps {
                self.order = BucketOrder::Dirty;
            }
        }
        self.events.push(ev);
    }

    /// Ensures the minimum-key event sits at the back of `events`.
    fn make_pop_ready(&mut self) {
        match self.order {
            BucketOrder::PushAscending => self.events.reverse(),
            BucketOrder::Descending => {}
            BucketOrder::Dirty => {
                self.events
                    .sort_unstable_by_key(|e| core::cmp::Reverse(e.key()));
            }
        }
        self.order = BucketOrder::Descending;
    }

    fn pop_min(&mut self) -> Option<ScheduledEvent<E>> {
        self.make_pop_ready();
        let ev = self.events.pop();
        if self.events.is_empty() {
            self.order = BucketOrder::PushAscending;
        }
        ev
    }

    fn min_key(&mut self) -> Option<(u64, u64)> {
        self.make_pop_ready();
        self.events.last().map(|e| e.key())
    }
}

/// Starting ring size; slots map to buckets by `slot & (len - 1)`.
const INITIAL_BUCKETS: usize = 256;
/// Hard ceiling on ring doubling; in practice the occupancy bound in
/// [`EventQueue::grow`] stops the ring far earlier and the slot *width*
/// doubles instead (halving the live slot span), so any horizon fits.
const MAX_BUCKETS: usize = 1 << 16;
/// Starting slot width: `2^9` µs = 512 µs per bucket.
const INITIAL_WIDTH_SHIFT: u32 = 9;

/// A future-event list with a virtual clock.
///
/// The queue owns the notion of "now": popping an event advances the clock,
/// and scheduling in the past is a logic error that panics (it would make
/// the simulation non-causal).
#[derive(Debug)]
pub struct EventQueue<E> {
    buckets: Vec<Bucket<E>>,
    /// One bit per bucket (set iff non-empty), packed into `u64` words.
    /// Lets the head scan skip 64 empty buckets per word instead of
    /// touching each `Bucket` — sparse queues (few events spread over a
    /// long horizon) would otherwise pay a cache miss per empty bucket.
    occupied: Vec<u64>,
    /// Bucket index mask; `buckets.len()` is always a power of two.
    mask: u64,
    /// Slot width is `2^width_shift` µs.
    width_shift: u32,
    /// Key `(time_µs, seq)` of the earliest pending event.
    head: Option<(u64, u64)>,
    len: usize,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at the origin.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Bucket::new()).collect(),
            occupied: vec![0; INITIAL_BUCKETS / 64],
            mask: INITIAL_BUCKETS as u64 - 1,
            width_shift: INITIAL_WIDTH_SHIFT,
            head: None,
            len: 0,
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot the clock currently sits in. Every pending event's slot is
    /// at or after this (causality: pending times are `>= now`), which is
    /// what makes `slot & mask` collision-free within the live span.
    fn base_slot(&self) -> u64 {
        self.now.as_micros() >> self.width_shift
    }

    fn bucket_of(&self, time_us: u64) -> usize {
        ((time_us >> self.width_shift) & self.mask) as usize
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at} now={}",
            self.now
        );
        let t_us = at.as_micros();
        loop {
            let slot = t_us >> self.width_shift;
            if slot - self.base_slot() < self.buckets.len() as u64 {
                break;
            }
            self.grow();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = (t_us, seq);
        if self.head.is_none_or(|h| key < h) {
            self.head = Some(key);
        }
        let b = self.bucket_of(t_us);
        self.buckets[b].push(ScheduledEvent {
            time: at,
            seq,
            payload,
        });
        self.occupied[b / 64] |= 1 << (b % 64);
        self.len += 1;
    }

    /// Doubles the ring or the slot width and re-buckets every pending
    /// event. The ring doubles only while it is smaller than ~4× the
    /// pending-event count (and below [`MAX_BUCKETS`]); otherwise the slot
    /// *width* doubles. Ring size must track occupancy, not horizon — a
    /// handful of far-future completions would otherwise inflate the ring
    /// to [`MAX_BUCKETS`] and every later grow/drop would drag megabytes
    /// of empty buckets around. Amortised: growth happens `O(log horizon)`
    /// times per queue lifetime.
    fn grow(&mut self) {
        let want = (4 * self.len.max(16)).next_power_of_two().min(MAX_BUCKETS);
        let nb = if self.buckets.len() < want {
            self.buckets.len() * 2
        } else {
            self.width_shift += 1;
            self.buckets.len()
        };
        let mut pending: Vec<ScheduledEvent<E>> = Vec::with_capacity(self.len);
        // Drain through the bitmap so the ring's empty buckets cost nothing.
        for w in 0..self.occupied.len() {
            let mut bits = self.occupied[w];
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                pending.append(&mut self.buckets[b].events);
                self.buckets[b].order = BucketOrder::PushAscending;
            }
        }
        self.buckets.resize_with(nb, Bucket::new);
        self.occupied.clear();
        self.occupied.resize(nb / 64, 0);
        self.mask = nb as u64 - 1;
        for ev in pending {
            let b = self.bucket_of(ev.time.as_micros());
            self.buckets[b].push(ev);
            self.occupied[b / 64] |= 1 << (b % 64);
        }
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let (t_us, seq) = self.head?;
        let b = self.bucket_of(t_us);
        let ev = self.buckets[b].pop_min().expect("head bucket is non-empty");
        if self.buckets[b].events.is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        debug_assert_eq!(ev.key(), (t_us, seq));
        self.len -= 1;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        self.refresh_head();
        Some(ev)
    }

    /// Recomputes the cached head after a pop: the first non-empty bucket
    /// scanning forward from `slot(now)` holds the earliest pending event
    /// (slot-per-bucket uniqueness within the live span). The scan walks
    /// the occupancy bitmap a word at a time, so 64 empty buckets cost one
    /// load and a `trailing_zeros`.
    fn refresh_head(&mut self) {
        if self.len == 0 {
            self.head = None;
            return;
        }
        let from = (self.base_slot() & self.mask) as usize;
        let words = self.occupied.len();
        let mut w = from / 64;
        // Mask off buckets before `from` in the first word; the wrap-around
        // visit at the end re-reads the full word, restoring them in ring
        // order (they can only hold events if the scan wrapped past them).
        let mut cur = self.occupied[w] & (!0u64 << (from % 64));
        for _ in 0..=words {
            if cur != 0 {
                let b = w * 64 + cur.trailing_zeros() as usize;
                self.head = self.buckets[b].min_key();
                return;
            }
            w = (w + 1) % words;
            cur = self.occupied[w];
        }
        unreachable!("len > 0 but every bucket is empty");
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.head.map(|(t_us, _)| SimTime::from_micros(t_us))
    }

    /// The earliest pending event without popping it: the clock does not
    /// advance and the event stays queued. Takes `&mut` because the head
    /// bucket is lazily sorted in place. Lets a reader merge several
    /// queues by inspecting their heads (e.g. the sharded engine's
    /// multi-queue ordering tests).
    pub fn peek(&mut self) -> Option<&ScheduledEvent<E>> {
        let (t_us, _) = self.head?;
        let b = self.bucket_of(t_us);
        self.buckets[b].make_pop_ready();
        self.buckets[b].events.last()
    }

    /// Drops every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.events.clear();
            b.order = BucketOrder::PushAscending;
        }
        self.occupied.fill(0);
        self.head = None;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn peek_exposes_head_without_popping() {
        let mut q = EventQueue::new();
        assert!(q.peek().is_none());
        q.schedule(SimTime::from_millis(9), "later");
        q.schedule(SimTime::from_millis(2), "head");
        // Two distinct timestamps in one 512 µs slot, out of push order:
        // peek must surface the lazily-sorted minimum.
        let head = q.peek().expect("non-empty");
        assert_eq!(head.payload, "head");
        assert_eq!(head.time, SimTime::from_millis(2));
        assert_eq!(q.len(), 2, "peek must not consume");
        assert_eq!(q.now(), SimTime::ZERO, "peek must not advance the clock");
        assert_eq!(q.pop().map(|e| e.payload), Some("head"));
        assert_eq!(q.pop().map(|e| e.payload), Some("later"));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_causal() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1u32);
        while let Some(ev) = q.pop() {
            if ev.payload < 5 {
                q.schedule(q.now() + SimDuration::from_millis(1), ev.payload + 1);
            }
        }
        assert_eq!(q.now(), SimTime::from_millis(5));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.payload), None);
    }

    #[test]
    fn far_future_event_grows_ring_then_slot_width() {
        // 40 virtual seconds needs more slots than MAX_BUCKETS at the
        // initial 512 µs width: both growth paths must fire.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), "near");
        q.schedule(SimTime::from_secs(40), "far");
        q.schedule(SimTime::from_millis(3), "mid");
        assert_eq!(q.pop().map(|e| e.payload), Some("near"));
        assert_eq!(q.pop().map(|e| e.payload), Some("mid"));
        assert_eq!(q.pop().map(|e| e.payload), Some("far"));
        assert_eq!(q.now(), SimTime::from_secs(40));
        assert!(q.is_empty());
    }

    #[test]
    fn late_insert_below_pending_head_pops_first() {
        // A pop-then-schedule of an earlier (but still causal) timestamp
        // must displace the cached head.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), "first");
        q.schedule(SimTime::from_millis(900), "tail");
        assert_eq!(q.pop().map(|e| e.payload), Some("first"));
        q.schedule(SimTime::from_millis(2), "insert");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.pop().map(|e| e.payload), Some("insert"));
        assert_eq!(q.pop().map(|e| e.payload), Some("tail"));
    }

    #[test]
    fn out_of_order_pushes_into_one_bucket_still_sort() {
        // Several distinct timestamps inside a single 512 µs slot,
        // scheduled out of order: the lazy bucket sort must untangle them.
        let mut q = EventQueue::new();
        for &us in &[400u64, 100, 300, 100, 200] {
            q.schedule(SimTime::from_micros(us), us);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![100, 100, 200, 300, 400]);
    }

    #[test]
    fn dense_wrap_around_keeps_order() {
        // Slots wrap around the ring modulo the bucket count; order must
        // follow absolute time, not bucket index.
        let mut q = EventQueue::new();
        let step = SimDuration::from_micros(700); // > one slot
        let mut t = SimTime::ZERO;
        for i in 0..4096u32 {
            t += step;
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..4096).collect::<Vec<_>>());
    }
}
