//! Deterministic future-event list.
//!
//! A discrete-event simulation is a loop that pops the earliest scheduled
//! event, advances the clock to its timestamp, and lets the handler schedule
//! further events. Correctness of our experiments requires *determinism*:
//! two runs with the same seed must process events in the same order.
//! `std::collections::BinaryHeap` alone is not enough because events with
//! equal timestamps would pop in unspecified order, so every event carries a
//! monotonically increasing sequence number used as a tie-breaker —
//! simultaneous events pop in the order they were scheduled.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a point in virtual time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Scheduling order, used to break timestamp ties FIFO.
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    /// Reversed so that the *earliest* event is the max of the heap.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with a virtual clock.
///
/// The queue owns the notion of "now": popping an event advances the clock,
/// and scheduling in the past is a logic error that panics (it would make
/// the simulation non-causal).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at the origin.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            payload,
        });
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        Some(ev)
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drops every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_causal() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1u32);
        while let Some(ev) = q.pop() {
            if ev.payload < 5 {
                q.schedule(q.now() + SimDuration::from_millis(1), ev.payload + 1);
            }
        }
        assert_eq!(q.now(), SimTime::from_millis(5));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.payload), None);
    }
}
