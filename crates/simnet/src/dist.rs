//! Sampling distributions used by the workload generators.
//!
//! Table 3 of the paper specifies a *zipf* distribution for query
//! inter-arrival times and uniform ranges for node hardware parameters; the
//! real-cluster experiment (§5.2) uses uniform inter-arrival. We implement
//! the three distributions needed — [`Uniform`], [`Exponential`] and
//! [`Zipf`] — from scratch over [`DetRng`] rather than pulling in
//! `rand_distr`, keeping the dependency set minimal.

use crate::rng::DetRng;

/// A distribution over `f64` that can be sampled with a [`DetRng`].
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut DetRng) -> f64;
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// A uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty or not finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        Uniform { lo, hi }
    }

    /// The mean `(lo + hi) / 2`.
    pub fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        rng.float_in(self.lo, self.hi)
    }
}

/// Exponential distribution with the given mean (i.e. rate `1/mean`).
///
/// Used to model Poisson arrivals in tests and in the Markov-allocator
/// queueing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// An exponential distribution with mean `mean`.
    ///
    /// # Panics
    /// Panics if `mean` is not strictly positive and finite.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "bad mean {mean}");
        Exponential { mean }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        // Inverse CDF; 1 - unit() is in (0, 1] so ln() is finite.
        -self.mean * (1.0 - rng.unit()).ln()
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `a`:
/// `P(rank = k) ∝ k^-a`.
///
/// The paper uses `a = 1` over inter-arrival "slots"; we precompute the CDF
/// once (n ≤ a few thousand) and sample by binary search, which is both
/// simple and fast.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `1..=n` with exponent `a`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `a` is negative/not finite.
    pub fn new(n: usize, a: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(a.is_finite() && a >= 0.0, "bad exponent {a}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-a);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        // First index whose cumulative probability covers u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf values are finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i + 1,
        }
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k));
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(0xDECAF)
    }

    #[test]
    fn uniform_mean_converges() {
        let d = Uniform::new(10.0, 20.0);
        let mut r = rng();
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        assert!((sum / n as f64 - d.mean()).abs() < 0.1);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(300.0);
        let mut r = rng();
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let emp = sum / n as f64;
        assert!((emp - 300.0).abs() < 10.0, "empirical mean {emp}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::new(1.0);
        let mut r = rng();
        assert!((0..10_000).all(|_| d.sample(&mut r) >= 0.0));
    }

    #[test]
    fn zipf_ranks_in_range() {
        let d = Zipf::new(100, 1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let k = d.sample_rank(&mut r);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(100, 1.0);
        let mut r = rng();
        let n = 50_000;
        let ones = (0..n).filter(|_| d.sample_rank(&mut r) == 1).count();
        let expected = d.pmf(1);
        let emp = ones as f64 / n as f64;
        assert!(
            (emp - expected).abs() < 0.01,
            "empirical {emp} vs {expected}"
        );
        // With a = 1 over 100 ranks, rank 1 carries ~19% of the mass.
        assert!(expected > 0.15 && expected < 0.25);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let d = Zipf::new(50, 1.0);
        let total: f64 = (1..=50).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_pmf_is_monotone_decreasing() {
        let d = Zipf::new(30, 1.0);
        for k in 1..30 {
            assert!(d.pmf(k) >= d.pmf(k + 1));
        }
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let d = Zipf::new(10, 0.0);
        for k in 1..=10 {
            assert!((d.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }
}
