//! Virtual time.
//!
//! The simulator runs on a virtual clock that only advances when events are
//! processed. [`SimTime`] is an absolute instant, [`SimDuration`] a span;
//! both are newtypes over microsecond counts so they cannot be confused with
//! each other or with raw integers. The paper's time period `T` (500 ms by
//! default) and all query execution times are expressed as [`SimDuration`]s.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the virtual clock, in microseconds since the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far beyond any practical simulation horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from microseconds since the origin.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds since the origin.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds since the origin.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The index of the fixed-length period containing this instant.
    ///
    /// The paper divides time into periods `τ` of length `T`; period 0 covers
    /// `[0, T)`, period 1 covers `[T, 2T)`, and so on.
    pub fn period_index(self, period: SimDuration) -> u64 {
        assert!(period.0 > 0, "period length must be positive");
        self.0 / period.0
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Builds a span from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` iff the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that can happen.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl crate::json::ToJson for SimTime {
    /// Serializes as microseconds since the origin.
    fn to_json(&self) -> crate::json::Json {
        crate::json::ToJson::to_json(&self.0)
    }
}

impl crate::json::ToJson for SimDuration {
    /// Serializes as microseconds.
    fn to_json(&self) -> crate::json::Json {
        crate::json::ToJson::to_json(&self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.0 as f64 / 1e3)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(500).as_micros(), 500_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert!((SimDuration::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn float_construction_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_micros(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(2.5).as_micros(), 2_500);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(400);
        assert_eq!(t + d, SimTime::from_millis(500));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 2, SimDuration::from_millis(800));
        assert_eq!(d / 4, SimDuration::from_millis(100));
        assert_eq!(d * 0.5, SimDuration::from_millis(200));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(300);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(200));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn checked_subtraction_panics_on_underflow() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn period_index_matches_paper_semantics() {
        let t_period = SimDuration::from_millis(500);
        assert_eq!(SimTime::ZERO.period_index(t_period), 0);
        assert_eq!(SimTime::from_millis(499).period_index(t_period), 0);
        assert_eq!(SimTime::from_millis(500).period_index(t_period), 1);
        assert_eq!(SimTime::from_millis(1_250).period_index(t_period), 2);
    }

    #[test]
    fn addition_saturates_instead_of_overflowing() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
    }
}
