//! Streaming statistics for experiment measurement.
//!
//! Each figure in the paper is built from per-period aggregates: the number
//! of queries executed per time period and the average query response time
//! (often normalized against QA-NT's). These collectors compute such
//! aggregates in one pass without storing raw samples:
//!
//! * [`Welford`] — numerically stable running mean/variance,
//! * [`Histogram`] — fixed-width bucket counts with percentile queries,
//! * [`LogHistogram`] — power-of-two log-bucket counts with a fixed,
//!   universal bucket layout, so any two instances (including one
//!   reconstructed from a JSON snapshot scraped off another process)
//!   merge exactly — the distribution kind behind the fleet stats scrape,
//! * [`TimeSeries`] — per-period bins of a [`Welford`] plus a counter,
//!   directly matching the paper's "per half second" plots (Fig. 3, 5c).

use crate::json::{Json, ToJson};
use crate::time::{SimDuration, SimTime};

/// Welford's online algorithm for mean and variance.
#[derive(Debug, Clone)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Same as [`Welford::new`]. (A derived all-zero default would silently
/// corrupt `min`: `0.0.min(x)` sticks at zero for any positive sample.)
impl Default for Welford {
    fn default() -> Self {
        Welford::new()
    }
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance (n-1 denominator), or `None` with fewer than two
    /// observations.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Reconstructs an accumulator from the summary fields its [`ToJson`]
    /// impl exports (`count`/`mean`/`std_dev`/`min`/`max`), so a snapshot
    /// scraped off another process can be [`merge`](Self::merge)d into a
    /// local one. `m2` is recovered as `std_dev² · (n − 1)`; for `n ≤ 1`
    /// the variance is undefined and `m2` is zero by construction.
    pub fn from_summary(n: u64, mean: f64, std_dev: f64, min: f64, max: f64) -> Welford {
        if n == 0 {
            return Welford::new();
        }
        let m2 = if n > 1 {
            std_dev * std_dev * (n - 1) as f64
        } else {
            0.0
        };
        Welford {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl ToJson for Welford {
    fn to_json(&self) -> Json {
        crate::json_obj! {
            "count": self.count(),
            "mean": self.mean(),
            "std_dev": self.std_dev(),
            "min": self.min(),
            "max": self.max(),
        }
    }
}

/// Fixed-width-bucket histogram over `[0, width * buckets)`, with an
/// overflow bucket at the top.
#[derive(Debug, Clone)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram of `buckets` buckets each `width` wide.
    ///
    /// # Panics
    /// Panics if `width` is not positive or `buckets == 0`.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width.is_finite() && width > 0.0, "bad bucket width {width}");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets + 1], // last = overflow
            total: 0,
        }
    }

    /// Records one (non-negative) observation; negatives clamp to bucket 0.
    pub fn record(&mut self, x: f64) {
        let i = if x <= 0.0 {
            0
        } else {
            ((x / self.width) as usize).min(self.counts.len() - 1)
        };
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate `q`-quantile (`q` clamped to `[0, 1]`) using the upper
    /// edge of the bucket containing it, capped at the histogram's range
    /// top `width * buckets` (observations in the overflow bucket have no
    /// finite upper edge, so the range top is the tightest honest answer).
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let range_top = (self.counts.len() - 1) as f64 * self.width;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(((i as f64 + 1.0) * self.width).min(range_top));
            }
        }
        // Unreachable: `target <= total` and the loop sums every bucket,
        // but stay total-function anyway.
        Some(range_top)
    }

    /// Raw bucket counts (last bucket is overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }
}

/// Exponent of the smallest finite [`LogHistogram`] bucket bound (`2^-10`).
const LOG_HIST_MIN_EXP: i32 = -10;
/// Exponent of the largest finite [`LogHistogram`] bucket bound (`2^20`).
const LOG_HIST_MAX_EXP: i32 = 20;
/// Number of finite buckets; one overflow bucket follows.
const LOG_HIST_FINITE: usize = (LOG_HIST_MAX_EXP - LOG_HIST_MIN_EXP + 1) as usize;

/// Log-bucket histogram with a *fixed, universal* power-of-two layout.
///
/// Bucket `i` counts observations in `(2^(i-11), 2^(i-10)]` — the finite
/// bounds run from `2^-10 ≈ 0.001` to `2^20 ≈ 1.05e6`, which spans
/// sub-millisecond latencies through million-unit totals in whatever unit
/// the caller records. One overflow bucket sits above. Because the layout
/// never varies, any two `LogHistogram`s merge by adding bucket counts —
/// including one rebuilt from a JSON snapshot scraped from another
/// process ([`from_json`](Self::from_json)). That property is what the
/// fleet stats scrape relies on; a configurable layout would make merges
/// partial functions.
///
/// NaN observations are ignored; zero and negative values land in the
/// first bucket.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    sum: f64,
    total: u64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; LOG_HIST_FINITE + 1],
            sum: 0.0,
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Upper bound of finite bucket `i`, or `None` for the overflow bucket.
    pub fn bucket_bound(i: usize) -> Option<f64> {
        (i < LOG_HIST_FINITE).then(|| 2f64.powi(LOG_HIST_MIN_EXP + i as i32))
    }

    fn bucket_index(x: f64) -> usize {
        let mut bound = 2f64.powi(LOG_HIST_MIN_EXP);
        for i in 0..LOG_HIST_FINITE {
            if x <= bound {
                return i;
            }
            bound *= 2.0;
        }
        LOG_HIST_FINITE
    }

    /// Records one observation. NaN is ignored.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.counts[Self::bucket_index(x)] += 1;
        self.sum += x;
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (the Prometheus `_sum` series).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Raw bucket counts (last bucket is overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate `q`-quantile (`q` clamped to `[0, 1]`): the upper bound
    /// of the bucket containing it, capped at the observed maximum (the
    /// overflow bucket has no finite upper edge). Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(match Self::bucket_bound(i) {
                    Some(bound) => bound.min(self.max),
                    None => self.max,
                });
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one by adding bucket counts.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Rebuilds a histogram from its [`ToJson`] snapshot (the `buckets`
    /// sparse pairs plus `count`/`sum`/`min`/`max`). Returns `None` on a
    /// malformed snapshot — a bucket index out of range, counts that do
    /// not sum to `count`, or missing fields.
    pub fn from_json(j: &Json) -> Option<LogHistogram> {
        let mut h = LogHistogram::new();
        let total = j.get("count")?.as_u64()?;
        if total == 0 {
            return Some(h);
        }
        let mut acc = 0u64;
        for pair in j.get("buckets")?.as_array()? {
            let pair = pair.as_array()?;
            let [i, c] = pair else { return None };
            let (i, c) = (i.as_u64()? as usize, c.as_u64()?);
            if i >= h.counts.len() {
                return None;
            }
            h.counts[i] += c;
            acc += c;
        }
        if acc != total {
            return None;
        }
        h.total = total;
        h.sum = j.get("sum")?.as_f64()?;
        h.min = j.get("min")?.as_f64()?;
        h.max = j.get("max")?.as_f64()?;
        Some(h)
    }
}

impl ToJson for LogHistogram {
    /// Snapshot: summary fields, `p50`/`p90`/`p99` quantiles, and the
    /// non-empty buckets as sparse `[index, count]` pairs (the part
    /// [`from_json`](LogHistogram::from_json) rebuilds for merging).
    fn to_json(&self) -> Json {
        let sparse: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::Int(i as i64), Json::Int(c as i64)]))
            .collect();
        crate::json_obj! {
            "count": self.count(),
            "sum": self.sum(),
            "min": self.min(),
            "max": self.max(),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": Json::Arr(sparse),
        }
    }
}

/// Per-period time series: bins observations by period index.
///
/// Matches the paper's measurement scheme: "in each time period, we measured
/// the number of queries executed and the average query response time".
#[derive(Debug, Clone)]
pub struct TimeSeries {
    period: SimDuration,
    bins: Vec<Welford>,
}

impl TimeSeries {
    /// A series binned in periods of the given length.
    pub fn new(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        TimeSeries {
            period,
            bins: Vec::new(),
        }
    }

    /// The bin length.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Records observation `x` at virtual time `at`.
    pub fn record(&mut self, at: SimTime, x: f64) {
        let idx = at.period_index(self.period) as usize;
        if idx >= self.bins.len() {
            self.bins.resize_with(idx + 1, Welford::new);
        }
        self.bins[idx].add(x);
    }

    /// Number of bins touched so far (trailing empty bins are not created).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Per-bin observation counts.
    pub fn counts(&self) -> Vec<u64> {
        self.bins.iter().map(Welford::count).collect()
    }

    /// Per-bin means (`None` for empty bins).
    pub fn means(&self) -> Vec<Option<f64>> {
        self.bins.iter().map(Welford::mean).collect()
    }

    /// The accumulator for bin `i`, if it exists.
    pub fn bin(&self, i: usize) -> Option<&Welford> {
        self.bins.get(i)
    }

    /// Mean over *all* observations, across bins.
    pub fn overall_mean(&self) -> Option<f64> {
        let mut acc = Welford::new();
        for b in &self.bins {
            acc.merge(b);
        }
        acc.mean()
    }

    /// Folds another series into this one, bin by bin (exact Welford
    /// merge per bin). Both series must be binned on the same period —
    /// the sharded engine merges per-shard response series this way.
    ///
    /// # Panics
    /// Panics on mismatched periods.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(self.period, other.period, "period mismatch in merge");
        if other.bins.len() > self.bins.len() {
            self.bins.resize_with(other.bins.len(), Welford::new);
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_merge_equals_sequential() {
        use crate::time::{SimDuration, SimTime};
        let period = SimDuration::from_millis(500);
        let mut a = TimeSeries::new(period);
        let mut b = TimeSeries::new(period);
        let mut all = TimeSeries::new(period);
        for i in 0..200u64 {
            let at = SimTime::from_millis(i * 37);
            let x = (i as f64).cos() * 5.0;
            if i % 3 == 0 {
                a.record(at, x);
            } else {
                b.record(at, x);
            }
            all.record(at, x);
        }
        a.merge(&b);
        assert_eq!(a.len(), all.len());
        assert_eq!(a.counts(), all.counts());
        for (x, y) in a.means().iter().zip(all.means().iter()) {
            match (x, y) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((w.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_is_none() {
        let w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
            all.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap() - all.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - all.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(10.0, 100);
        for i in 0..100 {
            h.record(i as f64 * 10.0 + 5.0); // one per bucket
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 500.0).abs() <= 10.0, "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 980.0, "p99 {p99}");
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(1.0, 4);
        h.record(1_000.0);
        assert_eq!(*h.buckets().last().unwrap(), 1);
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn histogram_overflow_quantile_caps_at_range_top() {
        let mut h = Histogram::new(1.0, 4);
        h.record(1_000.0);
        // Everything is in the overflow bucket; the old code answered
        // `(buckets + 1) * width = 5`, outside the histogram's range.
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
    }

    #[test]
    fn histogram_extreme_quantiles_single_observation() {
        let mut h = Histogram::new(10.0, 4);
        h.record(15.0); // bucket 1: (10, 20]
                        // p0 clamps to the smallest non-empty target (first observation).
        assert_eq!(h.quantile(0.0), Some(20.0));
        assert_eq!(h.quantile(0.5), Some(20.0));
        assert_eq!(h.quantile(1.0), Some(20.0));
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(-1.0), Some(20.0));
        assert_eq!(h.quantile(2.0), Some(20.0));
    }

    #[test]
    fn histogram_single_bucket_histogram() {
        let mut h = Histogram::new(5.0, 1);
        h.record(0.0);
        h.record(2.5);
        assert_eq!(h.quantile(0.5), Some(5.0));
        h.record(100.0); // overflow
        assert_eq!(h.quantile(1.0), Some(5.0));
        assert_eq!(h.buckets(), &[2, 1]);
    }

    #[test]
    fn histogram_quantile_monotone_in_q() {
        let mut h = Histogram::new(1.0, 50);
        for i in 0..200 {
            h.record((i % 60) as f64);
        }
        let mut last = 0.0;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let v = h.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            assert!(v <= 50.0, "quantile({q}) = {v} beyond range top");
            last = v;
        }
    }

    #[test]
    fn welford_to_json_round_trips_fields() {
        let mut w = Welford::new();
        w.add(1.0);
        w.add(3.0);
        let j = w.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("mean").unwrap(), &Json::Float(2.0));
        assert_eq!(j.get("min").unwrap(), &Json::Float(1.0));
        assert_eq!(j.get("max").unwrap(), &Json::Float(3.0));
        // Empty accumulators serialize their optionals as null.
        assert_eq!(Welford::new().to_json().get("mean").unwrap(), &Json::Null);
    }

    #[test]
    fn welford_from_summary_round_trips_through_merge() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.add(x);
        }
        let rebuilt = Welford::from_summary(
            w.count(),
            w.mean().unwrap(),
            w.std_dev().unwrap(),
            w.min().unwrap(),
            w.max().unwrap(),
        );
        assert_eq!(rebuilt.count(), w.count());
        assert!((rebuilt.variance().unwrap() - w.variance().unwrap()).abs() < 1e-12);
        // Merging a rebuilt snapshot behaves like merging the original.
        let mut a = w.clone();
        let mut b = w.clone();
        a.merge(&w);
        b.merge(&rebuilt);
        assert_eq!(a.count(), b.count());
        assert!((a.mean().unwrap() - b.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - b.variance().unwrap()).abs() < 1e-9);
        // Degenerate summaries stay total: empty and single-sample.
        assert_eq!(Welford::from_summary(0, 0.0, 0.0, 0.0, 0.0).mean(), None);
        let one = Welford::from_summary(1, 3.0, 0.0, 3.0, 3.0);
        assert_eq!(one.mean(), Some(3.0));
        assert_eq!(one.variance(), None);
    }

    #[test]
    fn log_histogram_buckets_by_powers_of_two() {
        let mut h = LogHistogram::new();
        h.record(0.5); // (0.25, 0.5]  -> index 9
        h.record(1.0); // (0.5, 1.0]   -> index 10
        h.record(3.0); // (2, 4]       -> index 12
        h.record(0.0); // clamps to bucket 0
        h.record(-5.0); // clamps to bucket 0
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.buckets()[12], 1);
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.max(), Some(3.0));
        assert!((h.sum() - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_overflow_and_quantiles() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..99 {
            h.record(10.0);
        }
        h.record(5_000_000.0); // beyond 2^20: overflow bucket
        assert_eq!(*h.buckets().last().unwrap(), 1);
        // p50 is the upper edge of 10.0's bucket (2^4 = 16).
        assert_eq!(h.quantile(0.5), Some(16.0));
        // p100 falls in the overflow bucket, answered by the observed max.
        assert_eq!(h.quantile(1.0), Some(5_000_000.0));
        // Quantiles never exceed the observed max even in finite buckets.
        let mut tiny = LogHistogram::new();
        tiny.record(10.0);
        assert_eq!(tiny.quantile(0.5), Some(10.0));
    }

    #[test]
    fn log_histogram_merge_equals_sequential() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..200 {
            let x = ((i * 37) % 1000) as f64 * 0.37;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.buckets(), all.buckets());
        assert!((a.sum() - all.sum()).abs() < 1e-9);
        assert_eq!(a.quantile(0.9), all.quantile(0.9));
    }

    #[test]
    fn log_histogram_json_round_trips_for_merge() {
        let mut h = LogHistogram::new();
        for x in [0.002, 0.8, 13.0, 13.5, 900.0, 2_000_000.0] {
            h.record(x);
        }
        let j = h.to_json();
        // Quantiles are exported in the snapshot.
        assert!(j.get("p50").unwrap().as_f64().is_some());
        assert!(j.get("p99").unwrap().as_f64().is_some());
        let rebuilt = LogHistogram::from_json(&j).expect("snapshot parses");
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.buckets(), h.buckets());
        assert_eq!(rebuilt.min(), h.min());
        assert_eq!(rebuilt.max(), h.max());
        assert_eq!(rebuilt.quantile(0.5), h.quantile(0.5));
        // Empty histograms round-trip too.
        let empty = LogHistogram::from_json(&LogHistogram::new().to_json()).unwrap();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.quantile(0.5), None);
        // Corrupt snapshots are rejected, not mis-merged.
        assert!(LogHistogram::from_json(&Json::Null).is_none());
        let mut bad = h.to_json();
        if let Json::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "count" {
                    *v = Json::Int(999);
                }
            }
        }
        assert!(LogHistogram::from_json(&bad).is_none());
    }

    #[test]
    fn log_histogram_bucket_bounds_are_fixed_layout() {
        assert_eq!(LogHistogram::bucket_bound(0), Some(2f64.powi(-10)));
        assert_eq!(LogHistogram::bucket_bound(10), Some(1.0));
        assert_eq!(LogHistogram::bucket_bound(30), Some(2f64.powi(20)));
        assert_eq!(LogHistogram::bucket_bound(31), None);
        assert_eq!(LogHistogram::new().buckets().len(), 32);
    }

    #[test]
    fn time_series_bins_by_period() {
        let mut ts = TimeSeries::new(SimDuration::from_millis(500));
        ts.record(SimTime::from_millis(0), 1.0);
        ts.record(SimTime::from_millis(499), 3.0);
        ts.record(SimTime::from_millis(500), 10.0);
        ts.record(SimTime::from_millis(1_700), 7.0);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.counts(), vec![2, 1, 0, 1]);
        assert_eq!(ts.means()[0], Some(2.0));
        assert_eq!(ts.means()[1], Some(10.0));
        assert_eq!(ts.means()[2], None);
        assert!((ts.overall_mean().unwrap() - 5.25).abs() < 1e-12);
    }
}
