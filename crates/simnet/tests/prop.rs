//! Property tests for the simulation kernel, driven by seeded [`DetRng`]
//! loops (the hermetic-build substitute for proptest): each property runs
//! over 200 random cases from a fixed seed, so failures reproduce exactly.

use qa_simnet::stats::Welford;
use qa_simnet::{DetRng, EventQueue, ScheduledEvent, SimDuration, SimTime, Zipf};
use std::collections::BinaryHeap;

const CASES: usize = 200;

/// Events pop in non-decreasing time order with FIFO ties, regardless of
/// insertion order.
#[test]
fn event_queue_is_stably_ordered() {
    let mut rng = DetRng::seed_from_u64(0x51B1_0001);
    for case in 0..CASES {
        let times: Vec<u64> = (0..rng.index(200)).map(|_| rng.int_in(0, 999)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some(ev) = q.pop() {
            let (t, i) = ev.payload;
            if let Some((lt, li)) = last {
                assert!(lt <= t, "case {case}: time order violated");
                if lt == t {
                    assert!(li < i, "case {case}: FIFO tie-break violated");
                }
            }
            last = Some((t, i));
        }
    }
}

/// A trivially-correct reference future-event list: a `BinaryHeap` over
/// the exported (reversed-`Ord`) `ScheduledEvent`, exactly the store the
/// calendar queue replaced.
struct HeapQueue {
    heap: BinaryHeap<ScheduledEvent<u32>>,
    now: SimTime,
    next_seq: u64,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, payload: u32) {
        assert!(at >= self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            payload,
        });
    }

    fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some((ev.time, ev.seq, ev.payload))
    }
}

/// The calendar queue and the reference heap, driven through identical
/// schedule/pop interleavings (bursts of same-time events, mixed nearby
/// offsets, and rare far-future jumps that force ring and slot-width
/// growth), pop identical `(time, seq, payload)` streams.
#[test]
fn calendar_queue_matches_reference_heap() {
    let mut rng = DetRng::seed_from_u64(0x51B1_0006);
    for case in 0..CASES {
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut heap = HeapQueue::new();
        let ops = 1 + rng.index(300);
        let mut payload = 0u32;
        for _ in 0..ops {
            let roll = rng.index(100);
            if roll < 60 {
                // Schedule 1–4 events; offset class picked per event.
                for _ in 0..1 + rng.index(4) {
                    let off = match rng.index(10) {
                        0..=3 => SimDuration::ZERO, // same-time burst
                        4..=7 => SimDuration::from_micros(rng.int_in(1, 2_000)),
                        8 => SimDuration::from_millis(rng.int_in(1, 800)),
                        _ => SimDuration::from_secs(rng.int_in(1, 90)), // far future
                    };
                    let at = cal.now() + off;
                    cal.schedule(at, payload);
                    heap.schedule(at, payload);
                    payload += 1;
                }
            } else {
                assert_eq!(
                    cal.peek_time(),
                    heap.heap.peek().map(|e| e.time),
                    "case {case}: peek diverged"
                );
                let got = cal.pop().map(|e| (e.time, e.seq, e.payload));
                assert_eq!(got, heap.pop(), "case {case}: pop diverged");
            }
            assert_eq!(cal.len(), heap.heap.len(), "case {case}: len diverged");
        }
        // Drain both: the tails must agree event for event.
        loop {
            let got = cal.pop().map(|e| (e.time, e.seq, e.payload));
            let want = heap.pop();
            assert_eq!(got, want, "case {case}: drain diverged");
            if got.is_none() {
                break;
            }
        }
    }
}

/// The sharded engine's event store — one [`EventQueue`] per shard,
/// merged by `(time, global sequence)` — pops the exact sequence of the
/// single-queue oracle, for any interleaved schedule and any shard
/// assignment.
///
/// Per-shard `seq` counters are *not* globally comparable (two shards
/// both start at 0), so the merge must order ties by a global sequence
/// carried in the payload; [`EventQueue::peek`] exposes the head payload
/// without popping, which is what makes that merge possible.
#[test]
fn sharded_multi_queue_merge_matches_single_heap_oracle() {
    let mut rng = DetRng::seed_from_u64(0x51B1_000A);
    for case in 0..CASES {
        let shards = 2 + rng.index(5);
        let mut queues: Vec<EventQueue<u64>> = (0..shards).map(|_| EventQueue::new()).collect();
        let mut oracle: BinaryHeap<ScheduledEvent<u64>> = BinaryHeap::new();
        let mut now = SimTime::ZERO;
        let mut global_seq = 0u64;
        let ops = 1 + rng.index(300);
        for _ in 0..ops {
            if rng.index(100) < 60 {
                for _ in 0..1 + rng.index(4) {
                    let off = match rng.index(10) {
                        0..=4 => SimDuration::ZERO, // same-time cross-shard burst
                        5..=8 => SimDuration::from_micros(rng.int_in(1, 2_000)),
                        _ => SimDuration::from_millis(rng.int_in(1, 800)),
                    };
                    let at = now + off;
                    queues[rng.index(shards)].schedule(at, global_seq);
                    oracle.push(ScheduledEvent {
                        time: at,
                        seq: global_seq,
                        payload: global_seq,
                    });
                    global_seq += 1;
                }
            } else {
                // Merged pop: the queue whose head minimizes
                // (time, global seq). The local `seq` is deliberately
                // ignored — it is only unique within one queue.
                let head = (0..shards)
                    .filter_map(|s| {
                        let ev = queues[s].peek()?;
                        Some(((ev.time, ev.payload), s))
                    })
                    .min()
                    .map(|(_, s)| s);
                let got = head.and_then(|s| queues[s].pop()).map(|e| {
                    now = e.time;
                    (e.time, e.payload)
                });
                let want = oracle.pop().map(|e| (e.time, e.payload));
                assert_eq!(got, want, "case {case}: merged pop diverged");
            }
        }
        // Drain the merge: the tail must agree event for event.
        loop {
            let head = (0..shards)
                .filter_map(|s| {
                    let ev = queues[s].peek()?;
                    Some(((ev.time, ev.payload), s))
                })
                .min()
                .map(|(_, s)| s);
            let got = head
                .and_then(|s| queues[s].pop())
                .map(|e| (e.time, e.payload));
            let want = oracle.pop().map(|e| (e.time, e.payload));
            assert_eq!(got, want, "case {case}: merged drain diverged");
            if got.is_none() {
                break;
            }
        }
    }
}

/// Parallel Welford merge equals sequential accumulation.
#[test]
fn welford_merge_matches_sequential() {
    let mut rng = DetRng::seed_from_u64(0x51B1_0002);
    for case in 0..CASES {
        let xs: Vec<f64> = (0..1 + rng.index(99))
            .map(|_| rng.float_in(-1e3, 1e3))
            .collect();
        let split = rng.index(100).min(xs.len());
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] {
            left.add(x);
        }
        for &x in &xs[split..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count(), "case {case}");
        let (a, b) = (left.mean().unwrap(), all.mean().unwrap());
        assert!(
            (a - b).abs() < 1e-9 * (1.0 + b.abs()),
            "case {case}: {a} vs {b}"
        );
        if xs.len() > 1 {
            let (va, vb) = (left.variance().unwrap(), all.variance().unwrap());
            assert!(
                (va - vb).abs() < 1e-6 * (1.0 + vb.abs()),
                "case {case}: {va} vs {vb}"
            );
        }
    }
}

/// Zipf PMFs are normalized and monotone for any support/exponent.
#[test]
fn zipf_pmf_normalized_and_monotone() {
    let mut rng = DetRng::seed_from_u64(0x51B1_0003);
    for case in 0..CASES {
        let n = 1 + rng.index(199);
        let a = rng.float_in(0.0, 3.0);
        let z = Zipf::new(n, a);
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case} (n={n}, a={a})");
        for k in 1..n {
            assert!(
                z.pmf(k) >= z.pmf(k + 1) - 1e-12,
                "case {case} (n={n}, a={a})"
            );
        }
    }
}

/// Derived RNG streams are reproducible and label-sensitive.
#[test]
fn rng_derivation_properties() {
    let mut meta = DetRng::seed_from_u64(0x51B1_0004);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let mut p1 = DetRng::seed_from_u64(seed);
        let mut p2 = DetRng::seed_from_u64(seed);
        let mut a = p1.derive("x");
        let mut b = p2.derive("x");
        for _ in 0..8 {
            assert_eq!(a.int_in(0, u64::MAX - 1), b.int_in(0, u64::MAX - 1));
        }
        let mut p3 = DetRng::seed_from_u64(seed);
        let mut c = p3.derive("y");
        // Extremely unlikely to collide on the first draw.
        let _ = c.int_in(0, u64::MAX - 1);
    }
}

/// sample_indices yields distinct, in-range indices.
#[test]
fn sample_indices_distinct() {
    let mut meta = DetRng::seed_from_u64(0x51B1_0005);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let n = 1 + meta.index(99);
        let k = (n * meta.index(100) / 100).min(n);
        let mut rng = DetRng::seed_from_u64(seed);
        let s = rng.sample_indices(n, k);
        assert_eq!(s.len(), k, "case {case}");
        let mut u = s.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), k, "case {case}");
        assert!(s.iter().all(|&i| i < n), "case {case}");
    }
}
