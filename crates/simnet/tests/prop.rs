//! Property tests for the simulation kernel.

use proptest::prelude::*;
use qa_simnet::stats::Welford;
use qa_simnet::{DetRng, EventQueue, SimTime, Zipf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Events pop in non-decreasing time order with FIFO ties, regardless
    /// of insertion order.
    #[test]
    fn event_queue_is_stably_ordered(times in proptest::collection::vec(0u64..1_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some(ev) = q.pop() {
            let (t, i) = ev.payload;
            if let Some((lt, li)) = last {
                prop_assert!(lt <= t, "time order violated");
                if lt == t {
                    prop_assert!(li < i, "FIFO tie-break violated");
                }
            }
            last = Some((t, i));
        }
    }

    /// Parallel Welford merge equals sequential accumulation.
    #[test]
    fn welford_merge_matches_sequential(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] {
            left.add(x);
        }
        for &x in &xs[split..] {
            right.add(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        let (a, b) = (left.mean().unwrap(), all.mean().unwrap());
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        if xs.len() > 1 {
            let (va, vb) = (left.variance().unwrap(), all.variance().unwrap());
            prop_assert!((va - vb).abs() < 1e-6 * (1.0 + vb.abs()), "{va} vs {vb}");
        }
    }

    /// Zipf PMFs are normalized and monotone for any support/exponent.
    #[test]
    fn zipf_pmf_normalized_and_monotone(n in 1usize..200, a in 0.0f64..3.0) {
        let z = Zipf::new(n, a);
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k) >= z.pmf(k + 1) - 1e-12);
        }
    }

    /// Derived RNG streams are reproducible and label-sensitive.
    #[test]
    fn rng_derivation_properties(seed in any::<u64>()) {
        let mut p1 = DetRng::seed_from_u64(seed);
        let mut p2 = DetRng::seed_from_u64(seed);
        let mut a = p1.derive("x");
        let mut b = p2.derive("x");
        for _ in 0..8 {
            prop_assert_eq!(a.int_in(0, u64::MAX - 1), b.int_in(0, u64::MAX - 1));
        }
        let mut p3 = DetRng::seed_from_u64(seed);
        let mut c = p3.derive("y");
        // Extremely unlikely to collide on the first draw.
        let _ = c.int_in(0, u64::MAX - 1);
    }

    /// sample_indices yields distinct, in-range indices.
    #[test]
    fn sample_indices_distinct(seed in any::<u64>(), n in 1usize..100, frac in 0usize..100) {
        let k = (n * frac / 100).min(n);
        let mut rng = DetRng::seed_from_u64(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k);
        let mut u = s.clone();
        u.sort_unstable();
        u.dedup();
        prop_assert_eq!(u.len(), k);
        prop_assert!(s.iter().all(|&i| i < n));
    }
}
