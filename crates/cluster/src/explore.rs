//! Model-checking harness for the cluster driver protocol.
//!
//! [`run_schedule`] executes one deterministic episode of the allocation
//! protocol — a step-driven re-statement of [`crate::driver::run_workload`]'s
//! per-query state machine (poll → collect under a deadline → assign →
//! execute → crash re-entry with a retry budget) — against the
//! [`SimTransport`] virtual network, with **every** nondeterministic
//! decision (which message is delivered, what is dropped, when a node
//! crashes, when a collection deadline fires, when the driver harvests a
//! reply) resolved by one shared [`Schedule`]. After the episode, four
//! machine-checked invariants audit the final state:
//!
//! 1. **conservation** — every query ends exactly once (completed or
//!    unserved, totals match the workload), and each completed query's
//!    committed `(query, generation)` appears exactly once in its
//!    assignee's execution log;
//! 2. **double assignment** — across crash re-entry, no
//!    `(query, generation)` pair is ever executed twice, on any node or
//!    across nodes (re-allocation must bump the generation);
//! 3. **price consistency** — after recovering crashed nodes and
//!    reconnecting, each node's dumped price vector is finite, positive,
//!    stable across two consecutive dumps, and byte-identical to the
//!    node's internal market state;
//! 4. **termination** — the episode finishes within the action budget
//!    (the virtual watchdog): no schedule may wedge the driver.
//!
//! [`explore_random`] sweeps seeded-random schedules (each reproducible
//! from its printed seed via [`run_seed`]); [`explore_systematic`] runs
//! the bounded DFS enumeration from [`SystematicExplorer`]. A failing
//! schedule's seed or choice trail replays the identical interleaving.

use crate::node::{ExecReply, OfferReply};
use crate::simtransport::{encode_sql, NetStats, SharedSchedule, SimTransport};
use crate::transport::Transport;
use qa_simnet::sched::{ChoiceTrail, RandomSchedule, ReplaySchedule, Schedule, SystematicExplorer};
use qa_simnet::telemetry::{Telemetry, TelemetryEvent};
use qa_workload::ClassId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::{channel, Receiver, TryRecvError};

/// Which allocation protocol the harness drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMechanism {
    /// Estimate poll, minimum `exec_ms` wins (the paper's baseline).
    Greedy,
    /// Call-for-offers, minimum `completion_ms` among offers wins (QA-NT).
    QaNt,
}

/// Shape of one explored episode. Small on purpose: model checking pays
/// for breadth in schedules, not size of any single run.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Fleet size.
    pub num_nodes: usize,
    /// Query classes (query `i` has class `i % num_classes`).
    pub num_classes: usize,
    /// Queries in the episode.
    pub num_queries: usize,
    /// Per-class supply units restored each period.
    pub supply_per_period: u32,
    /// Re-allocation attempts before a query is declared unserved.
    pub max_retries: u32,
    /// Schedule-chosen crash injections available to the adversary.
    pub crash_budget: u32,
    /// A period tick is broadcast before every `tick_every`-th issue.
    pub tick_every: usize,
    /// Driver-action budget — the virtual watchdog behind invariant 4.
    pub max_actions: u64,
    /// The protocol under test.
    pub mechanism: ExploreMechanism,
    /// Harness self-test: arm the model nodes' deliberate double-commit
    /// bug; the invariant checker must flag every such run.
    pub inject_double_exec: bool,
}

impl ExploreConfig {
    /// The default episode: 3 nodes × 2 classes × 4 queries with one
    /// adversarial crash — small enough that systematic enumeration
    /// covers real depth, rich enough to exercise re-entry.
    pub fn small() -> ExploreConfig {
        ExploreConfig {
            num_nodes: 3,
            num_classes: 2,
            num_queries: 4,
            supply_per_period: 2,
            max_retries: 3,
            crash_budget: 1,
            tick_every: 3,
            max_actions: 10_000,
            mechanism: ExploreMechanism::QaNt,
            inject_double_exec: false,
        }
    }
}

/// One failed invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: &'static str,
    /// What was observed.
    pub detail: String,
}

/// Everything observed under one schedule.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The schedule's self-description (`random seed N`, `systematic #K`).
    pub description: String,
    /// Full choice trail (replayable via [`run_trail`]).
    pub trail: ChoiceTrail,
    /// Queries that completed.
    pub completed: u64,
    /// Queries declared unserved.
    pub unserved: u64,
    /// Driver actions taken.
    pub actions: u64,
    /// Virtual-network counters (deliveries, drops, crash steps).
    pub net: NetStats,
    /// Invariant violations (empty = the schedule passed).
    pub violations: Vec<Violation>,
}

impl ScheduleOutcome {
    /// `true` iff every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Where one query currently is in the protocol.
enum QState {
    /// Not yet issued.
    Idle,
    /// Offers/estimates requested; waiting for the deadline action.
    Collecting(CollectRx),
    /// Assigned; waiting for the execute reply (or its loss).
    Executing {
        node: usize,
        generation: u32,
        rx: Receiver<ExecReply>,
        /// Reply pulled during enablement checks, not yet harvested.
        buffered: Option<Result<ExecReply, ()>>,
    },
    /// Finished: `Some((node, generation))` completed, `None` unserved.
    Done(Option<(usize, u32)>),
}

enum CollectRx {
    Offers(Receiver<OfferReply>),
    Estimates(Receiver<crate::node::EstimateReply>),
}

struct QueryRun {
    class: usize,
    state: QState,
    retries: u32,
    /// Execute attempts so far — the next assignment's generation.
    attempts: u32,
}

/// A driver action whose turn order the schedule controls.
enum Action {
    /// Let the virtual network take one step.
    Net,
    /// Issue the next query's poll round.
    Issue,
    /// Fire the collection deadline for query `i`.
    Deadline(usize),
    /// Consume query `i`'s buffered execute result.
    Harvest(usize),
}

struct Driver<'a> {
    cfg: &'a ExploreConfig,
    transport: &'a SimTransport,
    shared: &'a SharedSchedule,
    telemetry: &'a Telemetry,
    queries: Vec<QueryRun>,
    next_issue: usize,
    /// Nodes the driver has written off (send failed = crash observed).
    dead: Vec<bool>,
}

impl Driver<'_> {
    fn live_nodes(&self) -> Vec<usize> {
        (0..self.cfg.num_nodes).filter(|&n| !self.dead[n]).collect()
    }

    /// Broadcasts the poll round for query `i` (offers under QA-NT,
    /// estimates under Greedy). Zero reachable nodes ⇒ unserved.
    fn issue_poll(&mut self, i: usize) {
        let class = ClassId(self.queries[i].class as u32);
        let sql = encode_sql(i as u64, self.queries[i].attempts, class);
        let mut sent = 0usize;
        match self.cfg.mechanism {
            ExploreMechanism::QaNt => {
                let (tx, rx) = channel();
                for node in self.live_nodes() {
                    match self
                        .transport
                        .call_for_offers(node, class, &sql, tx.clone())
                    {
                        Ok(()) => sent += 1,
                        Err(_) => self.dead[node] = true,
                    }
                }
                self.queries[i].state = QState::Collecting(CollectRx::Offers(rx));
            }
            ExploreMechanism::Greedy => {
                let (tx, rx) = channel();
                for node in self.live_nodes() {
                    match self.transport.estimate(node, &sql, tx.clone()) {
                        Ok(()) => sent += 1,
                        Err(_) => self.dead[node] = true,
                    }
                }
                self.queries[i].state = QState::Collecting(CollectRx::Estimates(rx));
            }
        }
        if sent == 0 {
            self.finish_unserved(i);
        }
    }

    /// The deadline action: drain whatever replies arrived, pick the
    /// winner deterministically (min cost, ties to the lowest node), and
    /// dispatch the execute — or retry/give up when nobody bid.
    fn deadline(&mut self, i: usize) {
        let winner: Option<usize> = match &self.queries[i].state {
            QState::Collecting(CollectRx::Offers(rx)) => {
                let mut best: Option<(f64, usize)> = None;
                while let Ok(offer) = rx.try_recv() {
                    if !offer.offered {
                        continue;
                    }
                    let key = (offer.completion_ms, offer.node);
                    if best.is_none_or(|b| (key.0, key.1) < b) {
                        best = Some(key);
                    }
                }
                best.map(|(_, node)| node)
            }
            QState::Collecting(CollectRx::Estimates(rx)) => {
                let mut best: Option<(f64, usize)> = None;
                while let Ok(est) = rx.try_recv() {
                    let key = (est.exec_ms, est.node);
                    if best.is_none_or(|b| (key.0, key.1) < b) {
                        best = Some(key);
                    }
                }
                best.map(|(_, node)| node)
            }
            _ => unreachable!("deadline on a non-collecting query"),
        };
        match winner {
            Some(node) => self.dispatch_execute(i, node),
            None => self.retry(i),
        }
    }

    /// Sends the execute for query `i` to `node` under a fresh
    /// generation. A failed send is an observed crash: mark the node
    /// dead and retry.
    fn dispatch_execute(&mut self, i: usize, node: usize) {
        let generation = self.queries[i].attempts;
        self.queries[i].attempts += 1;
        let class = ClassId(self.queries[i].class as u32);
        let sql = encode_sql(i as u64, generation, class);
        let (tx, rx) = channel();
        match self.transport.execute(node, class, &sql, tx) {
            Ok(()) => {
                let retries = self.queries[i].retries;
                self.telemetry.emit(|| TelemetryEvent::QueryAssigned {
                    query: i as u64,
                    class: class.0,
                    node: node as u32,
                    retries,
                });
                self.queries[i].state = QState::Executing {
                    node,
                    generation,
                    rx,
                    buffered: None,
                };
            }
            Err(_) => {
                self.dead[node] = true;
                self.retry(i);
            }
        }
    }

    /// One more attempt if the budget allows, else unserved.
    fn retry(&mut self, i: usize) {
        self.queries[i].retries += 1;
        if self.queries[i].retries > self.cfg.max_retries {
            self.finish_unserved(i);
        } else {
            self.issue_poll(i);
        }
    }

    fn finish_unserved(&mut self, i: usize) {
        let (class, retries) = (self.queries[i].class as u32, self.queries[i].retries);
        self.telemetry.emit(|| TelemetryEvent::QueryUnserved {
            query: i as u64,
            class,
            retries,
        });
        self.queries[i].state = QState::Done(None);
    }

    /// The harvest action: act on the buffered execute result. A lost
    /// reply (disconnected receiver) is indistinguishable from a crashed
    /// assignee, so the driver re-enters allocation — generation bumped —
    /// exactly like [`crate::driver::run_workload`].
    fn harvest(&mut self, i: usize) {
        let QState::Executing {
            node,
            generation,
            buffered,
            ..
        } = &mut self.queries[i].state
        else {
            unreachable!("harvest on a non-executing query");
        };
        let (node, generation) = (*node, *generation);
        match buffered.take().expect("harvest enabled without a result") {
            Ok(reply) => {
                let class = self.queries[i].class as u32;
                self.telemetry.emit(|| TelemetryEvent::QueryCompleted {
                    query: i as u64,
                    class,
                    node: node as u32,
                    response_ms: reply.exec_ms,
                });
                self.queries[i].state = QState::Done(Some((node, generation)));
            }
            Err(()) => {
                self.dead[node] = true;
                self.retry(i);
            }
        }
    }

    /// Builds the enabled-action list in a fixed deterministic order.
    /// Executing queries get their receiver polled here; a ready (or
    /// dead) reply is buffered so the harvest stays schedulable without
    /// consuming it twice.
    fn enabled_actions(&mut self) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.transport.pending_messages() > 0 {
            actions.push(Action::Net);
        }
        if self.next_issue < self.cfg.num_queries {
            actions.push(Action::Issue);
        }
        for i in 0..self.queries.len() {
            match &mut self.queries[i].state {
                QState::Collecting(_) => actions.push(Action::Deadline(i)),
                QState::Executing { rx, buffered, .. } => {
                    if buffered.is_none() {
                        match rx.try_recv() {
                            Ok(reply) => *buffered = Some(Ok(reply)),
                            Err(TryRecvError::Disconnected) => *buffered = Some(Err(())),
                            Err(TryRecvError::Empty) => {}
                        }
                    }
                    if buffered.is_some() {
                        actions.push(Action::Harvest(i));
                    }
                }
                _ => {}
            }
        }
        actions
    }
}

/// Runs one episode under `schedule` and audits the invariants. The
/// schedule is consumed; its full trail comes back in the outcome.
pub fn run_schedule(
    cfg: &ExploreConfig,
    schedule: Box<dyn Schedule + Send>,
    telemetry: &Telemetry,
    schedule_id: u64,
    mode: &str,
) -> ScheduleOutcome {
    let shared = SharedSchedule::new(schedule);
    let transport = SimTransport::new(
        cfg.num_nodes,
        cfg.num_classes,
        cfg.supply_per_period,
        cfg.crash_budget,
        shared.clone(),
        telemetry.clone(),
    );
    if cfg.inject_double_exec {
        transport.inject_double_exec();
    }
    telemetry.emit(|| TelemetryEvent::ScheduleStarted {
        schedule: schedule_id,
        mode: mode.to_string(),
    });

    let mut driver = Driver {
        cfg,
        transport: &transport,
        shared: &shared,
        telemetry,
        queries: (0..cfg.num_queries)
            .map(|i| QueryRun {
                class: i % cfg.num_classes,
                state: QState::Idle,
                retries: 0,
                attempts: 0,
            })
            .collect(),
        next_issue: 0,
        dead: vec![false; cfg.num_nodes],
    };

    let mut actions = 0u64;
    loop {
        let all_done = driver
            .queries
            .iter()
            .all(|q| matches!(q.state, QState::Done(_)));
        if all_done || actions >= cfg.max_actions {
            break;
        }
        let enabled = driver.enabled_actions();
        if enabled.is_empty() {
            // Unreachable by construction (a non-done query always has a
            // deadline, a harvest, or an in-flight message) — but a model
            // checker must never trust "unreachable": fall through and
            // let the termination invariant report the wedge.
            break;
        }
        actions += 1;
        let pick = driver.shared.choose("action", enabled.len());
        match enabled[pick] {
            Action::Net => {
                transport.step();
            }
            Action::Issue => {
                let i = driver.next_issue;
                driver.next_issue += 1;
                if i > 0 && i.is_multiple_of(cfg.tick_every) {
                    for node in driver.live_nodes() {
                        if transport.period_tick(node).is_err() {
                            driver.dead[node] = true;
                        }
                    }
                }
                driver.issue_poll(i);
            }
            Action::Deadline(i) => driver.deadline(i),
            Action::Harvest(i) => driver.harvest(i),
        }
    }

    let mut violations = check_invariants(cfg, &driver, &transport, actions);
    for v in &violations {
        let (invariant, detail) = (v.invariant.to_string(), v.detail.clone());
        telemetry.emit(|| TelemetryEvent::InvariantViolated { invariant, detail });
    }
    // Attach the trail to the first violation's detail so a printed
    // failure is self-contained.
    let trail_string = shared.trail_string();
    if let Some(first) = violations.first_mut() {
        first.detail = format!("{} [trail {}]", first.detail, trail_string);
    }

    let completed = driver
        .queries
        .iter()
        .filter(|q| matches!(q.state, QState::Done(Some(_))))
        .count() as u64;
    let unserved = driver
        .queries
        .iter()
        .filter(|q| matches!(q.state, QState::Done(None)))
        .count() as u64;
    let net = transport.stats();
    let description = shared.describe();
    drop(driver);
    drop(transport);
    let trail = shared.into_inner().trail().clone();
    ScheduleOutcome {
        description,
        trail,
        completed,
        unserved,
        actions,
        net,
        violations,
    }
}

/// The four invariant audits. Termination first: a wedged episode's
/// partial state would make the others report noise, so they only run on
/// episodes that finished.
fn check_invariants(
    cfg: &ExploreConfig,
    driver: &Driver<'_>,
    transport: &SimTransport,
    actions: u64,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // 4. Termination under the (virtual) watchdog.
    let unfinished = driver
        .queries
        .iter()
        .filter(|q| !matches!(q.state, QState::Done(_)))
        .count();
    if unfinished > 0 {
        violations.push(Violation {
            invariant: "termination",
            detail: format!(
                "{unfinished}/{} queries unfinished after {actions} driver actions \
                 (budget {})",
                cfg.num_queries, cfg.max_actions
            ),
        });
        return violations;
    }

    // Quiesce before auditing: recover crashed nodes (reconnect) and
    // deliver whatever the schedule left in flight — in-flight ticks and
    // offers legitimately mutate prices, so the state snapshot must come
    // after the network settles.
    transport.recover_all();
    transport.drain();
    let nodes = transport.node_states();

    // 1. Conservation: one outcome per query, totals match, and every
    // committed execution is present exactly once on its assignee.
    let mut done = 0usize;
    for (i, q) in driver.queries.iter().enumerate() {
        let QState::Done(outcome) = &q.state else {
            continue;
        };
        done += 1;
        if let Some((node, generation)) = outcome {
            let hits = nodes[*node]
                .executions
                .iter()
                .filter(|e| e.query == i as u64 && e.generation == *generation)
                .count();
            if hits != 1 {
                violations.push(Violation {
                    invariant: "conservation",
                    detail: format!(
                        "query {i} committed on node {node} gen {generation} \
                         appears {hits}× in its execution log (want exactly 1)"
                    ),
                });
            }
        }
    }
    if done != cfg.num_queries {
        violations.push(Violation {
            invariant: "conservation",
            detail: format!("{done} outcomes for {} queries", cfg.num_queries),
        });
    }

    // 2. No double assignment across crash re-entry: a (query, generation)
    // pair executes at most once, fleet-wide.
    let mut seen: BTreeMap<(u64, u32), Vec<usize>> = BTreeMap::new();
    for n in &nodes {
        for e in &n.executions {
            seen.entry((e.query, e.generation)).or_default().push(n.id);
        }
    }
    for ((query, generation), on_nodes) in &seen {
        if on_nodes.len() > 1 {
            violations.push(Violation {
                invariant: "double_assignment",
                detail: format!(
                    "query {query} gen {generation} executed {}× (nodes {on_nodes:?})",
                    on_nodes.len()
                ),
            });
        }
    }

    // 3. Price consistency after reconnect: the dumped vector must be
    // sane, stable across dumps, and identical to the node's internal
    // state (nodes were recovered and the network drained above).
    let dump = |node: usize| -> Option<Vec<f64>> {
        let (tx, rx) = channel();
        transport.dump_prices(node, tx).ok()?;
        transport.drain();
        rx.try_recv().ok().map(|p| p.prices)
    };
    for n in &nodes {
        let (first, second) = (dump(n.id), dump(n.id));
        match (first, second) {
            (Some(a), Some(b)) => {
                if a != b {
                    violations.push(Violation {
                        invariant: "price_consistency",
                        detail: format!(
                            "node {} dumps differ across reconnect: {a:?} vs {b:?}",
                            n.id
                        ),
                    });
                } else if a != n.prices {
                    violations.push(Violation {
                        invariant: "price_consistency",
                        detail: format!(
                            "node {} dumped {a:?} but market state holds {:?}",
                            n.id, n.prices
                        ),
                    });
                } else if a.iter().any(|p| !p.is_finite() || *p <= 0.0) {
                    violations.push(Violation {
                        invariant: "price_consistency",
                        detail: format!("node {} price vector not finite-positive: {a:?}", n.id),
                    });
                }
            }
            _ => violations.push(Violation {
                invariant: "price_consistency",
                detail: format!("node {} did not answer the post-recovery price dump", n.id),
            }),
        }
    }

    violations
}

/// Replays a seeded-random schedule — the reproduction path for a printed
/// failure seed.
pub fn run_seed(cfg: &ExploreConfig, seed: u64) -> ScheduleOutcome {
    run_schedule(
        cfg,
        Box::new(RandomSchedule::new(seed)),
        &Telemetry::disabled(),
        seed,
        "random",
    )
}

/// Replays a recorded choice trail.
pub fn run_trail(cfg: &ExploreConfig, indices: Vec<u32>, label: &str) -> ScheduleOutcome {
    run_schedule(
        cfg,
        Box::new(ReplaySchedule::new(indices, label)),
        &Telemetry::disabled(),
        0,
        "replay",
    )
}

/// A schedule that failed, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FailedSchedule {
    /// The schedule's identity (`random seed N`, `systematic #K …`).
    pub description: String,
    /// Compact `point:chosen/arity` trail.
    pub trail: String,
    /// The violations it triggered.
    pub violations: Vec<Violation>,
}

/// Aggregates over an exploration sweep.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Schedules run.
    pub schedules: u64,
    /// Sum of completed queries.
    pub completed: u64,
    /// Sum of unserved queries.
    pub unserved: u64,
    /// Total requests dropped by the adversary.
    pub dropped_requests: u64,
    /// Total replies dropped by the adversary.
    pub dropped_replies: u64,
    /// Total crashes injected.
    pub crashes: u64,
    /// Distinct network-step indices at which a crash was injected —
    /// the crash-point coverage measure.
    pub crash_points: BTreeSet<u64>,
    /// Schedules that violated an invariant (capped at
    /// [`ExploreReport::MAX_FAILURES`]; `schedules_failed` keeps the
    /// true count).
    pub failures: Vec<FailedSchedule>,
    /// True number of failing schedules.
    pub schedules_failed: u64,
    /// `true` when a systematic sweep enumerated its whole bounded tree
    /// (as opposed to hitting the schedule budget).
    pub exhausted: bool,
}

impl ExploreReport {
    /// Failing schedules kept verbatim in [`ExploreReport::failures`].
    pub const MAX_FAILURES: usize = 8;

    fn absorb(&mut self, outcome: &ScheduleOutcome) {
        self.schedules += 1;
        self.completed += outcome.completed;
        self.unserved += outcome.unserved;
        self.dropped_requests += outcome.net.dropped_requests;
        self.dropped_replies += outcome.net.dropped_replies;
        self.crashes += outcome.net.crash_steps.len() as u64;
        self.crash_points.extend(outcome.net.crash_steps.iter());
        if !outcome.passed() {
            self.schedules_failed += 1;
            if self.failures.len() < Self::MAX_FAILURES {
                self.failures.push(FailedSchedule {
                    description: outcome.description.clone(),
                    trail: outcome.trail.to_string(),
                    violations: outcome.violations.clone(),
                });
            }
        }
    }

    /// `true` iff no schedule violated an invariant.
    pub fn passed(&self) -> bool {
        self.schedules_failed == 0
    }
}

/// Sweeps `count` seeded-random schedules starting at `base_seed`.
pub fn explore_random(cfg: &ExploreConfig, base_seed: u64, count: u64) -> ExploreReport {
    let mut report = ExploreReport::default();
    for i in 0..count {
        let outcome = run_seed(cfg, base_seed.wrapping_add(i));
        report.absorb(&outcome);
    }
    report
}

/// Bounded systematic enumeration: DFS over the first `depth_bound`
/// choice points, visiting at most `budget` schedules.
pub fn explore_systematic(cfg: &ExploreConfig, depth_bound: usize, budget: u64) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut explorer = SystematicExplorer::new(depth_bound, budget);
    while let Some(schedule) = explorer.begin() {
        let id = schedule.index();
        let outcome = run_schedule(
            cfg,
            Box::new(schedule),
            &Telemetry::disabled(),
            id,
            "systematic",
        );
        explorer.finish(&outcome.trail);
        report.absorb(&outcome);
    }
    report.exhausted = explorer.exhausted();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_schedule_completes_everything() {
        // All-zero choices: FIFO delivery, no drops, no crash.
        let cfg = ExploreConfig::small();
        let out = run_trail(&cfg, vec![], "benign");
        assert!(out.passed(), "{:?}", out.violations);
        assert_eq!(out.completed, cfg.num_queries as u64);
        assert_eq!(out.unserved, 0);
        assert!(out.net.crash_steps.is_empty());
    }

    #[test]
    fn seeded_runs_are_reproducible_and_seed_sensitive() {
        let cfg = ExploreConfig::small();
        let fingerprint = |seed: u64| {
            let o = run_seed(&cfg, seed);
            (
                o.completed,
                o.unserved,
                o.actions,
                o.net.clone(),
                o.trail.indices(),
                o.violations.clone(),
            )
        };
        assert_eq!(fingerprint(11), fingerprint(11), "same seed ⇒ same episode");
        let distinct: std::collections::BTreeSet<Vec<u32>> =
            (0..16).map(|s| fingerprint(s).4).collect();
        assert!(distinct.len() > 1, "seeds must vary the interleaving");
    }

    #[test]
    fn recorded_trail_replays_the_identical_episode() {
        let cfg = ExploreConfig::small();
        let original = run_seed(&cfg, 1234);
        let replayed = run_trail(&cfg, original.trail.indices(), "seed 1234");
        assert_eq!(replayed.completed, original.completed);
        assert_eq!(replayed.unserved, original.unserved);
        assert_eq!(replayed.actions, original.actions);
        assert_eq!(replayed.net, original.net);
        assert_eq!(replayed.trail.indices(), original.trail.indices());
    }

    #[test]
    fn random_sweep_holds_all_invariants_under_both_mechanisms() {
        for mechanism in [ExploreMechanism::QaNt, ExploreMechanism::Greedy] {
            let cfg = ExploreConfig {
                mechanism,
                ..ExploreConfig::small()
            };
            let report = explore_random(&cfg, 7, 150);
            assert!(
                report.passed(),
                "{mechanism:?}: {:#?}",
                report.failures.first()
            );
            assert_eq!(report.schedules, 150);
            assert!(
                report.crashes > 0,
                "{mechanism:?}: adversary never crashed a node"
            );
            assert!(
                report.dropped_requests + report.dropped_replies > 0,
                "{mechanism:?}: adversary never dropped anything"
            );
        }
    }

    #[test]
    fn systematic_sweep_explores_and_passes() {
        let cfg = ExploreConfig::small();
        let report = explore_systematic(&cfg, 6, 400);
        assert!(report.passed(), "{:#?}", report.failures.first());
        assert!(
            report.schedules >= 100,
            "only {} schedules",
            report.schedules
        );
        assert!(
            !report.crash_points.is_empty(),
            "systematic sweep must cover crash injection points"
        );
    }

    #[test]
    fn injected_double_commit_is_caught() {
        // The checker must detect the deliberately broken node — on the
        // *benign* schedule, so detection cannot depend on adversarial luck.
        let cfg = ExploreConfig {
            inject_double_exec: true,
            ..ExploreConfig::small()
        };
        let out = run_trail(&cfg, vec![], "self-test");
        assert!(
            out.violations
                .iter()
                .any(|v| v.invariant == "double_assignment" || v.invariant == "conservation"),
            "checker missed the double commit: {:?}",
            out.violations
        );
    }

    #[test]
    fn starved_action_budget_reports_termination() {
        let cfg = ExploreConfig {
            max_actions: 3,
            ..ExploreConfig::small()
        };
        let out = run_trail(&cfg, vec![], "starved");
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].invariant, "termination");
    }

    #[test]
    fn schedule_events_flow_through_telemetry() {
        let (telemetry, buffer) = Telemetry::buffered();
        let cfg = ExploreConfig::small();
        let out = run_schedule(
            &cfg,
            Box::new(RandomSchedule::new(99)),
            &telemetry,
            99,
            "random",
        );
        assert!(out.passed(), "{:?}", out.violations);
        let records = buffer.records();
        assert!(records
            .iter()
            .any(|r| matches!(&r.event, TelemetryEvent::ScheduleStarted { schedule: 99, mode } if mode == "random")));
        // Every record round-trips through the strict parser.
        for r in &records {
            let line = qa_simnet::json::ToJson::to_json(r).dump();
            qa_simnet::telemetry::TraceRecord::parse_line(&line).unwrap();
        }
    }
}
