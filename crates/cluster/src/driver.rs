//! The §5.2 experiment driver.
//!
//! Replays a uniform-inter-arrival workload of star queries against the
//! node fleet under either allocation mechanism, measuring per query:
//!
//! * **assignment time** — from issue until a node is chosen (the paper's
//!   "time required by Greedy and QA-NT to assign a query to a node"; both
//!   protocols wait for a reply from *all* capable nodes, so a busy slow
//!   node stretches this),
//! * **total time** — assignment plus execution ("time to assign + execute
//!   query").
//!
//! These are exactly Figure 7's two bars per mechanism.

use crate::node::{spawn_node, EstimateReply, ExecReply, NodeHandle, NodeMsg, OfferReply};
use crate::setup::ClusterSpec;
use crossbeam::channel::unbounded;
use qa_core::QantConfig;
use qa_simnet::{DetRng, SimDuration};
use qa_workload::ClassId;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which mechanism drives allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterMechanism {
    /// Greedy: poll execution estimates from every capable node, assign to
    /// the minimum unilaterally.
    Greedy,
    /// QA-NT: call-for-offers; servers offer while market supply lasts;
    /// rejected queries resubmit next period.
    QaNt,
}

impl std::fmt::Display for ClusterMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterMechanism::Greedy => write!(f, "Greedy"),
            ClusterMechanism::QaNt => write!(f, "QA-NT"),
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Master seed.
    pub seed: u64,
    /// Queries to issue (paper: 300).
    pub num_queries: usize,
    /// Mean inter-arrival time (paper: 300 ms and 400 ms; scale down for
    /// CI).
    pub mean_interarrival: Duration,
    /// QA-NT market period (paper: 500 ms; scale with the workload).
    pub period: Duration,
    /// Rows per base table (scale).
    pub rows_per_table: usize,
    /// The mechanism under test.
    pub mechanism: ClusterMechanism,
    /// Maximum QA-NT resubmissions before giving up on a query.
    pub max_retries: u32,
}

impl ClusterConfig {
    /// CI-scale defaults (~100× smaller than the paper's deployment).
    pub fn ci_scale(mechanism: ClusterMechanism, seed: u64) -> ClusterConfig {
        ClusterConfig {
            seed,
            num_queries: 40,
            mean_interarrival: Duration::from_millis(5),
            period: Duration::from_millis(40),
            rows_per_table: 80,
            mechanism,
            max_retries: 100,
        }
    }

    /// Paper-shaped run (time-scaled ~10×: 300 queries at 30/40 ms mean
    /// inter-arrival against ~100 ms-class queries — the paper's 300/400 ms
    /// against 1–14 s queries, preserving the ~3× offered-load ratio).
    pub fn paper_scale(mechanism: ClusterMechanism, seed: u64, mean_interarrival_ms: u64) -> ClusterConfig {
        ClusterConfig {
            seed,
            num_queries: 300,
            mean_interarrival: Duration::from_millis(mean_interarrival_ms),
            period: Duration::from_millis(100),
            rows_per_table: 50_000,
            mechanism,
            max_retries: 2_000,
        }
    }
}

/// Per-query measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Query index in issue order.
    pub query: usize,
    /// Its class.
    pub class: u32,
    /// The node that executed it, if any.
    pub node: Option<usize>,
    /// Time from issue to assignment decision (ms).
    pub assign_ms: f64,
    /// Time from issue to result (ms).
    pub total_ms: f64,
    /// QA-NT resubmissions needed.
    pub retries: u32,
    /// Error text if the query failed or was never assigned.
    pub error: Option<String>,
}

/// Aggregate experiment result (one Figure-7 bar pair).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Mechanism name.
    pub mechanism: String,
    /// Per-query outcomes.
    pub outcomes: Vec<QueryOutcome>,
    /// Mean assignment time over successful queries (ms).
    pub mean_assign_ms: f64,
    /// Mean total time over successful queries (ms).
    pub mean_total_ms: f64,
    /// Queries that never completed.
    pub failed: usize,
}

/// Runs one experiment: builds the fleet, replays the workload, tears the
/// fleet down, returns measurements.
pub fn run_experiment(spec: &ClusterSpec, config: &ClusterConfig) -> ExperimentResult {
    let qant_cfg = match config.mechanism {
        ClusterMechanism::QaNt => Some(QantConfig {
            period: SimDuration::from_millis(config.period.as_millis() as u64),
            // §5.1 deployment mode: restrict supply only once prices
            // inflate past 2× their initial level (renormalization is
            // incompatible with thresholds — see QantConfig docs).
            price_threshold: Some(2.0),
            renormalize_prices: false,
            ..QantConfig::default()
        }),
        ClusterMechanism::Greedy => None,
    };
    let nodes: Vec<NodeHandle> = (0..spec.num_nodes)
        .map(|n| spawn_node(spec, n, config.seed, qant_cfg))
        .collect();
    let senders: Vec<_> = nodes.iter().map(|n| n.sender.clone()).collect();

    // QA-NT period ticker.
    let stop = Arc::new(AtomicBool::new(false));
    let ticker = {
        let stop = Arc::clone(&stop);
        let senders = senders.clone();
        let period = config.period;
        let ticking = matches!(config.mechanism, ClusterMechanism::QaNt);
        std::thread::spawn(move || {
            while ticking && !stop.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                for s in &senders {
                    let _ = s.send(NodeMsg::PeriodTick);
                }
            }
        })
    };

    // Pre-generate the workload: (delay-from-previous, class, sql).
    let mut rng = DetRng::seed_from_u64(config.seed).derive("cluster-workload");
    let usable: Vec<&crate::setup::QueryClassSpec> = spec
        .classes
        .iter()
        .filter(|c| !spec.capable_nodes(c.id).is_empty())
        .collect();
    assert!(!usable.is_empty(), "no evaluable query class");
    let mean_ms = config.mean_interarrival.as_secs_f64() * 1e3;
    let workload: Vec<(Duration, ClassId, String)> = (0..config.num_queries)
        .map(|_| {
            let gap = Duration::from_secs_f64(rng.float_in(0.5 * mean_ms, 1.5 * mean_ms) / 1e3);
            let class = usable[rng.index(usable.len())];
            (gap, class.id, class.sample(&mut rng))
        })
        .collect();

    // Issue queries on schedule; each runs its protocol on its own thread.
    let (done_tx, done_rx) = unbounded::<QueryOutcome>();
    let mut issue_threads = Vec::new();
    for (i, (gap, class, sql)) in workload.into_iter().enumerate() {
        std::thread::sleep(gap);
        let senders = senders.clone();
        let capable = spec.capable_nodes(class);
        let done = done_tx.clone();
        let mechanism = config.mechanism;
        let period = config.period;
        let max_retries = config.max_retries;
        issue_threads.push(std::thread::spawn(move || {
            let outcome =
                run_one(i, class, sql, &senders, &capable, mechanism, period, max_retries);
            let _ = done.send(outcome);
        }));
    }
    drop(done_tx);

    let mut outcomes: Vec<QueryOutcome> = done_rx.iter().collect();
    for t in issue_threads {
        let _ = t.join();
    }
    outcomes.sort_by_key(|o| o.query);

    stop.store(true, Ordering::Relaxed);
    let _ = ticker.join();
    for n in nodes {
        n.shutdown();
    }

    let ok: Vec<&QueryOutcome> = outcomes.iter().filter(|o| o.error.is_none()).collect();
    let mean = |f: fn(&QueryOutcome) -> f64| {
        if ok.is_empty() {
            f64::NAN
        } else {
            ok.iter().map(|o| f(o)).sum::<f64>() / ok.len() as f64
        }
    };
    ExperimentResult {
        mechanism: config.mechanism.to_string(),
        mean_assign_ms: mean(|o| o.assign_ms),
        mean_total_ms: mean(|o| o.total_ms),
        failed: outcomes.len() - ok.len(),
        outcomes,
    }
}

/// Runs the allocation protocol + execution for one query.
#[allow(clippy::too_many_arguments)]
fn run_one(
    idx: usize,
    class: ClassId,
    sql: String,
    senders: &[crossbeam::channel::Sender<NodeMsg>],
    capable: &[usize],
    mechanism: ClusterMechanism,
    period: Duration,
    max_retries: u32,
) -> QueryOutcome {
    let issued = Instant::now();
    let timeout = Duration::from_secs(60);
    let fail = |msg: &str, retries: u32| QueryOutcome {
        query: idx,
        class: class.0,
        node: None,
        assign_ms: issued.elapsed().as_secs_f64() * 1e3,
        total_ms: issued.elapsed().as_secs_f64() * 1e3,
        retries,
        error: Some(msg.to_string()),
    };

    let (chosen, retries) = match mechanism {
        ClusterMechanism::Greedy => {
            // Poll everyone, wait for all replies (§5.2: "waited for a
            // reply from all nodes"), take the minimum estimate.
            let (tx, rx) = unbounded::<EstimateReply>();
            for &n in capable {
                let _ = senders[n].send(NodeMsg::Estimate {
                    sql: sql.clone(),
                    reply: tx.clone(),
                });
            }
            drop(tx);
            let mut best: Option<(f64, usize)> = None;
            for _ in 0..capable.len() {
                match rx.recv_timeout(timeout) {
                    Ok(r) => {
                        if best.is_none() || r.exec_ms < best.expect("some").0 {
                            best = Some((r.exec_ms, r.node));
                        }
                    }
                    Err(_) => return fail("estimate timeout", 0),
                }
            }
            match best {
                Some((_, n)) => (n, 0),
                None => return fail("no capable node", 0),
            }
        }
        ClusterMechanism::QaNt => {
            let mut retries = 0;
            loop {
                let (tx, rx) = unbounded::<OfferReply>();
                for &n in capable {
                    let _ = senders[n].send(NodeMsg::CallForOffers {
                        class,
                        sql: sql.clone(),
                        reply: tx.clone(),
                    });
                }
                drop(tx);
                let mut best: Option<(f64, usize)> = None;
                for _ in 0..capable.len() {
                    match rx.recv_timeout(timeout) {
                        Ok(r) if r.offered => {
                            if best.is_none() || r.completion_ms < best.expect("some").0 {
                                best = Some((r.completion_ms, r.node));
                            }
                        }
                        Ok(_) => {}
                        Err(_) => return fail("offer timeout", retries),
                    }
                }
                match best {
                    Some((_, n)) => break (n, retries),
                    None => {
                        retries += 1;
                        if retries > max_retries {
                            return fail("no offers after retries", retries);
                        }
                        // §2.2: resubmit in the next time period.
                        std::thread::sleep(period);
                    }
                }
            }
        }
    };
    let assign_ms = issued.elapsed().as_secs_f64() * 1e3;

    let (tx, rx) = unbounded::<ExecReply>();
    let _ = senders[chosen].send(NodeMsg::Execute {
        sql,
        class,
        reply: tx,
    });
    match rx.recv_timeout(timeout) {
        Ok(r) => QueryOutcome {
            query: idx,
            class: class.0,
            node: Some(chosen),
            assign_ms,
            total_ms: issued.elapsed().as_secs_f64() * 1e3,
            retries,
            error: r.error,
        },
        Err(_) => fail("execution timeout", retries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::generate(5, 5, 8, 12, 6, 60)
    }

    #[test]
    fn greedy_experiment_completes_all_queries() {
        let s = spec();
        let cfg = ClusterConfig::ci_scale(ClusterMechanism::Greedy, 11);
        let r = run_experiment(&s, &cfg);
        assert_eq!(r.outcomes.len(), cfg.num_queries);
        assert_eq!(r.failed, 0, "{:?}", r.outcomes.iter().find(|o| o.error.is_some()));
        assert!(r.mean_assign_ms > 0.0);
        assert!(r.mean_total_ms >= r.mean_assign_ms);
    }

    #[test]
    fn qant_experiment_completes_all_queries() {
        let s = spec();
        let cfg = ClusterConfig::ci_scale(ClusterMechanism::QaNt, 11);
        let r = run_experiment(&s, &cfg);
        assert_eq!(r.outcomes.len(), cfg.num_queries);
        assert_eq!(r.failed, 0, "{:?}", r.outcomes.iter().find(|o| o.error.is_some()));
        assert!(r.mean_total_ms.is_finite());
    }

    #[test]
    fn both_mechanisms_use_only_capable_nodes() {
        let s = spec();
        for mech in [ClusterMechanism::Greedy, ClusterMechanism::QaNt] {
            let mut cfg = ClusterConfig::ci_scale(mech, 13);
            cfg.num_queries = 15;
            let r = run_experiment(&s, &cfg);
            for o in &r.outcomes {
                if let Some(n) = o.node {
                    let capable = s.capable_nodes(ClassId(o.class));
                    assert!(capable.contains(&n), "query {} on incapable node {n}", o.query);
                }
            }
        }
    }
}
