//! The §5.2 experiment driver.
//!
//! Replays a uniform-inter-arrival workload of star queries against the
//! node fleet under either allocation mechanism, measuring per query:
//!
//! * **assignment time** — from issue until a node is chosen (the paper's
//!   "time required by Greedy and QA-NT to assign a query to a node"; both
//!   protocols poll every capable node, so a busy slow node stretches
//!   this),
//! * **total time** — assignment plus execution ("time to assign + execute
//!   query").
//!
//! These are exactly Figure 7's two bars per mechanism.
//!
//! ## Resilience
//!
//! The driver never assumes the fleet is healthy. Negotiation replies are
//! collected under a deadline ([`ClusterConfig::reply_timeout`]) — a lost
//! or late reply is treated as a non-offer, not a protocol failure. A node
//! whose mailbox disconnects (crash injection via
//! [`ClusterConfig::crashes`], or a dead worker) is dropped from the
//! candidate set and the run finishes without it; a query that was
//! executing there is re-allocated. Failed attempts retry with capped
//! exponential backoff and a bounded budget ([`ClusterConfig::max_retries`])
//! so nothing livelocks. All environmental failures surface as
//! [`ClusterError`] values in the per-query outcomes — the request, offer
//! and execute paths never panic.

use crate::error::ClusterError;
use crate::node::{spawn_node_with_faults, EstimateReply, ExecReply, NodeHandle, OfferReply};
use crate::setup::ClusterSpec;
use crate::transport::{ChannelTransport, Transport};
use qa_core::QantConfig;
use qa_simnet::telemetry::{HistogramHandle, Telemetry, TelemetryEvent};
use qa_simnet::{DetRng, FaultPlan, SimDuration};
use qa_workload::ClassId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard ceiling on one query execution (a node may legitimately be slow,
/// but past this the run must move on).
const EXEC_TIMEOUT: Duration = Duration::from_secs(60);

/// Which mechanism drives allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMechanism {
    /// Greedy: poll execution estimates from every capable node, assign to
    /// the minimum unilaterally.
    Greedy,
    /// QA-NT: call-for-offers; servers offer while market supply lasts;
    /// rejected queries resubmit next period.
    QaNt,
}

impl std::fmt::Display for ClusterMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterMechanism::Greedy => write!(f, "Greedy"),
            ClusterMechanism::QaNt => write!(f, "QA-NT"),
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Master seed.
    pub seed: u64,
    /// Queries to issue (paper: 300).
    pub num_queries: usize,
    /// Mean inter-arrival time (paper: 300 ms and 400 ms; scale down for
    /// CI).
    pub mean_interarrival: Duration,
    /// QA-NT market period (paper: 500 ms; scale with the workload).
    pub period: Duration,
    /// Rows per base table (scale).
    pub rows_per_table: usize,
    /// The mechanism under test.
    pub mechanism: ClusterMechanism,
    /// Maximum resubmissions before giving up on a query (QA-NT
    /// rejections, lost negotiations and crash re-allocations all spend
    /// from this budget).
    pub max_retries: u32,
    /// Deadline for collecting negotiation replies. Replies missing at the
    /// deadline count as non-offers; the protocol no longer blocks on the
    /// full candidate set.
    pub reply_timeout: Duration,
    /// Link-fault schedule keyed by node ([`FaultPlan::none`] = healthy).
    /// Outage-window offsets are measured from experiment start.
    pub faults: FaultPlan,
    /// Crash schedule: `(node, delay after start)`. Crashed nodes drop out
    /// of the candidate set; the run finishes without them.
    pub crashes: Vec<(usize, Duration)>,
    /// Telemetry sink observing the run ([`Telemetry::disabled`] by
    /// default). Market events carry per-node labels; timestamps are
    /// wall-clock microseconds since experiment start, so — unlike the
    /// simulator's traces — cluster traces are not byte-deterministic.
    pub telemetry: Telemetry,
}

impl ClusterConfig {
    /// CI-scale defaults (~100× smaller than the paper's deployment).
    pub fn ci_scale(mechanism: ClusterMechanism, seed: u64) -> ClusterConfig {
        ClusterConfig {
            seed,
            num_queries: 40,
            mean_interarrival: Duration::from_millis(5),
            period: Duration::from_millis(40),
            rows_per_table: 80,
            mechanism,
            max_retries: 100,
            reply_timeout: Duration::from_secs(60),
            faults: FaultPlan::none(),
            crashes: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Paper-shaped run (time-scaled ~10×: 300 queries at 30/40 ms mean
    /// inter-arrival against ~100 ms-class queries — the paper's 300/400 ms
    /// against 1–14 s queries, preserving the ~3× offered-load ratio).
    pub fn paper_scale(
        mechanism: ClusterMechanism,
        seed: u64,
        mean_interarrival_ms: u64,
    ) -> ClusterConfig {
        ClusterConfig {
            seed,
            num_queries: 300,
            mean_interarrival: Duration::from_millis(mean_interarrival_ms),
            period: Duration::from_millis(100),
            rows_per_table: 50_000,
            mechanism,
            max_retries: 2_000,
            reply_timeout: Duration::from_secs(60),
            faults: FaultPlan::none(),
            crashes: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Per-query measurement.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Query index in issue order.
    pub query: usize,
    /// Its class.
    pub class: u32,
    /// The node that executed it, if any.
    pub node: Option<usize>,
    /// Time from issue to assignment decision (ms).
    pub assign_ms: f64,
    /// Time from issue to result (ms).
    pub total_ms: f64,
    /// Resubmissions needed (rejections, losses and re-allocations).
    pub retries: u32,
    /// Error text if the query failed or was never assigned.
    pub error: Option<String>,
}

qa_simnet::impl_to_json!(QueryOutcome {
    query,
    class,
    node,
    assign_ms,
    total_ms,
    retries,
    error
});

/// Aggregate experiment result (one Figure-7 bar pair).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Mechanism name.
    pub mechanism: String,
    /// Per-query outcomes.
    pub outcomes: Vec<QueryOutcome>,
    /// Mean assignment time over successful queries (ms).
    pub mean_assign_ms: f64,
    /// Mean total time over successful queries (ms).
    pub mean_total_ms: f64,
    /// Queries that never completed.
    pub failed: usize,
    /// Fraction of issued queries that completed.
    pub completion_rate: f64,
}

qa_simnet::impl_to_json!(ExperimentResult {
    mechanism,
    outcomes,
    mean_assign_ms,
    mean_total_ms,
    failed,
    completion_rate
});

/// Driver-side latency histograms, resolved once per run from the
/// telemetry registry (`None` without one). These go to the *registry
/// only* — never the event stream — so enabling them cannot perturb
/// trace byte-determinism.
struct DriverMetrics {
    /// Issue-to-assignment latency per query (ms).
    assign_ms: HistogramHandle,
    /// Issue-to-result latency per query (ms).
    total_ms: HistogramHandle,
    /// One negotiation round trip: fan-out to last collected reply (ms).
    rpc_ms: HistogramHandle,
}

impl DriverMetrics {
    fn resolve(telemetry: &Telemetry) -> Option<DriverMetrics> {
        let r = telemetry.registry()?;
        Some(DriverMetrics {
            assign_ms: r.histogram("driver.assign_ms"),
            total_ms: r.histogram("driver.total_ms"),
            rpc_ms: r.histogram("driver.rpc_ms"),
        })
    }
}

/// State shared by every per-query protocol thread.
struct Shared {
    transport: Arc<dyn Transport>,
    mechanism: ClusterMechanism,
    period: Duration,
    reply_timeout: Duration,
    max_retries: u32,
    /// Nodes known to be gone; maintained cooperatively by whoever
    /// observes a disconnected channel (and by the crash injector).
    dead: Vec<AtomicBool>,
    /// Driver-side telemetry (query lifecycle, crashes, lost sends).
    telemetry: Telemetry,
    /// Registry-backed latency histograms (`None` without a registry).
    metrics: Option<DriverMetrics>,
    /// Wall-clock origin for trace timestamps.
    epoch: Instant,
}

impl Shared {
    fn mark_dead(&self, node: usize) {
        self.dead[node].store(true, Ordering::Relaxed);
    }

    /// Stamps the telemetry clock with wall-clock-µs-since-start and
    /// returns the handle, so call sites read
    /// `shared.telemetry().emit(..)`. One atomic store when enabled, one
    /// `Option` branch when not.
    fn telemetry(&self) -> &Telemetry {
        if self.telemetry.is_enabled() {
            self.telemetry
                .set_now_us(self.epoch.elapsed().as_micros() as u64);
        }
        &self.telemetry
    }

    fn live_candidates(&self, capable: &[usize]) -> Vec<usize> {
        capable
            .iter()
            .copied()
            .filter(|&n| !self.dead[n].load(Ordering::Relaxed))
            .collect()
    }
}

/// Capped exponential backoff between allocation attempts: one period,
/// doubling per retry, never more than eight periods.
fn backoff(period: Duration, attempt: u32) -> Duration {
    let factor = 1u32 << attempt.min(3);
    period.saturating_mul(factor)
}

/// The [`QantConfig`] a fleet node runs under a given mechanism and
/// market period — `None` for Greedy. Shared by the in-process spawner
/// and the `qad` server so a multi-process federation prices exactly like
/// the threaded one.
pub fn qant_config_for(mechanism: ClusterMechanism, period: Duration) -> Option<QantConfig> {
    match mechanism {
        ClusterMechanism::QaNt => Some(QantConfig {
            period: SimDuration::from_millis(period.as_millis() as u64),
            // §5.1 deployment mode: restrict supply only once prices
            // inflate past 2× their initial level (renormalization is
            // incompatible with thresholds — see QantConfig docs).
            price_threshold: Some(2.0),
            renormalize_prices: false,
            ..QantConfig::default()
        }),
        ClusterMechanism::Greedy => None,
    }
}

/// Spawns the in-process fleet for a spec + config: one node thread per
/// fleet member, with the config's faults and telemetry wired in.
pub fn spawn_fleet(spec: &ClusterSpec, config: &ClusterConfig, epoch: Instant) -> ChannelTransport {
    let qant_cfg = qant_config_for(config.mechanism, config.period);
    let nodes: Vec<NodeHandle> = (0..spec.num_nodes)
        .map(|n| {
            spawn_node_with_faults(
                spec,
                n,
                config.seed,
                qant_cfg,
                config.faults.link(n).clone(),
                epoch,
                config.telemetry.clone(),
            )
        })
        .collect();
    ChannelTransport::new(nodes)
}

/// Runs one experiment: builds the in-process fleet, replays the
/// workload, tears the fleet down, returns measurements.
///
/// # Errors
/// Returns [`ClusterError::NoCandidates`] when the spec has no evaluable
/// query class. Per-query environmental failures (crashes, losses,
/// timeouts) do *not* fail the experiment — they are recorded in the
/// outcomes.
pub fn run_experiment(
    spec: &ClusterSpec,
    config: &ClusterConfig,
) -> Result<ExperimentResult, ClusterError> {
    let transport: Arc<dyn Transport> = Arc::new(spawn_fleet(spec, config, Instant::now()));
    let result = run_workload(spec, config, Arc::clone(&transport));
    transport.shutdown();
    result
}

/// Replays the workload against an already-connected fleet — in-process
/// threads ([`ChannelTransport`]) or real `qad` processes
/// ([`crate::transport::TcpTransport`]) behave identically here. Does
/// **not** tear the transport down: the caller may keep using it (e.g. to
/// dump post-run price vectors) and owns the final
/// [`Transport::shutdown`].
///
/// # Errors
/// Returns [`ClusterError::NoCandidates`] when the spec has no evaluable
/// query class; per-query environmental failures are recorded in the
/// outcomes instead.
pub fn run_workload(
    spec: &ClusterSpec,
    config: &ClusterConfig,
    transport: Arc<dyn Transport>,
) -> Result<ExperimentResult, ClusterError> {
    let epoch = Instant::now();
    let num_nodes = transport.num_nodes();
    let shared = Arc::new(Shared {
        transport: Arc::clone(&transport),
        mechanism: config.mechanism,
        period: config.period,
        reply_timeout: config.reply_timeout,
        max_retries: config.max_retries,
        dead: (0..num_nodes).map(|_| AtomicBool::new(false)).collect(),
        telemetry: config.telemetry.clone(),
        metrics: DriverMetrics::resolve(&config.telemetry),
        epoch,
    });

    let stop = Arc::new(AtomicBool::new(false));

    // QA-NT period ticker.
    let ticker = {
        let stop = Arc::clone(&stop);
        let shared = Arc::clone(&shared);
        let period = config.period;
        let ticking = matches!(config.mechanism, ClusterMechanism::QaNt);
        std::thread::spawn(move || {
            let mut index = 0u64;
            while ticking && !stop.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                index += 1;
                shared
                    .telemetry()
                    .emit(|| TelemetryEvent::PeriodStarted { index });
                for n in 0..shared.transport.num_nodes() {
                    let _ = shared.transport.period_tick(n);
                }
            }
        })
    };

    // Crash injector: kills scheduled nodes through the transport —
    // shutting the mailbox in-process, terminating the remote process
    // over TCP — exactly like a process death: in-flight replies are lost
    // and every later send fails. Polls the stop flag so a schedule
    // reaching past the run's end cannot block teardown.
    let crash_injector = {
        let stop = Arc::clone(&stop);
        let shared = Arc::clone(&shared);
        let mut crashes = config.crashes.clone();
        crashes.sort_by_key(|&(_, delay)| delay);
        std::thread::spawn(move || {
            for (node, delay) in crashes {
                while epoch.elapsed() < delay {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                if node < shared.transport.num_nodes() {
                    shared.mark_dead(node);
                    shared
                        .telemetry()
                        .emit(|| TelemetryEvent::NodeCrashed { node: node as u32 });
                    shared.transport.shutdown_node(node);
                }
            }
        })
    };

    // Pre-generate the workload: (delay-from-previous, class, sql).
    let mut rng = DetRng::seed_from_u64(config.seed).derive("cluster-workload");
    let usable: Vec<&crate::setup::QueryClassSpec> = spec
        .classes
        .iter()
        .filter(|c| !spec.capable_nodes(c.id).is_empty())
        .collect();
    if usable.is_empty() {
        stop.store(true, Ordering::Relaxed);
        let _ = ticker.join();
        let _ = crash_injector.join();
        return Err(ClusterError::NoCandidates);
    }
    let mean_ms = config.mean_interarrival.as_secs_f64() * 1e3;
    let workload: Vec<(Duration, ClassId, String)> = (0..config.num_queries)
        .map(|_| {
            let gap = Duration::from_secs_f64(rng.float_in(0.5 * mean_ms, 1.5 * mean_ms) / 1e3);
            let class = usable[rng.index(usable.len())];
            (gap, class.id, class.sample(&mut rng))
        })
        .collect();

    // Issue queries on schedule; each runs its protocol on its own thread.
    let (done_tx, done_rx) = channel::<QueryOutcome>();
    let mut issue_threads = Vec::new();
    for (i, (gap, class, sql)) in workload.into_iter().enumerate() {
        std::thread::sleep(gap);
        let capable = spec.capable_nodes(class);
        let done = done_tx.clone();
        let shared = Arc::clone(&shared);
        issue_threads.push(std::thread::spawn(move || {
            let outcome = run_one(i, class, sql, &capable, &shared);
            let _ = done.send(outcome);
        }));
    }
    drop(done_tx);

    let mut outcomes: Vec<QueryOutcome> = done_rx.iter().collect();
    for t in issue_threads {
        let _ = t.join();
    }
    outcomes.sort_by_key(|o| o.query);

    stop.store(true, Ordering::Relaxed);
    let _ = ticker.join();
    let _ = crash_injector.join();

    let ok: Vec<&QueryOutcome> = outcomes.iter().filter(|o| o.error.is_none()).collect();
    let mean = |f: fn(&QueryOutcome) -> f64| {
        if ok.is_empty() {
            f64::NAN
        } else {
            ok.iter().map(|o| f(o)).sum::<f64>() / ok.len() as f64
        }
    };
    let completion_rate = if outcomes.is_empty() {
        1.0
    } else {
        ok.len() as f64 / outcomes.len() as f64
    };
    Ok(ExperimentResult {
        mechanism: config.mechanism.to_string(),
        mean_assign_ms: mean(|o| o.assign_ms),
        mean_total_ms: mean(|o| o.total_ms),
        failed: outcomes.len() - ok.len(),
        completion_rate,
        outcomes,
    })
}

/// Collects replies under the shared deadline. Stops early once all `sent`
/// reply senders have answered or disconnected; missing replies are simply
/// absent from the result (loss tolerance).
fn collect_replies<T>(rx: &Receiver<T>, sent: usize, deadline: Instant) -> Vec<T> {
    let mut got = Vec::with_capacity(sent);
    while got.len() < sent {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        match rx.recv_timeout(remaining) {
            Ok(r) => got.push(r),
            // Timeout: the deadline expired with replies outstanding.
            // Disconnected: every outstanding reply sender was dropped
            // (replies fault-dropped, or the node died). Either way the
            // client proceeds with what it has.
            Err(_) => break,
        }
    }
    got
}

/// One allocation attempt round: polls the live candidates, returns the
/// chosen node if any reply produced one. Send failures mark nodes dead.
fn poll_round(
    shared: &Shared,
    capable: &[usize],
    class: ClassId,
    sql: &str,
) -> Result<Option<usize>, ClusterError> {
    let live = shared.live_candidates(capable);
    if live.is_empty() {
        return Err(ClusterError::NoCandidates);
    }
    let _span = shared.telemetry.span("cluster.poll_round");
    let started = Instant::now();
    let deadline = started + shared.reply_timeout;
    let rpc_observed = |r| {
        if let Some(m) = &shared.metrics {
            m.rpc_ms.observe(started.elapsed().as_secs_f64() * 1e3);
        }
        r
    };
    match shared.mechanism {
        ClusterMechanism::Greedy => {
            let (tx, rx) = channel::<EstimateReply>();
            let mut sent = 0;
            for &n in &live {
                if shared.transport.estimate(n, sql, tx.clone()).is_err() {
                    shared.mark_dead(n);
                    shared.telemetry().emit(|| TelemetryEvent::MessageDropped {
                        node: n as u32,
                        context: "estimate_send".to_string(),
                    });
                } else {
                    sent += 1;
                }
            }
            drop(tx);
            let mut best: Option<(f64, usize)> = None;
            for r in collect_replies(&rx, sent, deadline) {
                let better = match best {
                    None => true,
                    Some((b, _)) => r.exec_ms < b,
                };
                if better {
                    best = Some((r.exec_ms, r.node));
                }
            }
            rpc_observed(Ok(best.map(|(_, n)| n)))
        }
        ClusterMechanism::QaNt => {
            let (tx, rx) = channel::<OfferReply>();
            let mut sent = 0;
            for &n in &live {
                if shared
                    .transport
                    .call_for_offers(n, class, sql, tx.clone())
                    .is_err()
                {
                    shared.mark_dead(n);
                    shared.telemetry().emit(|| TelemetryEvent::MessageDropped {
                        node: n as u32,
                        context: "offer_send".to_string(),
                    });
                } else {
                    sent += 1;
                }
            }
            drop(tx);
            let mut best: Option<(f64, usize)> = None;
            for r in collect_replies(&rx, sent, deadline) {
                if !r.offered {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((b, _)) => r.completion_ms < b,
                };
                if better {
                    best = Some((r.completion_ms, r.node));
                }
            }
            rpc_observed(Ok(best.map(|(_, n)| n)))
        }
    }
}

/// Runs the allocation protocol + execution for one query. Environmental
/// failures are retried within the budget and otherwise recorded in the
/// outcome; this function never panics.
fn run_one(
    idx: usize,
    class: ClassId,
    sql: String,
    capable: &[usize],
    shared: &Shared,
) -> QueryOutcome {
    let issued = Instant::now();
    let fail = |err: ClusterError, retries: u32| {
        shared.telemetry().emit(|| TelemetryEvent::QueryUnserved {
            query: idx as u64,
            class: class.0,
            retries,
        });
        QueryOutcome {
            query: idx,
            class: class.0,
            node: None,
            assign_ms: issued.elapsed().as_secs_f64() * 1e3,
            total_ms: issued.elapsed().as_secs_f64() * 1e3,
            retries,
            error: Some(err.to_string()),
        }
    };

    let mut retries = 0u32;
    loop {
        // Allocation: poll, and on an empty round (all rejections, or all
        // replies lost) back off and resubmit — §2.2's next-period retry,
        // with exponential growth so a partitioned network is not spammed.
        let chosen = loop {
            match poll_round(shared, capable, class, &sql) {
                Err(e) => return fail(e, retries),
                Ok(Some(n)) => break n,
                Ok(None) => {
                    retries += 1;
                    if retries > shared.max_retries {
                        return fail(ClusterError::RetriesExhausted { retries }, retries);
                    }
                    std::thread::sleep(backoff(shared.period, retries - 1));
                }
            }
        };
        let assign_ms = issued.elapsed().as_secs_f64() * 1e3;
        if let Some(m) = &shared.metrics {
            m.assign_ms.observe(assign_ms);
        }
        shared.telemetry().emit(|| TelemetryEvent::QueryAssigned {
            query: idx as u64,
            class: class.0,
            node: chosen as u32,
            retries,
        });

        // Execution. A disconnect means the chosen node crashed with our
        // query: drop it from the candidate set and re-allocate (the
        // cluster analogue of the simulator's crash re-entry).
        let (tx, rx) = channel::<ExecReply>();
        if shared.transport.execute(chosen, class, &sql, tx).is_err() {
            shared.mark_dead(chosen);
            shared.telemetry().emit(|| TelemetryEvent::MessageDropped {
                node: chosen as u32,
                context: "execute_send".to_string(),
            });
            retries += 1;
            if retries > shared.max_retries {
                return fail(ClusterError::RetriesExhausted { retries }, retries);
            }
            continue;
        }
        match rx.recv_timeout(EXEC_TIMEOUT) {
            Ok(r) => {
                let total_ms = issued.elapsed().as_secs_f64() * 1e3;
                if let Some(m) = &shared.metrics {
                    m.total_ms.observe(total_ms);
                }
                shared.telemetry().emit(|| TelemetryEvent::QueryCompleted {
                    query: idx as u64,
                    class: class.0,
                    node: chosen as u32,
                    response_ms: total_ms,
                });
                return QueryOutcome {
                    query: idx,
                    class: class.0,
                    node: Some(chosen),
                    assign_ms,
                    total_ms,
                    retries,
                    error: r.error,
                };
            }
            Err(RecvTimeoutError::Disconnected) => {
                shared.mark_dead(chosen);
                retries += 1;
                if retries > shared.max_retries {
                    return fail(
                        ClusterError::ChannelClosed {
                            phase: "execute",
                            node: chosen,
                        },
                        retries,
                    );
                }
                std::thread::sleep(backoff(shared.period, retries - 1));
            }
            Err(RecvTimeoutError::Timeout) => {
                return fail(
                    ClusterError::Timeout {
                        phase: "execute",
                        node: chosen,
                    },
                    retries,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::generate(5, 5, 8, 12, 6, 60)
    }

    #[test]
    fn greedy_experiment_completes_all_queries() {
        let s = spec();
        let cfg = ClusterConfig::ci_scale(ClusterMechanism::Greedy, 11);
        let r = run_experiment(&s, &cfg).expect("healthy spec");
        assert_eq!(r.outcomes.len(), cfg.num_queries);
        assert_eq!(
            r.failed,
            0,
            "{:?}",
            r.outcomes.iter().find(|o| o.error.is_some())
        );
        assert_eq!(r.completion_rate, 1.0);
        assert!(r.mean_assign_ms > 0.0);
        assert!(r.mean_total_ms >= r.mean_assign_ms);
    }

    #[test]
    fn qant_experiment_completes_all_queries() {
        let s = spec();
        let cfg = ClusterConfig::ci_scale(ClusterMechanism::QaNt, 11);
        let r = run_experiment(&s, &cfg).expect("healthy spec");
        assert_eq!(r.outcomes.len(), cfg.num_queries);
        assert_eq!(
            r.failed,
            0,
            "{:?}",
            r.outcomes.iter().find(|o| o.error.is_some())
        );
        assert!(r.mean_total_ms.is_finite());
    }

    #[test]
    fn both_mechanisms_use_only_capable_nodes() {
        let s = spec();
        for mech in [ClusterMechanism::Greedy, ClusterMechanism::QaNt] {
            let mut cfg = ClusterConfig::ci_scale(mech, 13);
            cfg.num_queries = 15;
            let r = run_experiment(&s, &cfg).expect("healthy spec");
            for o in &r.outcomes {
                if let Some(n) = o.node {
                    let capable = s.capable_nodes(ClassId(o.class));
                    assert!(
                        capable.contains(&n),
                        "query {} on incapable node {n}",
                        o.query
                    );
                }
            }
        }
    }

    #[test]
    fn backoff_is_capped() {
        let p = Duration::from_millis(40);
        assert_eq!(backoff(p, 0), p);
        assert_eq!(backoff(p, 1), p * 2);
        assert_eq!(backoff(p, 3), p * 8);
        assert_eq!(backoff(p, 30), p * 8, "cap at eight periods");
    }

    #[test]
    fn crashed_node_is_dropped_and_run_finishes() {
        let s = spec();
        let mut cfg = ClusterConfig::ci_scale(ClusterMechanism::Greedy, 17);
        cfg.num_queries = 25;
        cfg.reply_timeout = Duration::from_secs(5);
        // Kill two nodes early; the rest of the fleet must finish the run.
        // (Inter-arrival gaps are ≥ 2.5 ms, so query 10 is provably issued
        // after both crashes.)
        cfg.crashes = vec![
            (0, Duration::from_millis(10)),
            (1, Duration::from_millis(20)),
        ];
        let r = run_experiment(&s, &cfg).expect("spec has classes");
        assert_eq!(r.outcomes.len(), cfg.num_queries);
        // Queries issued well after the crashes never land on the dead
        // nodes (index 15 is issued ≥ 40 ms in, leaving slack for the
        // injector's 5 ms poll granularity and scheduler jitter).
        for o in r.outcomes.iter().filter(|o| o.query >= 15) {
            if let Some(n) = o.node {
                assert!(n > 1, "query {} assigned to crashed node {n}", o.query);
            }
        }
        // Classes only nodes 0/1 could evaluate are correctly unservable;
        // everything else must finish.
        let stranded: Vec<u32> = s
            .classes
            .iter()
            .filter(|c| {
                let cap = s.capable_nodes(c.id);
                !cap.is_empty() && cap.iter().all(|&m| m <= 1)
            })
            .map(|c| c.id.0)
            .collect();
        let eligible: Vec<_> = r
            .outcomes
            .iter()
            .filter(|o| !stranded.contains(&o.class) && o.query >= 15)
            .collect();
        let ok = eligible.iter().filter(|o| o.error.is_none()).count();
        assert!(
            ok * 10 >= eligible.len() * 9,
            "servable post-crash queries must complete: {ok}/{}",
            eligible.len()
        );
    }

    #[test]
    fn lossy_links_degrade_gracefully() {
        use qa_simnet::LinkFaults;
        let s = spec();
        let mut cfg = ClusterConfig::ci_scale(ClusterMechanism::QaNt, 19);
        cfg.num_queries = 20;
        cfg.reply_timeout = Duration::from_secs(5);
        cfg.faults = FaultPlan::uniform(LinkFaults::lossy(0.2));
        let r = run_experiment(&s, &cfg).expect("spec has classes");
        assert_eq!(r.outcomes.len(), cfg.num_queries);
        assert!(
            r.completion_rate >= 0.95,
            "QA-NT must ride out 20% negotiation loss: {}",
            r.completion_rate
        );
    }

    #[test]
    fn telemetry_captures_cluster_market_and_query_lifecycle() {
        let s = spec();
        let mut cfg = ClusterConfig::ci_scale(ClusterMechanism::QaNt, 29);
        cfg.num_queries = 20;
        cfg.reply_timeout = Duration::from_secs(5);
        cfg.crashes = vec![(0, Duration::from_millis(30))];
        let (telemetry, buffer) = Telemetry::buffered();
        cfg.telemetry = telemetry.clone();
        let r = run_experiment(&s, &cfg).expect("healthy spec");
        assert_eq!(r.outcomes.len(), cfg.num_queries);

        let records = buffer.records();
        let kinds: std::collections::BTreeSet<&str> =
            records.iter().map(|r| r.event.kind()).collect();
        for expected in [
            "supply_computed",
            "query_assigned",
            "query_completed",
            "node_crashed",
            "period_started",
        ] {
            assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
        }
        // Market events carry the emitting node's label; the crash event
        // names the scheduled victim.
        assert!(records.iter().any(
            |rec| matches!(rec.event, TelemetryEvent::SupplyComputed { node, .. } if node > 0)
        ));
        assert!(records
            .iter()
            .any(|rec| matches!(rec.event, TelemetryEvent::NodeCrashed { node: 0 })));
        // Negotiation rounds were timed into the registry.
        let snapshot = telemetry.registry().expect("enabled handle").snapshot();
        let stats = snapshot.get("stats").expect("stats section");
        assert!(
            stats.get("span.cluster.poll_round_us").is_some(),
            "poll_round span missing: {}",
            snapshot.dump()
        );
    }

    #[test]
    fn all_classes_impossible_is_an_error() {
        // A spec whose only class has no capable nodes cannot run.
        let mut s = spec();
        s.classes.truncate(1);
        let id = s.classes[0].id;
        // Remove every copy of the tables the class needs.
        let needed: Vec<usize> = s.classes[0].tables.clone();
        for (i, t) in s.tables.iter_mut().enumerate() {
            if needed.contains(&i) {
                t.copies.clear();
            }
        }
        assert!(s.capable_nodes(id).is_empty());
        let cfg = ClusterConfig::ci_scale(ClusterMechanism::Greedy, 23);
        match run_experiment(&s, &cfg) {
            Err(ClusterError::NoCandidates) => {}
            other => panic!("expected NoCandidates, got {other:?}"),
        }
    }
}
