//! `qad` — one federation node as an OS process.
//!
//! The paper's deployment is five autonomous PCs; `qad` is that: a server
//! process owning one node's data shard, estimator and QA-NT market
//! state, reachable only over TCP. A federation is N `qad` processes plus
//! a driver (`qa-ctl`, or any [`crate::transport::TcpTransport`] user).
//!
//! ## Federation config
//!
//! Every process of a federation — servers and driver alike — is pointed
//! at the same JSON config file ([`FedConfig`]). The file carries the
//! *generation parameters*, not the data: each side regenerates the
//! deterministic [`ClusterSpec`] from `spec_seed`, so a node process
//! loads exactly the shard the in-process fleet would have given it, and
//! the driver prices/allocates identically. This is how the multi-process
//! federation stays seed-for-seed comparable with the threaded one.
//!
//! ## Process contract
//!
//! `qad --listen 127.0.0.1:0 --node-id 3 --config fed.json` binds,
//! prints `qad listening <addr>` on stdout (the ephemeral-port discovery
//! contract `qa-ctl` relies on), and serves drivers until a `Shutdown`
//! frame arrives. A driver that disconnects without `Shutdown` is not
//! fatal — the server goes back to accepting, so a crashed driver can
//! reconnect to a still-warm market.

use crate::driver::qant_config_for;
use crate::node::{spawn_node_with_faults, NodeMsg, PricesReply};
use crate::setup::ClusterSpec;
use crate::ClusterMechanism;
use qa_net::{ConnConfig, Connection, WireMsg};
use qa_simnet::json::Json;
use qa_simnet::telemetry::Telemetry;
use qa_simnet::{FaultPlan, LinkFaults};
use std::io::Write;
use std::net::TcpListener;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A federation description: everything needed to regenerate the
/// deterministic deployment ([`ClusterSpec`]) and drive the workload,
/// shared verbatim by every process of the federation.
#[derive(Debug, Clone, PartialEq)]
pub struct FedConfig {
    /// Seed for [`ClusterSpec::generate`] (tables, views, copies,
    /// classes, slowdowns).
    pub spec_seed: u64,
    /// Fleet size.
    pub num_nodes: usize,
    /// Base tables (paper: 20).
    pub num_tables: usize,
    /// Views (paper: 80).
    pub num_views: usize,
    /// Query classes.
    pub num_classes: usize,
    /// Rows per base table.
    pub rows_per_table: usize,
    /// Allocation mechanism.
    pub mechanism: ClusterMechanism,
    /// Workload/data seed ([`crate::ClusterConfig::seed`]).
    pub seed: u64,
    /// Queries to issue.
    pub num_queries: usize,
    /// Mean inter-arrival (ms).
    pub mean_interarrival_ms: u64,
    /// QA-NT market period (ms).
    pub period_ms: u64,
    /// Resubmission budget per query.
    pub max_retries: u32,
    /// Negotiation reply deadline (ms).
    pub reply_timeout_ms: u64,
    /// Uniform negotiation-reply loss probability on every node's link.
    pub drop_prob: f64,
}

impl FedConfig {
    /// A CI-scale example federation (the `qa-ctl init` template).
    pub fn example() -> FedConfig {
        FedConfig {
            spec_seed: 5,
            num_nodes: 5,
            num_tables: 8,
            num_views: 12,
            num_classes: 6,
            rows_per_table: 60,
            mechanism: ClusterMechanism::QaNt,
            seed: 11,
            num_queries: 40,
            mean_interarrival_ms: 5,
            period_ms: 40,
            max_retries: 100,
            // Over real sockets the reply deadline *is* the loss
            // detector (an in-process fleet hangs up dropped-reply
            // senders; a network cannot), so it stays at period scale:
            // a lost negotiation costs one deadline, then §2.2 resubmits.
            reply_timeout_ms: 250,
            drop_prob: 0.0,
        }
    }

    /// Parses a config from JSON text. Unknown keys are rejected so a
    /// typo cannot silently fall back to a default.
    ///
    /// # Errors
    /// A human-readable description of the first problem found.
    pub fn parse(text: &str) -> Result<FedConfig, String> {
        let json = Json::parse(text)?;
        let keys = json.keys().ok_or("config must be a JSON object")?;
        const KNOWN: &[&str] = &[
            "spec_seed",
            "num_nodes",
            "num_tables",
            "num_views",
            "num_classes",
            "rows_per_table",
            "mechanism",
            "seed",
            "num_queries",
            "mean_interarrival_ms",
            "period_ms",
            "max_retries",
            "reply_timeout_ms",
            "drop_prob",
        ];
        for k in keys {
            if !KNOWN.contains(&k) {
                return Err(format!("unknown config key {k:?}"));
            }
        }
        let u = |key: &str, default: u64| -> Result<u64, String> {
            match json.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("{key} must be a non-negative integer")),
            }
        };
        let d = FedConfig::example();
        let mechanism = match json.get("mechanism") {
            None => d.mechanism,
            Some(Json::Str(s)) if s == "qant" => ClusterMechanism::QaNt,
            Some(Json::Str(s)) if s == "greedy" => ClusterMechanism::Greedy,
            Some(other) => {
                return Err(format!(
                    "mechanism must be \"qant\" or \"greedy\", got {}",
                    other.dump()
                ))
            }
        };
        let drop_prob = match json.get("drop_prob") {
            None => d.drop_prob,
            Some(Json::Float(p)) if (0.0..=1.0).contains(p) => *p,
            Some(Json::Int(0)) => 0.0,
            Some(Json::Int(1)) => 1.0,
            Some(other) => {
                return Err(format!("drop_prob must be in [0, 1], got {}", other.dump()))
            }
        };
        let cfg = FedConfig {
            spec_seed: u("spec_seed", d.spec_seed)?,
            num_nodes: u("num_nodes", d.num_nodes as u64)? as usize,
            num_tables: u("num_tables", d.num_tables as u64)? as usize,
            num_views: u("num_views", d.num_views as u64)? as usize,
            num_classes: u("num_classes", d.num_classes as u64)? as usize,
            rows_per_table: u("rows_per_table", d.rows_per_table as u64)? as usize,
            mechanism,
            seed: u("seed", d.seed)?,
            num_queries: u("num_queries", d.num_queries as u64)? as usize,
            mean_interarrival_ms: u("mean_interarrival_ms", d.mean_interarrival_ms)?,
            period_ms: u("period_ms", d.period_ms)?,
            max_retries: u("max_retries", u64::from(d.max_retries))? as u32,
            reply_timeout_ms: u("reply_timeout_ms", d.reply_timeout_ms)?,
            drop_prob,
        };
        if cfg.num_nodes < 2 {
            return Err("num_nodes must be at least 2".to_string());
        }
        if cfg.period_ms == 0 {
            return Err("period_ms must be positive".to_string());
        }
        Ok(cfg)
    }

    /// Reads and parses a config file.
    ///
    /// # Errors
    /// IO problems and parse problems, as readable text.
    pub fn load(path: &str) -> Result<FedConfig, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        FedConfig::parse(&text)
    }

    /// Serializes (the `qa-ctl init` output; `parse` round-trips it).
    pub fn dump(&self) -> String {
        Json::object([
            ("spec_seed", Json::Int(self.spec_seed as i64)),
            ("num_nodes", Json::Int(self.num_nodes as i64)),
            ("num_tables", Json::Int(self.num_tables as i64)),
            ("num_views", Json::Int(self.num_views as i64)),
            ("num_classes", Json::Int(self.num_classes as i64)),
            ("rows_per_table", Json::Int(self.rows_per_table as i64)),
            (
                "mechanism",
                Json::Str(
                    match self.mechanism {
                        ClusterMechanism::QaNt => "qant",
                        ClusterMechanism::Greedy => "greedy",
                    }
                    .to_string(),
                ),
            ),
            ("seed", Json::Int(self.seed as i64)),
            ("num_queries", Json::Int(self.num_queries as i64)),
            (
                "mean_interarrival_ms",
                Json::Int(self.mean_interarrival_ms as i64),
            ),
            ("period_ms", Json::Int(self.period_ms as i64)),
            ("max_retries", Json::Int(i64::from(self.max_retries))),
            ("reply_timeout_ms", Json::Int(self.reply_timeout_ms as i64)),
            ("drop_prob", Json::Float(self.drop_prob)),
        ])
        .pretty()
    }

    /// Regenerates the deterministic deployment this config describes.
    pub fn spec(&self) -> ClusterSpec {
        ClusterSpec::generate(
            self.spec_seed,
            self.num_nodes,
            self.num_tables,
            self.num_views,
            self.num_classes,
            self.rows_per_table,
        )
    }

    /// The fault plan every fleet node runs under (uniform loss).
    pub fn fault_plan(&self) -> FaultPlan {
        if self.drop_prob > 0.0 {
            FaultPlan::uniform(LinkFaults::lossy(self.drop_prob))
        } else {
            FaultPlan::none()
        }
    }

    /// The driver-side experiment config equivalent to this federation.
    pub fn cluster_config(&self, telemetry: Telemetry) -> crate::ClusterConfig {
        crate::ClusterConfig {
            seed: self.seed,
            num_queries: self.num_queries,
            mean_interarrival: Duration::from_millis(self.mean_interarrival_ms),
            period: Duration::from_millis(self.period_ms),
            rows_per_table: self.rows_per_table,
            mechanism: self.mechanism,
            max_retries: self.max_retries,
            reply_timeout: Duration::from_millis(self.reply_timeout_ms),
            faults: self.fault_plan(),
            crashes: Vec::new(),
            telemetry,
        }
    }
}

/// Why one driver session ended.
enum SessionEnd {
    /// The driver asked the whole node to shut down.
    Shutdown,
    /// The driver disconnected (or died); the node keeps serving.
    PeerGone,
}

/// Binds `listen`, announces the bound address on stdout, spawns the node
/// worker, and serves driver connections until a `Shutdown` frame.
///
/// With `metrics_addr` set, a second listener serves `GET /metrics`
/// (Prometheus text format) from this node's registry, announced as a
/// `qad metrics <addr>` stdout line after the listening announcement.
///
/// # Errors
/// Socket-level failures (bind/accept) as readable text. Per-session
/// failures are not fatal — the server returns to accepting.
pub fn serve(
    node: usize,
    listen: &str,
    metrics_addr: Option<&str>,
    fed: &FedConfig,
    telemetry: Telemetry,
) -> Result<(), String> {
    let spec = fed.spec();
    if node >= spec.num_nodes {
        return Err(format!(
            "node id {node} out of range (federation has {} nodes)",
            spec.num_nodes
        ));
    }
    let epoch = Instant::now();
    let qant_cfg = qant_config_for(fed.mechanism, Duration::from_millis(fed.period_ms));
    let fault_plan = fed.fault_plan();
    let handle = spawn_node_with_faults(
        &spec,
        node,
        fed.seed,
        qant_cfg,
        fault_plan.link(node).clone(),
        epoch,
        telemetry.clone(),
    );

    let listener = TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    // The discovery contract: qa-ctl (and the loopback tests) parse this
    // exact line to learn the ephemeral port. It must stay the *first*
    // line — `read_announced_addr` reads exactly one.
    println!("qad listening {bound}");
    let _ = std::io::stdout().flush();

    if let Some(addr) = metrics_addr {
        let registry = telemetry
            .registry()
            .cloned()
            .ok_or("--metrics-addr requires live telemetry (registry missing)")?;
        let metrics_bound = crate::metrics_http::serve_metrics(addr, registry)?;
        println!("qad metrics {metrics_bound}");
        let _ = std::io::stdout().flush();
    }

    let conn_cfg = ConnConfig {
        epoch,
        ..ConnConfig::default()
    };
    loop {
        let (stream, _) = listener.accept().map_err(|e| format!("accept: {e}"))?;
        let session = match Connection::accept(stream, node as u32, &conn_cfg, &telemetry) {
            Ok((conn, rx)) => {
                serve_session(Arc::new(conn), rx, &handle.sender, node as u32, &telemetry)
            }
            // A failed handshake (wrong version, port scanner, truncated
            // hello) poisons only that socket.
            Err(_) => SessionEnd::PeerGone,
        };
        if matches!(session, SessionEnd::Shutdown) {
            break;
        }
    }
    handle.shutdown();
    Ok(())
}

/// Pumps one driver connection: requests fan in to the node worker's
/// mailbox; each reply is forwarded back over the wire (with its token)
/// by a short-lived forwarder thread, preserving the node's saturated
/// single-worker semantics — the *node* processes strictly in order, but
/// a fault-dropped reply must not wedge the session.
fn serve_session(
    conn: Arc<Connection>,
    rx: std::sync::mpsc::Receiver<WireMsg>,
    mailbox: &std::sync::mpsc::Sender<NodeMsg>,
    node: u32,
    telemetry: &Telemetry,
) -> SessionEnd {
    /// Forwards one typed reply back over the connection when (if) it
    /// arrives; a dropped reply sender just ends the thread silently.
    fn forward<T: Send + 'static>(
        conn: &Arc<Connection>,
        rx: std::sync::mpsc::Receiver<T>,
        wrap: impl FnOnce(T) -> WireMsg + Send + 'static,
    ) {
        let conn = Arc::clone(conn);
        std::thread::spawn(move || {
            if let Ok(reply) = rx.recv() {
                let _ = conn.send(wrap(reply));
            }
        });
    }

    for msg in rx {
        match msg {
            WireMsg::Estimate { token, sql } => {
                let (tx, reply_rx) = channel();
                if mailbox.send(NodeMsg::Estimate { sql, reply: tx }).is_err() {
                    return SessionEnd::Shutdown;
                }
                forward(&conn, reply_rx, move |r: crate::node::EstimateReply| {
                    WireMsg::EstimateReply {
                        token,
                        node: r.node as u32,
                        exec_ms: r.exec_ms,
                    }
                });
            }
            WireMsg::CallForOffers { token, class, sql } => {
                let (tx, reply_rx) = channel();
                let send = mailbox.send(NodeMsg::CallForOffers {
                    class: qa_workload::ClassId(class),
                    sql,
                    reply: tx,
                });
                if send.is_err() {
                    return SessionEnd::Shutdown;
                }
                forward(&conn, reply_rx, move |r: crate::node::OfferReply| {
                    WireMsg::OfferReply {
                        token,
                        node: r.node as u32,
                        offered: r.offered,
                        completion_ms: r.completion_ms,
                    }
                });
            }
            WireMsg::Execute { token, class, sql } => {
                let (tx, reply_rx) = channel();
                let send = mailbox.send(NodeMsg::Execute {
                    sql,
                    class: qa_workload::ClassId(class),
                    reply: tx,
                });
                if send.is_err() {
                    return SessionEnd::Shutdown;
                }
                forward(&conn, reply_rx, move |r: crate::node::ExecReply| {
                    WireMsg::ExecReply {
                        token,
                        node: r.node as u32,
                        rows: r.rows as u64,
                        exec_ms: r.exec_ms,
                        error: r.error,
                    }
                });
            }
            WireMsg::DumpPrices { token } => {
                let (tx, reply_rx) = channel();
                if mailbox.send(NodeMsg::DumpPrices { reply: tx }).is_err() {
                    return SessionEnd::Shutdown;
                }
                forward(&conn, reply_rx, move |r: PricesReply| WireMsg::Prices {
                    token,
                    node: r.node as u32,
                    prices: r.prices,
                });
            }
            WireMsg::StatsRequest { token } => {
                // Answered inline from the registry, *not* via the node
                // mailbox: a stats scrape must stay responsive even when
                // the single-worker node is saturated by a long query.
                let json = telemetry
                    .registry()
                    .map(|r| r.snapshot().dump())
                    .unwrap_or_else(|| "{}".to_string());
                let _ = conn.send(WireMsg::StatsReply { token, node, json });
            }
            WireMsg::PeriodTick => {
                let sent = mailbox.send(NodeMsg::PeriodTick);
                if sent.is_err() {
                    return SessionEnd::Shutdown;
                }
            }
            WireMsg::Shutdown => return SessionEnd::Shutdown,
            // Handshake frames are consumed by Connection::accept; reply
            // frames are never driver → server. Ignore rather than die:
            // a confused peer costs nothing.
            _ => {}
        }
    }
    SessionEnd::PeerGone
}

/// Entry point for the `qad` binary. Returns the process exit code.
///
/// Usage: `qad --listen ADDR --node-id N --config FILE [--trace FILE]
/// [--metrics-addr ADDR]`
pub fn qad_main(args: &[String]) -> i32 {
    let mut listen = None;
    let mut node_id = None;
    let mut config = None;
    let mut trace = None;
    let mut metrics_addr = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let parsed = match arg.as_str() {
            "--listen" => take("--listen").map(|v| listen = Some(v)),
            "--node-id" => take("--node-id").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| node_id = Some(n))
                    .map_err(|e| format!("--node-id: {e}"))
            }),
            "--config" => take("--config").map(|v| config = Some(v)),
            "--trace" => take("--trace").map(|v| trace = Some(v)),
            "--metrics-addr" => take("--metrics-addr").map(|v| metrics_addr = Some(v)),
            "--help" | "-h" => {
                println!(
                    "usage: qad --listen ADDR --node-id N --config FILE \
                     [--trace FILE] [--metrics-addr ADDR]"
                );
                return 0;
            }
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("qad: {e}");
            return 2;
        }
    }
    let (Some(listen), Some(node), Some(config)) = (listen, node_id, config) else {
        eprintln!("qad: --listen, --node-id and --config are required (see --help)");
        return 2;
    };
    let fed = match FedConfig::load(&config) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("qad: config: {e}");
            return 2;
        }
    };
    // Metrics are always live (the stats scrape and `--metrics-addr`
    // both read the registry); only the *event stream* is opt-in.
    let telemetry = match &trace {
        None => Telemetry::metrics_only(),
        Some(path) => match Telemetry::to_file(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("qad: trace {path}: {e}");
                return 2;
            }
        },
    };
    match serve(node, &listen, metrics_addr.as_deref(), &fed, telemetry) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("qad: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_through_json() {
        let cfg = FedConfig::example();
        let parsed = FedConfig::parse(&cfg.dump()).expect("own dump must parse");
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected() {
        assert!(FedConfig::parse("{\"num_nodez\": 5}").is_err(), "typo key");
        assert!(FedConfig::parse("{\"mechanism\": \"qnat\"}").is_err());
        assert!(FedConfig::parse("{\"drop_prob\": 1.5}").is_err());
        assert!(FedConfig::parse("{\"num_nodes\": 1}").is_err());
        assert!(FedConfig::parse("[]").is_err(), "must be an object");
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let cfg = FedConfig::parse("{\"mechanism\": \"greedy\", \"seed\": 77}").unwrap();
        assert_eq!(cfg.mechanism, ClusterMechanism::Greedy);
        assert_eq!(cfg.seed, 77);
        assert_eq!(cfg.num_nodes, FedConfig::example().num_nodes);
    }

    #[test]
    fn spec_regeneration_is_deterministic() {
        let cfg = FedConfig::example();
        let a = cfg.spec();
        let b = cfg.spec();
        assert_eq!(a.num_nodes, b.num_nodes);
        assert_eq!(a.slowdown, b.slowdown);
        assert_eq!(
            a.classes.iter().map(|c| c.id).collect::<Vec<_>>(),
            b.classes.iter().map(|c| c.id).collect::<Vec<_>>()
        );
    }
}
