//! A hand-rolled `/metrics` endpoint (HTTP/1.0, std only).
//!
//! `qad --metrics-addr 127.0.0.1:0` serves its live
//! [`MetricsRegistry`](qa_simnet::MetricsRegistry) in the Prometheus text
//! exposition format (version 0.0.4) so any off-the-shelf scraper — or
//! plain `curl` — can watch one node of a federation. The server is
//! deliberately minimal: one `GET /metrics` route, `Connection: close`
//! semantics, one short-lived thread per request. A metrics scrape every
//! few seconds does not justify a connection pool.
//!
//! The wire-level stats scrape ([`qa_net::WireMsg::StatsRequest`]) and
//! this endpoint render the *same* registry snapshot; the former feeds
//! fleet-side aggregation (`qa-ctl stats`), the latter per-node pull
//! monitoring.

use qa_simnet::prometheus_text;
use qa_simnet::telemetry::MetricsRegistry;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Per-request socket deadline: a stalled scraper must not pin threads.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

/// Binds `addr`, then serves `GET /metrics` forever on a background
/// thread. Returns the bound address (so `addr` may use port 0).
///
/// # Errors
/// The bind failure, as readable text. Per-request failures are absorbed.
pub fn serve_metrics(addr: &str, registry: MetricsRegistry) -> Result<SocketAddr, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    std::thread::Builder::new()
        .name("qad-metrics".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let registry = registry.clone();
                std::thread::spawn(move || {
                    let _ = handle_request(stream, &registry);
                });
            }
        })
        .map_err(|e| format!("spawn metrics thread: {e}"))?;
    Ok(bound)
}

/// Reads one request line, answers, closes. Header bytes after the
/// request line are drained but ignored — this endpoint has no routes
/// that depend on them.
fn handle_request(stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line so the peer never sees a reset
    // while still sending.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut stream = reader.into_inner();
    match route(&request_line) {
        Route::Metrics => {
            let body = prometheus_text(&registry.snapshot());
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        Route::MetricsJson => {
            let body = format!("{}\n", registry.snapshot().dump());
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        Route::NotFound => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try GET /metrics\n",
        ),
        Route::BadMethod => respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        ),
    }
}

enum Route {
    Metrics,
    MetricsJson,
    NotFound,
    BadMethod,
}

/// Routes on the request line only: `GET <path> HTTP/x.y`.
fn route(request_line: &str) -> Route {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return Route::BadMethod;
    }
    match path {
        "/metrics" => Route::Metrics,
        "/metrics.json" => Route::MetricsJson,
        _ => Route::NotFound,
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Fetches `path` from a `serve_metrics` endpoint over a plain
/// [`TcpStream`] and returns `(status_line, body)`. Used by the smoke
/// validator (`check_metrics --fetch`) and the tests — the toolchain has
/// no HTTP client and `curl` is not a dependency we want in CI.
///
/// # Errors
/// Connect/IO failures and malformed responses, as readable text.
pub fn http_get(addr: &SocketAddr, path: &str) -> Result<(String, String), String> {
    let mut stream = TcpStream::connect_timeout(addr, REQUEST_TIMEOUT)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(REQUEST_TIMEOUT))
        .and_then(|_| stream.set_write_timeout(Some(REQUEST_TIMEOUT)))
        .map_err(|e| format!("socket deadline: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let mut raw = String::new();
    std::io::Read::read_to_string(&mut stream, &mut raw).map_err(|e| format!("read reply: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP reply (no header terminator)")?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_simnet::Json;

    fn endpoint() -> (SocketAddr, MetricsRegistry) {
        let registry = MetricsRegistry::new();
        registry.counter("qad.queries_executed").add(7);
        registry.gauge("qad.backlog_ms").set(12.5);
        registry.histogram("qad.exec_ms").observe(3.0);
        let bound = serve_metrics("127.0.0.1:0", registry.clone()).expect("bind");
        (bound, registry)
    }

    #[test]
    fn serves_prometheus_text_on_get_metrics() {
        let (addr, _registry) = endpoint();
        let (status, body) = http_get(&addr, "/metrics").expect("GET /metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("# TYPE qad_queries_executed counter"));
        assert!(body.contains("qad_queries_executed 7"));
        assert!(body.contains("qad_backlog_ms 12.5"));
        assert!(body.contains("qad_exec_ms_bucket"));
    }

    #[test]
    fn serves_snapshot_json_on_get_metrics_json() {
        let (addr, _registry) = endpoint();
        let (status, body) = http_get(&addr, "/metrics.json").expect("GET /metrics.json");
        assert!(status.contains("200"), "{status}");
        let snap = Json::parse(&body).expect("body must be valid JSON");
        assert!(snap.get("counters").is_some());
        assert!(snap.get("histograms").is_some());
    }

    #[test]
    fn unknown_path_is_404_and_post_is_405() {
        let (addr, _registry) = endpoint();
        let (status, _) = http_get(&addr, "/nope").expect("GET /nope");
        assert!(status.contains("404"), "{status}");

        // A non-GET request by hand (http_get always sends GET).
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut stream, &mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"), "{raw}");
    }

    #[test]
    fn scrape_reflects_live_registry_updates() {
        let (addr, registry) = endpoint();
        registry.counter("qad.queries_executed").add(5);
        let (_, body) = http_get(&addr, "/metrics").expect("GET /metrics");
        assert!(body.contains("qad_queries_executed 12"), "{body}");
    }
}
