//! `qa-ctl` — operator tooling for a multi-process federation.
//!
//! Spawns N [`crate::qad`] server processes on loopback ephemeral ports,
//! connects a [`TcpTransport`] to them, and either replays the workload
//! (`run`) or inspects the live market (`prices`). The same JSON
//! federation config ([`FedConfig`]) is handed to every child, so driver
//! and servers agree on the deployment byte-for-byte.
//!
//! ```text
//! qa-ctl init                          # print a starter federation config
//! qa-ctl run    --config fed.json     # spawn, submit queries, report, stop
//! qa-ctl prices --config fed.json     # spawn, dump price vectors, stop
//! qa-ctl stats  --config fed.json     # spawn, scrape + merge metrics, stop
//! qa-ctl stats  --addrs a:p,b:p       # scrape an already-running fleet
//! ```
//!
//! `stats` is the fleet observability entry point: it scrapes every
//! node's metrics-registry snapshot over the wire
//! ([`qa_net::WireMsg::StatsRequest`]), merges them with
//! [`MetricsRegistry::merge_snapshot`], and prints the aggregate as JSON
//! on stdout plus a per-node liveness table on stderr. `--watch` repeats
//! the scrape on an interval, one JSON line per round.

use crate::driver::run_workload;
use crate::node::PricesReply;
use crate::qad::FedConfig;
use crate::transport::{NodeStats, TcpTransport, Transport};
use crate::ClusterError;
use qa_simnet::json::Json;
use qa_simnet::telemetry::{MetricsRegistry, Telemetry};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long `qa-ctl` waits for a child to bind and announce its address.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(30);

/// How long children get to exit after `Shutdown` before being killed.
const EXIT_TIMEOUT: Duration = Duration::from_secs(10);

/// A spawned multi-process federation: one `qad` child per node.
pub struct Federation {
    children: Vec<Child>,
    /// The bound loopback address of each node, in node order.
    pub addrs: Vec<String>,
    /// Each node's bound `/metrics` endpoint, in node order (empty
    /// unless spawned via [`Federation::spawn_with_metrics`]).
    pub metrics_addrs: Vec<String>,
}

impl Federation {
    /// Spawns `fed.num_nodes` `qad` processes, each listening on an
    /// ephemeral loopback port, and collects their announced addresses.
    /// `config_path` is handed to every child verbatim. With `trace_dir`
    /// set, node `i` writes its JSONL telemetry to `trace_dir/node<i>.jsonl`.
    ///
    /// # Errors
    /// Spawn or address-discovery failures, as readable text (any
    /// already-started children are killed).
    pub fn spawn(
        fed: &FedConfig,
        qad_bin: &Path,
        config_path: &str,
        trace_dir: Option<&Path>,
    ) -> Result<Federation, String> {
        Federation::spawn_with_metrics(fed, qad_bin, config_path, trace_dir, false)
    }

    /// [`Federation::spawn`], optionally passing `--metrics-addr
    /// 127.0.0.1:0` to every child and collecting the announced
    /// `/metrics` endpoints into [`Federation::metrics_addrs`].
    ///
    /// # Errors
    /// Same as [`Federation::spawn`].
    pub fn spawn_with_metrics(
        fed: &FedConfig,
        qad_bin: &Path,
        config_path: &str,
        trace_dir: Option<&Path>,
        metrics: bool,
    ) -> Result<Federation, String> {
        let mut federation = Federation {
            children: Vec::new(),
            addrs: Vec::new(),
            metrics_addrs: Vec::new(),
        };
        for node in 0..fed.num_nodes {
            let mut cmd = Command::new(qad_bin);
            cmd.arg("--listen")
                .arg("127.0.0.1:0")
                .arg("--node-id")
                .arg(node.to_string())
                .arg("--config")
                .arg(config_path)
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            if let Some(dir) = trace_dir {
                cmd.arg("--trace")
                    .arg(dir.join(format!("node{node}.jsonl")));
            }
            if metrics {
                cmd.arg("--metrics-addr").arg("127.0.0.1:0");
            }
            let mut child = cmd.spawn().map_err(|e| {
                federation.kill();
                format!("spawn {}: {e}", qad_bin.display())
            })?;
            let stdout = child.stdout.take().expect("stdout was piped");
            federation.children.push(child);
            match read_announcements(stdout, metrics) {
                Ok((addr, metrics_addr)) => {
                    federation.addrs.push(addr);
                    federation.metrics_addrs.extend(metrics_addr);
                }
                Err(e) => {
                    federation.kill();
                    return Err(format!("node {node} never announced its address: {e}"));
                }
            }
        }
        Ok(federation)
    }

    /// Connects a driver transport to every node of the federation.
    ///
    /// # Errors
    /// [`ClusterError::Net`] naming the unreachable peer.
    pub fn connect(&self, telemetry: &Telemetry) -> Result<TcpTransport, ClusterError> {
        TcpTransport::connect(&self.addrs, &qa_net::ConnConfig::default(), telemetry)
    }

    /// Waits for every child to exit (they do after a transport
    /// `shutdown`); kills stragglers after a deadline. Returns `true`
    /// when all exited cleanly on their own.
    pub fn wait(mut self) -> bool {
        let deadline = Instant::now() + EXIT_TIMEOUT;
        let mut all_clean = true;
        for child in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        all_clean &= status.success();
                        break;
                    }
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        all_clean = false;
                        break;
                    }
                }
            }
        }
        all_clean
    }

    /// Hard-kills every child (error-path cleanup).
    fn kill(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Reads the `qad listening <addr>` announcement from a child's stdout —
/// plus, with `metrics`, the `qad metrics <addr>` line that follows it.
fn read_announcements(
    stdout: std::process::ChildStdout,
    metrics: bool,
) -> Result<(String, Option<String>), String> {
    // A dedicated reader thread bounds the wait: a child that wedges
    // before binding would otherwise hang the whole spawn.
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let mut reader = std::io::BufReader::new(stdout);
        let mut announced = |prefix: &str| -> Result<String, String> {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => Err("stdout closed before announcement".to_string()),
                Ok(_) => line
                    .trim()
                    .strip_prefix(prefix)
                    .map(str::to_string)
                    .ok_or_else(|| format!("unexpected announcement {line:?}")),
                Err(e) => Err(format!("read stdout: {e}")),
            }
        };
        let result = announced("qad listening ").and_then(|addr| {
            if metrics {
                announced("qad metrics ").map(|m| (addr, Some(m)))
            } else {
                Ok((addr, None))
            }
        });
        let _ = tx.send(result);
    });
    rx.recv_timeout(SPAWN_TIMEOUT)
        .map_err(|_| format!("no announcement within {SPAWN_TIMEOUT:?}"))?
}

/// Collects every node's price vector over the transport.
pub fn collect_prices(transport: &dyn Transport, timeout: Duration) -> Vec<Option<PricesReply>> {
    (0..transport.num_nodes())
        .map(|n| {
            let (tx, rx) = channel();
            if transport.dump_prices(n, tx).is_err() {
                return None;
            }
            rx.recv_timeout(timeout).ok()
        })
        .collect()
}

fn prices_json(prices: &[Option<PricesReply>]) -> Json {
    Json::Obj(
        prices
            .iter()
            .enumerate()
            .map(|(n, p)| {
                let value = match p {
                    None => Json::Null,
                    Some(r) => Json::Arr(r.prices.iter().map(|&v| Json::Float(v)).collect()),
                };
                (format!("node{n}"), value)
            })
            .collect(),
    )
}

/// Scrapes every node's metrics-registry snapshot over the transport.
/// `None` marks a node that never answered within `timeout` (dead, or
/// speaking a pre-v2 protocol without the stats scrape).
pub fn collect_stats(transport: &TcpTransport, timeout: Duration) -> Vec<Option<NodeStats>> {
    (0..transport.num_nodes())
        .map(|n| {
            let (tx, rx) = channel();
            if transport.request_stats(n, tx).is_err() {
                return None;
            }
            rx.recv_timeout(timeout).ok()
        })
        .collect()
}

/// Builds the fleet stats report: per-node digests plus the merged
/// registry. Counters add across nodes, Welford summaries and histograms
/// merge exactly; gauges are last-write-wins and therefore only
/// meaningful per node, which is why the per-node section carries them
/// too.
pub fn fleet_report(stats: &[Option<NodeStats>], prices: &[Option<PricesReply>]) -> Json {
    let merged = MetricsRegistry::new();
    let mut alive = 0i64;
    let nodes = Json::Obj(
        stats
            .iter()
            .enumerate()
            .map(|(n, s)| {
                let detail = match s {
                    None => Json::object([("alive", Json::Bool(false))]),
                    Some(s) => {
                        alive += 1;
                        let snap = Json::parse(&s.json).unwrap_or(Json::Null);
                        merged.merge_snapshot(&snap);
                        let counter = |name: &str| {
                            snap.get("counters")
                                .and_then(|c| c.get(name))
                                .and_then(Json::as_u64)
                                .unwrap_or(0)
                        };
                        let backlog = snap
                            .get("gauges")
                            .and_then(|g| g.get("qad.backlog_ms"))
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0);
                        let price_vec = match prices.get(n).and_then(Option::as_ref) {
                            None => Json::Null,
                            Some(p) => {
                                Json::Arr(p.prices.iter().map(|&v| Json::Float(v)).collect())
                            }
                        };
                        Json::object([
                            ("alive", Json::Bool(true)),
                            (
                                "queries_executed",
                                Json::Int(counter("qad.queries_executed") as i64),
                            ),
                            ("offers_made", Json::Int(counter("qad.offers_made") as i64)),
                            (
                                "offers_rejected",
                                Json::Int(counter("qad.offers_rejected") as i64),
                            ),
                            ("backlog_ms", Json::Float(backlog)),
                            ("prices", price_vec),
                        ])
                    }
                };
                (format!("node{n}"), detail)
            })
            .collect(),
    );
    Json::object([
        ("alive", Json::Int(alive)),
        ("nodes", Json::Int(stats.len() as i64)),
        ("per_node", nodes),
        ("fleet", merged.snapshot()),
    ])
}

/// Renders the per-node liveness table (the human half of `qa-ctl
/// stats`; stdout stays machine-readable JSON).
fn stats_table(report: &Json) -> String {
    let mut out = String::from(
        "node    alive  queries  rejected  backlog_ms  prices\n\
         ------  -----  -------  --------  ----------  ------\n",
    );
    let Some(Json::Obj(nodes)) = report.get("per_node") else {
        return out;
    };
    for (name, d) in nodes {
        let alive = matches!(d.get("alive"), Some(Json::Bool(true)));
        let num = |k: &str| d.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let prices = match d.get("prices") {
            Some(Json::Arr(p)) => p
                .iter()
                .filter_map(Json::as_f64)
                .map(|v| format!("{v:.2}"))
                .collect::<Vec<_>>()
                .join(","),
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{name:<6}  {:<5}  {:>7}  {:>8}  {:>10.1}  {prices}\n",
            if alive { "yes" } else { "NO" },
            num("queries_executed") as u64,
            num("offers_rejected") as u64,
            num("backlog_ms"),
        ));
    }
    out
}

/// Locates the `qad` binary: explicit flag, `QAD_BIN` env, or a sibling
/// of the running executable.
fn find_qad(explicit: Option<String>) -> Result<PathBuf, String> {
    if let Some(p) = explicit {
        return Ok(PathBuf::from(p));
    }
    if let Ok(p) = std::env::var("QAD_BIN") {
        return Ok(PathBuf::from(p));
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = me.with_file_name(if cfg!(windows) { "qad.exe" } else { "qad" });
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "cannot find qad (looked at {}); pass --qad PATH or set QAD_BIN",
            sibling.display()
        ))
    }
}

struct CtlArgs {
    config: Option<String>,
    qad: Option<String>,
    trace: Option<String>,
    trace_dir: Option<String>,
    /// `stats`: scrape these already-running nodes instead of spawning.
    addrs: Option<String>,
    /// `stats`: repeat the scrape on an interval.
    watch: bool,
    /// `stats --watch`: stop after this many rounds (default: forever).
    rounds: Option<u64>,
    /// `stats --watch`: milliseconds between rounds.
    interval_ms: u64,
    /// `stats` spawn mode: also bind per-node `/metrics` endpoints.
    metrics: bool,
}

fn parse_ctl_args(args: &[String]) -> Result<CtlArgs, String> {
    let mut out = CtlArgs {
        config: None,
        qad: None,
        trace: None,
        trace_dir: None,
        addrs: None,
        watch: false,
        rounds: None,
        interval_ms: 2000,
        metrics: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--config" => out.config = Some(take("--config")?),
            "--qad" => out.qad = Some(take("--qad")?),
            "--trace" => out.trace = Some(take("--trace")?),
            "--trace-dir" => out.trace_dir = Some(take("--trace-dir")?),
            "--addrs" => out.addrs = Some(take("--addrs")?),
            "--watch" => out.watch = true,
            "--rounds" => {
                out.rounds = Some(
                    take("--rounds")?
                        .parse()
                        .map_err(|e| format!("--rounds: {e}"))?,
                )
            }
            "--interval-ms" => {
                out.interval_ms = take("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--metrics" => out.metrics = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(out)
}

fn driver_telemetry(trace: &Option<String>) -> Result<Telemetry, String> {
    match trace {
        None => Ok(Telemetry::disabled()),
        Some(path) => Telemetry::to_file(path).map_err(|e| format!("trace {path}: {e}")),
    }
}

/// Spawns the federation, runs the configured workload over TCP, prints a
/// JSON report (Figure-7 aggregates plus per-node post-run price
/// vectors), and tears everything down.
fn cmd_run(args: CtlArgs) -> Result<(), String> {
    let config_path = args.config.ok_or("run requires --config FILE")?;
    let fed = FedConfig::load(&config_path)?;
    let qad_bin = find_qad(args.qad)?;
    let telemetry = driver_telemetry(&args.trace)?;
    if let Some(dir) = &args.trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    }
    let federation = Federation::spawn(
        &fed,
        &qad_bin,
        &config_path,
        args.trace_dir.as_ref().map(Path::new),
    )?;
    let spec = fed.spec();
    let cluster_cfg = fed.cluster_config(telemetry.clone());
    let transport: Arc<dyn Transport> = Arc::new(
        federation
            .connect(&telemetry)
            .map_err(|e| format!("connect: {e}"))?,
    );
    let result = run_workload(&spec, &cluster_cfg, Arc::clone(&transport))
        .map_err(|e| format!("workload: {e}"))?;
    let prices = collect_prices(transport.as_ref(), Duration::from_secs(10));
    transport.shutdown();
    let clean = federation.wait();

    let report = Json::object([
        ("mechanism", Json::Str(result.mechanism.clone())),
        ("queries", Json::Int(result.outcomes.len() as i64)),
        ("failed", Json::Int(result.failed as i64)),
        ("completion_rate", Json::Float(result.completion_rate)),
        ("mean_assign_ms", Json::Float(result.mean_assign_ms)),
        ("mean_total_ms", Json::Float(result.mean_total_ms)),
        ("prices", prices_json(&prices)),
        ("clean_shutdown", Json::Bool(clean)),
    ]);
    println!("{}", report.pretty());
    Ok(())
}

/// Spawns the federation, dumps each node's current price vector without
/// submitting any queries, and tears everything down.
fn cmd_prices(args: CtlArgs) -> Result<(), String> {
    let config_path = args.config.ok_or("prices requires --config FILE")?;
    let fed = FedConfig::load(&config_path)?;
    let qad_bin = find_qad(args.qad)?;
    let telemetry = driver_telemetry(&args.trace)?;
    let federation = Federation::spawn(&fed, &qad_bin, &config_path, None)?;
    let transport = federation
        .connect(&telemetry)
        .map_err(|e| format!("connect: {e}"))?;
    let prices = collect_prices(&transport, Duration::from_secs(10));
    transport.shutdown();
    let clean = federation.wait();
    let report = Json::object([
        ("prices", prices_json(&prices)),
        ("clean_shutdown", Json::Bool(clean)),
    ]);
    println!("{}", report.pretty());
    Ok(())
}

/// One scrape round: stats + prices from every node, merged, printed.
/// `pretty` selects the single-shot pretty layout over watch-mode JSONL.
fn scrape_once(transport: &TcpTransport, timeout: Duration, pretty: bool) -> Json {
    let stats = collect_stats(transport, timeout);
    let prices = collect_prices(transport, timeout);
    let report = fleet_report(&stats, &prices);
    eprint!("{}", stats_table(&report));
    if pretty {
        println!("{}", report.pretty());
    } else {
        println!("{}", report.dump());
    }
    report
}

/// Scrapes the fleet's metrics registries and prints the merged view:
/// aggregate JSON on stdout, a per-node table on stderr. Spawns a fresh
/// federation from `--config`, or attaches to a running one via
/// `--addrs` (attach mode never sends `Shutdown` — observation must not
/// perturb the observed fleet).
fn cmd_stats(args: CtlArgs) -> Result<(), String> {
    let timeout = Duration::from_secs(10);
    let telemetry = driver_telemetry(&args.trace)?;
    let rounds = match (args.watch, args.rounds) {
        (false, _) => 1,
        (true, Some(n)) => n.max(1),
        (true, None) => u64::MAX,
    };
    let scrape_all = |transport: &TcpTransport, pretty: bool| {
        for round in 0..rounds {
            scrape_once(transport, timeout, pretty);
            if round + 1 < rounds {
                std::thread::sleep(Duration::from_millis(args.interval_ms));
            }
        }
    };
    if let Some(list) = &args.addrs {
        let addrs: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if addrs.is_empty() {
            return Err("--addrs needs at least one host:port".to_string());
        }
        let transport = TcpTransport::connect(&addrs, &qa_net::ConnConfig::default(), &telemetry)
            .map_err(|e| format!("connect: {e}"))?;
        scrape_all(&transport, !args.watch);
        // Attach mode must not perturb the observed fleet: sever the
        // connections *before* the transport drops, because `Drop` runs
        // `shutdown()` and would send `Shutdown` to every node.
        transport.disconnect();
        return Ok(());
    }
    let config_path = args
        .config
        .ok_or("stats requires --config FILE (or --addrs)")?;
    let fed = FedConfig::load(&config_path)?;
    let qad_bin = find_qad(args.qad)?;
    let federation =
        Federation::spawn_with_metrics(&fed, &qad_bin, &config_path, None, args.metrics)?;
    for addr in &federation.metrics_addrs {
        eprintln!("metrics endpoint http://{addr}/metrics");
    }
    let transport = federation
        .connect(&telemetry)
        .map_err(|e| format!("connect: {e}"))?;
    scrape_all(&transport, !args.watch);
    transport.shutdown();
    let clean = federation.wait();
    if !clean {
        return Err("federation did not shut down cleanly".to_string());
    }
    Ok(())
}

/// Entry point for the `qa-ctl` binary. Returns the process exit code.
pub fn ctl_main(args: &[String]) -> i32 {
    let usage = "usage: qa-ctl <init|run|prices|stats> [--config FILE] [--qad PATH] \
                 [--trace FILE] [--trace-dir DIR]\n\
                 \x20      qa-ctl stats [--addrs A,B,...] [--watch] [--rounds N] \
                 [--interval-ms MS] [--metrics]";
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{usage}");
        return 2;
    };
    let result = match cmd.as_str() {
        "init" => {
            println!("{}", FedConfig::example().dump());
            Ok(())
        }
        "run" => parse_ctl_args(rest).and_then(cmd_run),
        "prices" => parse_ctl_args(rest).and_then(cmd_prices),
        "stats" => parse_ctl_args(rest).and_then(cmd_stats),
        "--help" | "-h" | "help" => {
            println!("{usage}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{usage}")),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("qa-ctl: {e}");
            1
        }
    }
}
