//! `qa-ctl` — operator tooling for a multi-process federation.
//!
//! Spawns N [`crate::qad`] server processes on loopback ephemeral ports,
//! connects a [`TcpTransport`] to them, and either replays the workload
//! (`run`) or inspects the live market (`prices`). The same JSON
//! federation config ([`FedConfig`]) is handed to every child, so driver
//! and servers agree on the deployment byte-for-byte.
//!
//! ```text
//! qa-ctl init                          # print a starter federation config
//! qa-ctl run    --config fed.json     # spawn, submit queries, report, stop
//! qa-ctl prices --config fed.json     # spawn, dump price vectors, stop
//! ```

use crate::driver::run_workload;
use crate::node::PricesReply;
use crate::qad::FedConfig;
use crate::transport::{TcpTransport, Transport};
use crate::ClusterError;
use qa_simnet::json::Json;
use qa_simnet::telemetry::Telemetry;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long `qa-ctl` waits for a child to bind and announce its address.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(30);

/// How long children get to exit after `Shutdown` before being killed.
const EXIT_TIMEOUT: Duration = Duration::from_secs(10);

/// A spawned multi-process federation: one `qad` child per node.
pub struct Federation {
    children: Vec<Child>,
    /// The bound loopback address of each node, in node order.
    pub addrs: Vec<String>,
}

impl Federation {
    /// Spawns `fed.num_nodes` `qad` processes, each listening on an
    /// ephemeral loopback port, and collects their announced addresses.
    /// `config_path` is handed to every child verbatim. With `trace_dir`
    /// set, node `i` writes its JSONL telemetry to `trace_dir/node<i>.jsonl`.
    ///
    /// # Errors
    /// Spawn or address-discovery failures, as readable text (any
    /// already-started children are killed).
    pub fn spawn(
        fed: &FedConfig,
        qad_bin: &Path,
        config_path: &str,
        trace_dir: Option<&Path>,
    ) -> Result<Federation, String> {
        let mut federation = Federation {
            children: Vec::new(),
            addrs: Vec::new(),
        };
        for node in 0..fed.num_nodes {
            let mut cmd = Command::new(qad_bin);
            cmd.arg("--listen")
                .arg("127.0.0.1:0")
                .arg("--node-id")
                .arg(node.to_string())
                .arg("--config")
                .arg(config_path)
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            if let Some(dir) = trace_dir {
                cmd.arg("--trace")
                    .arg(dir.join(format!("node{node}.jsonl")));
            }
            let mut child = cmd.spawn().map_err(|e| {
                federation.kill();
                format!("spawn {}: {e}", qad_bin.display())
            })?;
            let stdout = child.stdout.take().expect("stdout was piped");
            federation.children.push(child);
            match read_announced_addr(stdout) {
                Ok(addr) => federation.addrs.push(addr),
                Err(e) => {
                    federation.kill();
                    return Err(format!("node {node} never announced its address: {e}"));
                }
            }
        }
        Ok(federation)
    }

    /// Connects a driver transport to every node of the federation.
    ///
    /// # Errors
    /// [`ClusterError::Net`] naming the unreachable peer.
    pub fn connect(&self, telemetry: &Telemetry) -> Result<TcpTransport, ClusterError> {
        TcpTransport::connect(&self.addrs, &qa_net::ConnConfig::default(), telemetry)
    }

    /// Waits for every child to exit (they do after a transport
    /// `shutdown`); kills stragglers after a deadline. Returns `true`
    /// when all exited cleanly on their own.
    pub fn wait(mut self) -> bool {
        let deadline = Instant::now() + EXIT_TIMEOUT;
        let mut all_clean = true;
        for child in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        all_clean &= status.success();
                        break;
                    }
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        all_clean = false;
                        break;
                    }
                }
            }
        }
        all_clean
    }

    /// Hard-kills every child (error-path cleanup).
    fn kill(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Reads the `qad listening <addr>` announcement from a child's stdout.
fn read_announced_addr(stdout: std::process::ChildStdout) -> Result<String, String> {
    // A dedicated reader thread bounds the wait: a child that wedges
    // before binding would otherwise hang the whole spawn.
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let mut line = String::new();
        let mut reader = std::io::BufReader::new(stdout);
        let result = match reader.read_line(&mut line) {
            Ok(0) => Err("stdout closed before announcement".to_string()),
            Ok(_) => match line.trim().strip_prefix("qad listening ") {
                Some(addr) => Ok(addr.to_string()),
                None => Err(format!("unexpected announcement {line:?}")),
            },
            Err(e) => Err(format!("read stdout: {e}")),
        };
        let _ = tx.send(result);
    });
    rx.recv_timeout(SPAWN_TIMEOUT)
        .map_err(|_| format!("no announcement within {SPAWN_TIMEOUT:?}"))?
}

/// Collects every node's price vector over the transport.
pub fn collect_prices(transport: &dyn Transport, timeout: Duration) -> Vec<Option<PricesReply>> {
    (0..transport.num_nodes())
        .map(|n| {
            let (tx, rx) = channel();
            if transport.dump_prices(n, tx).is_err() {
                return None;
            }
            rx.recv_timeout(timeout).ok()
        })
        .collect()
}

fn prices_json(prices: &[Option<PricesReply>]) -> Json {
    Json::Obj(
        prices
            .iter()
            .enumerate()
            .map(|(n, p)| {
                let value = match p {
                    None => Json::Null,
                    Some(r) => Json::Arr(r.prices.iter().map(|&v| Json::Float(v)).collect()),
                };
                (format!("node{n}"), value)
            })
            .collect(),
    )
}

/// Locates the `qad` binary: explicit flag, `QAD_BIN` env, or a sibling
/// of the running executable.
fn find_qad(explicit: Option<String>) -> Result<PathBuf, String> {
    if let Some(p) = explicit {
        return Ok(PathBuf::from(p));
    }
    if let Ok(p) = std::env::var("QAD_BIN") {
        return Ok(PathBuf::from(p));
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = me.with_file_name(if cfg!(windows) { "qad.exe" } else { "qad" });
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "cannot find qad (looked at {}); pass --qad PATH or set QAD_BIN",
            sibling.display()
        ))
    }
}

struct CtlArgs {
    config: Option<String>,
    qad: Option<String>,
    trace: Option<String>,
    trace_dir: Option<String>,
}

fn parse_ctl_args(args: &[String]) -> Result<CtlArgs, String> {
    let mut out = CtlArgs {
        config: None,
        qad: None,
        trace: None,
        trace_dir: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--config" => out.config = Some(take("--config")?),
            "--qad" => out.qad = Some(take("--qad")?),
            "--trace" => out.trace = Some(take("--trace")?),
            "--trace-dir" => out.trace_dir = Some(take("--trace-dir")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(out)
}

fn driver_telemetry(trace: &Option<String>) -> Result<Telemetry, String> {
    match trace {
        None => Ok(Telemetry::disabled()),
        Some(path) => Telemetry::to_file(path).map_err(|e| format!("trace {path}: {e}")),
    }
}

/// Spawns the federation, runs the configured workload over TCP, prints a
/// JSON report (Figure-7 aggregates plus per-node post-run price
/// vectors), and tears everything down.
fn cmd_run(args: CtlArgs) -> Result<(), String> {
    let config_path = args.config.ok_or("run requires --config FILE")?;
    let fed = FedConfig::load(&config_path)?;
    let qad_bin = find_qad(args.qad)?;
    let telemetry = driver_telemetry(&args.trace)?;
    if let Some(dir) = &args.trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    }
    let federation = Federation::spawn(
        &fed,
        &qad_bin,
        &config_path,
        args.trace_dir.as_ref().map(Path::new),
    )?;
    let spec = fed.spec();
    let cluster_cfg = fed.cluster_config(telemetry.clone());
    let transport: Arc<dyn Transport> = Arc::new(
        federation
            .connect(&telemetry)
            .map_err(|e| format!("connect: {e}"))?,
    );
    let result = run_workload(&spec, &cluster_cfg, Arc::clone(&transport))
        .map_err(|e| format!("workload: {e}"))?;
    let prices = collect_prices(transport.as_ref(), Duration::from_secs(10));
    transport.shutdown();
    let clean = federation.wait();

    let report = Json::object([
        ("mechanism", Json::Str(result.mechanism.clone())),
        ("queries", Json::Int(result.outcomes.len() as i64)),
        ("failed", Json::Int(result.failed as i64)),
        ("completion_rate", Json::Float(result.completion_rate)),
        ("mean_assign_ms", Json::Float(result.mean_assign_ms)),
        ("mean_total_ms", Json::Float(result.mean_total_ms)),
        ("prices", prices_json(&prices)),
        ("clean_shutdown", Json::Bool(clean)),
    ]);
    println!("{}", report.pretty());
    Ok(())
}

/// Spawns the federation, dumps each node's current price vector without
/// submitting any queries, and tears everything down.
fn cmd_prices(args: CtlArgs) -> Result<(), String> {
    let config_path = args.config.ok_or("prices requires --config FILE")?;
    let fed = FedConfig::load(&config_path)?;
    let qad_bin = find_qad(args.qad)?;
    let telemetry = driver_telemetry(&args.trace)?;
    let federation = Federation::spawn(&fed, &qad_bin, &config_path, None)?;
    let transport = federation
        .connect(&telemetry)
        .map_err(|e| format!("connect: {e}"))?;
    let prices = collect_prices(&transport, Duration::from_secs(10));
    transport.shutdown();
    let clean = federation.wait();
    let report = Json::object([
        ("prices", prices_json(&prices)),
        ("clean_shutdown", Json::Bool(clean)),
    ]);
    println!("{}", report.pretty());
    Ok(())
}

/// Entry point for the `qa-ctl` binary. Returns the process exit code.
pub fn ctl_main(args: &[String]) -> i32 {
    let usage = "usage: qa-ctl <init|run|prices> [--config FILE] [--qad PATH] \
                 [--trace FILE] [--trace-dir DIR]";
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{usage}");
        return 2;
    };
    let result = match cmd.as_str() {
        "init" => {
            println!("{}", FedConfig::example().dump());
            Ok(())
        }
        "run" => parse_ctl_args(rest).and_then(cmd_run),
        "prices" => parse_ctl_args(rest).and_then(cmd_prices),
        "--help" | "-h" | "help" => {
            println!("{usage}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{usage}")),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("qa-ctl: {e}");
            1
        }
    }
}
