//! # qa-cluster — the "real implementation" of QA-NT (§5.2)
//!
//! The paper deploys its pricing mechanism on five heterogeneous Windows
//! PCs running a commercial RDBMS: 20 tables (1 GB), 80 select-project
//! views with 2–4 copies each, a 300-query workload of
//! select-join-project-group star queries, uniform inter-arrival, and a
//! two-step cost estimator (`EXPLAIN PLAN` + per-plan execution history).
//!
//! This crate is the open equivalent: five OS threads, each owning a live
//! [`qa_minidb::Database`] instance, exchanging messages over
//! `std::sync::mpsc` channels. Heterogeneity comes from per-node slowdown factors (the
//! paper's 1.3–3.06 GHz spread, where the same query took 1 s on the
//! fastest and 14 s on the slowest machine) and one high-latency link (the
//! paper's 54 Mb wireless PC). Because nodes are single-threaded — like a
//! DBMS worker saturated by a query — a busy node answers `EXPLAIN`
//! requests late, reproducing the paper's observation that assignment took
//! seconds because "the slowest of the PCs took up to 3 seconds to evaluate
//! an EXPLAIN PLAN statement".
//!
//! Scale substitution: data sizes and timings are scaled down ~100× (tables
//! of hundreds of rows, queries of milliseconds) so the experiment runs in
//! CI; all comparisons are relative, which is what Figure 7 reports.
//!
//! * [`setup`] — deployment generator: tables, views, copies, query classes,
//! * [`node`] — the node thread: minidb + QA-NT market state + estimator,
//!   optionally behind a lossy link ([`spawn_node_with_faults`]),
//! * [`driver`] — the experiment driver: workload replay, allocation
//!   protocols (Greedy and QA-NT), Figure-7 measurements, crash injection
//!   and loss-tolerant reply collection,
//! * [`error`] — the [`ClusterError`] taxonomy for environmental failures
//!   (the protocol paths never panic).

pub mod ctl;
pub mod driver;
pub mod error;
pub mod explore;
pub mod metrics_http;
pub mod node;
pub mod qad;
pub mod setup;
pub mod simtransport;
pub mod transport;

pub use driver::{
    qant_config_for, run_experiment, run_workload, spawn_fleet, ClusterConfig, ClusterMechanism,
    ExperimentResult,
};
pub use error::ClusterError;
pub use explore::{
    explore_random, explore_systematic, run_schedule, run_seed, run_trail, ExploreConfig,
    ExploreMechanism, ExploreReport, ScheduleOutcome, Violation,
};
pub use node::{spawn_node, spawn_node_with_faults, NodeHandle, NodeMsg};
pub use qad::FedConfig;
pub use setup::{ClusterSpec, QueryClassSpec};
pub use simtransport::{SharedSchedule, SimNodeState, SimTransport};
pub use transport::{ChannelTransport, NodeStats, TcpTransport, Transport};
