//! A deterministic, schedule-driven [`Transport`]: the virtual network
//! under the model-checking harness in [`crate::explore`].
//!
//! Where [`crate::transport::ChannelTransport`] runs real node threads
//! and [`crate::transport::TcpTransport`] real sockets, `SimTransport`
//! runs **model nodes** (the market state machine without minidb or
//! threads) over an in-memory message queue, and resolves every piece of
//! nondeterminism — which in-flight message is delivered next, whether a
//! request or its reply is dropped, when a node crashes — through an
//! explicit [`Schedule`]. One schedule = one fully deterministic
//! interleaving; a seed or a recorded choice trail replays it exactly.
//!
//! The driver side stays the real [`Transport`] contract: requests are
//! asynchronous sends whose replies arrive on the caller's `Sender` or
//! never do, a send to a crashed node fails immediately, and a dropped
//! reply surfaces as a disconnected `Receiver`. The protocol under test
//! cannot tell this network from the threaded one — which is the point.
//!
//! Query identity crosses the seam the same way it does over TCP: encoded
//! in the SQL text. The harness formats requests as
//! `"q=<id> gen=<generation> class=<class>"` (see [`encode_sql`]), and
//! model nodes log every execution as a `(query, generation)` pair so the
//! invariant checks can audit double assignment across crash re-entry.

use crate::error::ClusterError;
use crate::node::{EstimateReply, ExecReply, OfferReply, PricesReply};
use crate::transport::Transport;
use qa_simnet::sched::Schedule;
use qa_simnet::telemetry::{PriceReason, Telemetry, TelemetryEvent};
use qa_workload::ClassId;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};

/// Multiplicative price raise on rejection (§3.1's `×(1 + λ)`).
const LAMBDA: f64 = 0.25;
/// Multiplicative price decay on leftover supply at period end (§3.2).
const MU: f64 = 0.10;
/// Prices never decay below this floor.
const PRICE_FLOOR: f64 = 1e-6;
/// Virtual microseconds per delivered network step (telemetry clock).
const STEP_US: u64 = 1_000;

/// Formats the harness SQL carrying query identity across the transport
/// seam.
pub fn encode_sql(query: u64, generation: u32, class: ClassId) -> String {
    format!("q={query} gen={generation} class={}", class.0)
}

/// Parses one `key=value` field out of a harness SQL string.
fn sql_field(sql: &str, key: &str) -> Option<u64> {
    sql.split_whitespace()
        .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
}

/// One committed execution on a model node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Execution {
    /// The query's trace index.
    pub query: u64,
    /// The assignment generation that executed it.
    pub generation: u32,
}

/// The market state machine of one model node: per-class private prices
/// and per-period supply, a backlog estimate, and an execution audit log.
#[derive(Debug, Clone)]
pub struct SimNodeState {
    /// Node index.
    pub id: usize,
    /// `true` once crashed (schedule-chosen or driver-injected).
    pub crashed: bool,
    /// Per-class private prices.
    pub prices: Vec<f64>,
    /// Per-class units still offered this period.
    pub supply: Vec<u32>,
    /// Per-class base execution estimate in milliseconds.
    pub exec_ms: Vec<f64>,
    /// Queued work in milliseconds (completion-time estimates add this).
    pub backlog_ms: f64,
    /// Every execution this node ever committed, in order.
    pub executions: Vec<Execution>,
    /// Per-class supply level restored at each period boundary.
    period_supply_level: u32,
}

impl SimNodeState {
    fn new(id: usize, num_classes: usize, supply_per_period: u32) -> SimNodeState {
        SimNodeState {
            id,
            crashed: false,
            prices: vec![1.0; num_classes],
            supply: vec![supply_per_period; num_classes],
            // Heterogeneous but deterministic: node i is (1 + i/4)× the
            // base cost, and each class is 10 ms heavier than the last.
            exec_ms: (0..num_classes)
                .map(|c| (10.0 + 10.0 * c as f64) * (1.0 + id as f64 / 4.0))
                .collect(),
            backlog_ms: 0.0,
            executions: Vec::new(),
            period_supply_level: supply_per_period,
        }
    }
}

/// A request parked in the virtual network, waiting for the schedule to
/// deliver or drop it.
enum SimMsg {
    Estimate {
        class: usize,
        reply: Sender<EstimateReply>,
    },
    Offer {
        class: usize,
        reply: Sender<OfferReply>,
    },
    Execute {
        class: usize,
        query: u64,
        generation: u32,
        reply: Sender<ExecReply>,
    },
    Prices {
        reply: Sender<PricesReply>,
    },
    Tick,
}

impl SimMsg {
    fn label(&self) -> &'static str {
        match self {
            SimMsg::Estimate { .. } => "estimate",
            SimMsg::Offer { .. } => "offer",
            SimMsg::Execute { .. } => "execute",
            SimMsg::Prices { .. } => "prices",
            SimMsg::Tick => "tick",
        }
    }
}

struct InFlight {
    node: usize,
    msg: SimMsg,
}

/// Counters the harness reports per schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Network steps taken (deliveries, drops, and crash injections).
    pub steps: u64,
    /// Requests delivered to a node.
    pub delivered: u64,
    /// Requests dropped by the schedule.
    pub dropped_requests: u64,
    /// Replies dropped by the schedule.
    pub dropped_replies: u64,
    /// Virtual steps at which a crash was injected.
    pub crash_steps: Vec<u64>,
}

struct SimWorld {
    nodes: Vec<SimNodeState>,
    inflight: Vec<InFlight>,
    crash_budget: u32,
    stats: NetStats,
    /// When set, every execution is committed twice — a deliberately
    /// broken node used to prove the invariant checker catches it.
    inject_double_exec: bool,
}

/// The schedule handle shared between the virtual network and the
/// harness driver: both resolve their choice points through the same
/// underlying [`Schedule`], so one trail replays the whole run.
#[derive(Clone)]
pub struct SharedSchedule(Arc<Mutex<Box<dyn Schedule + Send>>>);

impl SharedSchedule {
    /// Wraps a schedule for sharing.
    pub fn new(schedule: Box<dyn Schedule + Send>) -> SharedSchedule {
        SharedSchedule(Arc::new(Mutex::new(schedule)))
    }

    /// Resolves one choice point. Arity-1 points resolve to 0 without
    /// consulting (or recording in) the schedule: a forced move is not a
    /// choice, and skipping it keeps the systematic depth budget for
    /// positions that actually branch.
    pub fn choose(&self, point: &'static str, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        self.0.lock().unwrap().choose(point, n)
    }

    /// The schedule's self-description (seed, systematic index, …).
    pub fn describe(&self) -> String {
        self.0.lock().unwrap().describe()
    }

    /// The compact `point:chosen/arity` trail walked so far.
    pub fn trail_string(&self) -> String {
        self.0.lock().unwrap().trail().to_string()
    }

    /// The raw chosen indices (for [`qa_simnet::sched::ReplaySchedule`]).
    pub fn trail_indices(&self) -> Vec<u32> {
        self.0.lock().unwrap().trail().indices()
    }

    /// Consumes the wrapper, returning the schedule (for
    /// [`qa_simnet::sched::SystematicExplorer::finish`]).
    ///
    /// # Panics
    /// Panics if other clones of this handle are still alive.
    pub fn into_inner(self) -> Box<dyn Schedule + Send> {
        Arc::try_unwrap(self.0)
            .map_err(|_| ())
            .expect("SharedSchedule still shared")
            .into_inner()
            .unwrap()
    }
}

/// The deterministic virtual-network transport. See the module docs.
pub struct SimTransport {
    world: Mutex<SimWorld>,
    schedule: SharedSchedule,
    telemetry: Telemetry,
}

impl SimTransport {
    /// A fleet of `num_nodes` model nodes, all pricing `num_classes`
    /// classes with `supply_per_period` units each, whose nondeterminism
    /// is resolved by `schedule`. Up to `crash_budget` schedule-chosen
    /// crashes are injected at network steps of the schedule's choosing.
    pub fn new(
        num_nodes: usize,
        num_classes: usize,
        supply_per_period: u32,
        crash_budget: u32,
        schedule: SharedSchedule,
        telemetry: Telemetry,
    ) -> SimTransport {
        SimTransport {
            world: Mutex::new(SimWorld {
                nodes: (0..num_nodes)
                    .map(|id| SimNodeState::new(id, num_classes, supply_per_period))
                    .collect(),
                inflight: Vec::new(),
                crash_budget,
                stats: NetStats::default(),
                inject_double_exec: false,
            }),
            schedule,
            telemetry,
        }
    }

    /// Arms the deliberate double-commit bug (harness self-test: the
    /// invariant checker must flag runs with this set).
    pub fn inject_double_exec(&self) {
        self.world.lock().unwrap().inject_double_exec = true;
    }

    /// Messages currently in the virtual network.
    pub fn pending_messages(&self) -> usize {
        self.world.lock().unwrap().inflight.len()
    }

    /// Snapshot of every model node's state.
    pub fn node_states(&self) -> Vec<SimNodeState> {
        self.world.lock().unwrap().nodes.clone()
    }

    /// Network counters so far.
    pub fn stats(&self) -> NetStats {
        self.world.lock().unwrap().stats.clone()
    }

    /// Un-crashes every node (driver reconnect after recovery). Market
    /// state survives — exactly like a `qad` server outliving its driver.
    pub fn recover_all(&self) {
        let mut world = self.world.lock().unwrap();
        for node in &mut world.nodes {
            if node.crashed {
                node.crashed = false;
                let id = node.id as u32;
                self.telemetry
                    .emit(|| TelemetryEvent::NodeRecovered { node: id });
            }
        }
    }

    /// Takes one schedule-chosen network step: possibly inject a crash,
    /// else pick an in-flight message, decide drop-vs-deliver, process it
    /// on the model node, and decide whether the reply survives. Returns
    /// `false` when the network is idle (nothing in flight, no step
    /// taken).
    pub fn step(&self) -> bool {
        let mut world = self.world.lock().unwrap();
        let world = &mut *world;
        if world.inflight.is_empty() {
            return false;
        }
        world.stats.steps += 1;
        self.telemetry.set_now_us(world.stats.steps * STEP_US);

        // Crash choice point: alternative 0 is "no crash"; alternative
        // 1 + k crashes the k-th live node. Only offered while budget
        // remains and more than one node is still alive.
        let live: Vec<usize> = world
            .nodes
            .iter()
            .filter(|n| !n.crashed)
            .map(|n| n.id)
            .collect();
        if world.crash_budget > 0 && live.len() > 1 {
            let pick = self.schedule.choose("crash", 1 + live.len());
            if pick > 0 {
                let victim = live[pick - 1];
                world.nodes[victim].crashed = true;
                world.crash_budget -= 1;
                let step = world.stats.steps;
                world.stats.crash_steps.push(step);
                // Everything in flight to the victim dies with it; the
                // dropped reply senders disconnect the waiting receivers.
                world.inflight.retain(|m| m.node != victim);
                self.telemetry.emit(|| TelemetryEvent::NodeCrashed {
                    node: victim as u32,
                });
                return true;
            }
        }

        let idx = self.schedule.choose("deliver", world.inflight.len());
        let InFlight { node, msg } = world.inflight.remove(idx);
        if self.schedule.choose("drop", 2) == 1 {
            world.stats.dropped_requests += 1;
            let context = format!("{} request dropped", msg.label());
            self.telemetry.emit(|| TelemetryEvent::MessageDropped {
                node: node as u32,
                context,
            });
            return true; // senders drop here → waiter disconnects
        }
        world.stats.delivered += 1;
        let drop_reply = |world: &mut SimWorld, this: &SimTransport, label: &str| -> bool {
            let dropped = this.schedule.choose("reply_drop", 2) == 1;
            if dropped {
                world.stats.dropped_replies += 1;
                let context = format!("{label} reply dropped");
                this.telemetry.emit(|| TelemetryEvent::MessageDropped {
                    node: node as u32,
                    context,
                });
            }
            dropped
        };
        match msg {
            SimMsg::Estimate { class, reply } => {
                let exec_ms = world.nodes[node].exec_ms[class] + world.nodes[node].backlog_ms;
                if !drop_reply(world, self, "estimate") {
                    let _ = reply.send(EstimateReply { node, exec_ms });
                }
            }
            SimMsg::Offer { class, reply } => {
                let n = &mut world.nodes[node];
                let offered = n.supply[class] > 0;
                let completion_ms = n.backlog_ms + n.exec_ms[class];
                if !offered {
                    // §3.1: a refusal raises the private price ×(1 + λ).
                    let old = n.prices[class];
                    n.prices[class] = old * (1.0 + LAMBDA);
                    let new = n.prices[class];
                    self.telemetry.emit(|| TelemetryEvent::RequestRejected {
                        node: node as u32,
                        class: class as u32,
                    });
                    self.telemetry.emit(|| TelemetryEvent::PriceAdjusted {
                        node: node as u32,
                        class: class as u32,
                        old,
                        new,
                        reason: PriceReason::Rejection,
                    });
                }
                if !drop_reply(world, self, "offer") {
                    let _ = reply.send(OfferReply {
                        node,
                        offered,
                        completion_ms,
                    });
                }
            }
            SimMsg::Execute {
                class,
                query,
                generation,
                reply,
            } => {
                let double = world.inject_double_exec;
                let n = &mut world.nodes[node];
                n.executions.push(Execution { query, generation });
                if double {
                    n.executions.push(Execution { query, generation });
                }
                n.supply[class] = n.supply[class].saturating_sub(1);
                let exec_ms = n.exec_ms[class];
                n.backlog_ms += exec_ms;
                if !drop_reply(world, self, "execute") {
                    let _ = reply.send(ExecReply {
                        node,
                        rows: 1,
                        exec_ms,
                        error: None,
                    });
                }
            }
            SimMsg::Prices { reply } => {
                let prices = world.nodes[node].prices.clone();
                if !drop_reply(world, self, "prices") {
                    let _ = reply.send(PricesReply { node, prices });
                }
            }
            SimMsg::Tick => {
                let n = &mut world.nodes[node];
                for class in 0..n.prices.len() {
                    if n.supply[class] > 0 {
                        // §3.2: leftover supply decays the price.
                        let old = n.prices[class];
                        n.prices[class] = (old * (1.0 - MU)).max(PRICE_FLOOR);
                        let new = n.prices[class];
                        self.telemetry.emit(|| TelemetryEvent::PriceAdjusted {
                            node: node as u32,
                            class: class as u32,
                            old,
                            new,
                            reason: PriceReason::PeriodDecay,
                        });
                    }
                }
                let fresh = n.tick_supply();
                n.backlog_ms = 0.0;
                let budget_ms = n.exec_ms.iter().sum::<f64>();
                let supply: Vec<u64> = fresh.iter().map(|&s| s as u64).collect();
                self.telemetry.emit(|| TelemetryEvent::SupplyComputed {
                    node: node as u32,
                    budget_ms,
                    supply,
                });
            }
        }
        true
    }

    /// Delivers everything still in flight with benign choices (no drops,
    /// FIFO order) and **without** consuming schedule choice points —
    /// the post-run drain the invariant checks use to quiesce the
    /// network before auditing state.
    pub fn drain(&self) {
        loop {
            let msg = {
                let mut world = self.world.lock().unwrap();
                if world.inflight.is_empty() {
                    break;
                }
                world.stats.steps += 1;
                world.stats.delivered += 1;
                world.inflight.remove(0)
            };
            self.deliver_benign(msg);
        }
    }

    /// Processes one message with no loss and no price side channels
    /// beyond the node's normal handling.
    fn deliver_benign(&self, InFlight { node, msg }: InFlight) {
        let mut world = self.world.lock().unwrap();
        let world = &mut *world;
        match msg {
            SimMsg::Estimate { class, reply } => {
                let exec_ms = world.nodes[node].exec_ms[class] + world.nodes[node].backlog_ms;
                let _ = reply.send(EstimateReply { node, exec_ms });
            }
            SimMsg::Offer { class, reply } => {
                let n = &mut world.nodes[node];
                let offered = n.supply[class] > 0;
                let completion_ms = n.backlog_ms + n.exec_ms[class];
                if !offered {
                    let old = n.prices[class];
                    n.prices[class] = old * (1.0 + LAMBDA);
                }
                let _ = reply.send(OfferReply {
                    node,
                    offered,
                    completion_ms,
                });
            }
            SimMsg::Execute {
                class,
                query,
                generation,
                reply,
            } => {
                let double = world.inject_double_exec;
                let n = &mut world.nodes[node];
                n.executions.push(Execution { query, generation });
                if double {
                    n.executions.push(Execution { query, generation });
                }
                n.supply[class] = n.supply[class].saturating_sub(1);
                let exec_ms = n.exec_ms[class];
                n.backlog_ms += exec_ms;
                let _ = reply.send(ExecReply {
                    node,
                    rows: 1,
                    exec_ms,
                    error: None,
                });
            }
            SimMsg::Prices { reply } => {
                let prices = world.nodes[node].prices.clone();
                let _ = reply.send(PricesReply { node, prices });
            }
            SimMsg::Tick => {
                let n = &mut world.nodes[node];
                for class in 0..n.prices.len() {
                    if n.supply[class] > 0 {
                        n.prices[class] = (n.prices[class] * (1.0 - MU)).max(PRICE_FLOOR);
                    }
                }
                n.tick_supply();
                n.backlog_ms = 0.0;
            }
        }
    }

    fn post(&self, phase: &'static str, node: usize, msg: SimMsg) -> Result<(), ClusterError> {
        let mut world = self.world.lock().unwrap();
        if world.nodes[node].crashed {
            return Err(ClusterError::ChannelClosed { phase, node });
        }
        world.inflight.push(InFlight { node, msg });
        Ok(())
    }

    fn class_of(sql: &str) -> usize {
        sql_field(sql, "class").unwrap_or(0) as usize
    }
}

impl SimNodeState {
    /// Period boundary: refills supply to the per-period level inferred
    /// from the starting configuration (uniform across classes). Returns
    /// the fresh supply vector.
    fn tick_supply(&mut self) -> Vec<u32> {
        let level = self.period_supply_level;
        for s in &mut self.supply {
            *s = level;
        }
        self.supply.clone()
    }
}

impl Transport for SimTransport {
    fn num_nodes(&self) -> usize {
        self.world.lock().unwrap().nodes.len()
    }

    fn estimate(
        &self,
        node: usize,
        sql: &str,
        reply: Sender<EstimateReply>,
    ) -> Result<(), ClusterError> {
        let class = Self::class_of(sql);
        self.post("estimate", node, SimMsg::Estimate { class, reply })
    }

    fn call_for_offers(
        &self,
        node: usize,
        class: ClassId,
        _sql: &str,
        reply: Sender<OfferReply>,
    ) -> Result<(), ClusterError> {
        self.post(
            "offer",
            node,
            SimMsg::Offer {
                class: class.0 as usize,
                reply,
            },
        )
    }

    fn execute(
        &self,
        node: usize,
        class: ClassId,
        sql: &str,
        reply: Sender<ExecReply>,
    ) -> Result<(), ClusterError> {
        let query = sql_field(sql, "q").unwrap_or(u64::MAX);
        let generation = sql_field(sql, "gen").unwrap_or(0) as u32;
        self.post(
            "execute",
            node,
            SimMsg::Execute {
                class: class.0 as usize,
                query,
                generation,
                reply,
            },
        )
    }

    fn period_tick(&self, node: usize) -> Result<(), ClusterError> {
        self.post("tick", node, SimMsg::Tick)
    }

    fn dump_prices(&self, node: usize, reply: Sender<PricesReply>) -> Result<(), ClusterError> {
        self.post("prices", node, SimMsg::Prices { reply })
    }

    fn shutdown_node(&self, node: usize) {
        let mut world = self.world.lock().unwrap();
        world.nodes[node].crashed = true;
        world.inflight.retain(|m| m.node != node);
    }

    fn shutdown(&self) {
        let mut world = self.world.lock().unwrap();
        world.inflight.clear();
    }
}
