//! The node thread: a live minidb instance plus QA-NT market state.
//!
//! Each node is one OS thread with a mailbox. It processes messages
//! strictly in order, exactly like a saturated single-worker DBMS: while a
//! query executes, `EXPLAIN`/estimate requests queue behind it — the
//! mechanism behind the paper's "the slowest of the PCs took up to 3
//! seconds to evaluate an EXPLAIN PLAN statement".
//!
//! Cost estimation is the paper's two-step §5.2 scheme: `EXPLAIN` the
//! query, then use per-plan-fingerprint execution history
//! ([`qa_core::PlanHistoryEstimator`]) to correct the optimizer's prior.

use crate::setup::ClusterSpec;
use qa_core::{PlanHistoryEstimator, QantConfig, QantNode};
use qa_minidb::Database;
use qa_simnet::telemetry::{Counter, Gauge, HistogramHandle, Telemetry, TelemetryEvent};
use qa_simnet::{DetRng, LinkFaults, SimTime};
use qa_workload::ClassId;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Salt separating each node's fault stream from its price-jitter stream.
const FAULT_SALT: u64 = 0xFA17_0002;

/// A message to a node.
pub enum NodeMsg {
    /// Greedy's estimate poll: reply with the history-corrected execution
    /// estimate (EXPLAIN + history), *without* queue information — the
    /// client cannot see other clients' outstanding work (§4's greedy).
    Estimate {
        /// The SQL to estimate.
        sql: String,
        /// Where to send the reply.
        reply: Sender<EstimateReply>,
    },
    /// QA-NT's call-for-offers.
    CallForOffers {
        /// The query's class.
        class: ClassId,
        /// The SQL (for the execution-time estimate backing the offer).
        sql: String,
        /// Where to send the reply.
        reply: Sender<OfferReply>,
    },
    /// Execute a query (the accepted assignment).
    Execute {
        /// The SQL.
        sql: String,
        /// Class (for QA-NT supply bookkeeping).
        class: ClassId,
        /// Where to send the result.
        reply: Sender<ExecReply>,
    },
    /// A QA-NT period boundary.
    PeriodTick,
    /// Report the node's current per-class price vector (empty for a
    /// Greedy node, which has no market state). Used by operator tooling
    /// (`qa-ctl prices`) to inspect a live federation.
    DumpPrices {
        /// Where to send the reply.
        reply: Sender<PricesReply>,
    },
    /// Shut the node down.
    Shutdown,
}

/// Reply to [`NodeMsg::Estimate`].
#[derive(Debug, Clone, Copy)]
pub struct EstimateReply {
    /// The responding node.
    pub node: usize,
    /// History-corrected execution estimate (ms).
    pub exec_ms: f64,
}

/// Reply to [`NodeMsg::CallForOffers`].
#[derive(Debug, Clone, Copy)]
pub struct OfferReply {
    /// The responding node.
    pub node: usize,
    /// Whether the node offers (QA-NT supply available).
    pub offered: bool,
    /// Estimated completion (queue backlog + execution), ms. The server
    /// voluntarily includes its own backlog — autonomy-preserving.
    pub completion_ms: f64,
}

/// Reply to [`NodeMsg::Execute`].
#[derive(Debug, Clone)]
pub struct ExecReply {
    /// The executing node.
    pub node: usize,
    /// Rows returned (row count only; the driver does not need payloads).
    pub rows: usize,
    /// Measured execution time (ms, wall clock including slowdown).
    pub exec_ms: f64,
    /// Error text, if the query failed.
    pub error: Option<String>,
}

/// Reply to [`NodeMsg::DumpPrices`].
#[derive(Debug, Clone)]
pub struct PricesReply {
    /// The responding node.
    pub node: usize,
    /// Per-class private prices (empty when the node runs no market).
    pub prices: Vec<f64>,
}

/// A handle to a spawned node.
pub struct NodeHandle {
    /// The node index.
    pub id: usize,
    /// Its mailbox.
    pub sender: Sender<NodeMsg>,
    join: JoinHandle<()>,
}

impl NodeHandle {
    /// Requests shutdown and joins the thread.
    pub fn shutdown(self) {
        let _ = self.sender.send(NodeMsg::Shutdown);
        let _ = self.join.join();
    }
}

/// Metric handles the node worker feeds, resolved once at spawn from the
/// telemetry registry (`None` when telemetry carries no registry — the
/// serving path then costs a single branch per message). Resolving at
/// spawn also *pre-registers* every family, so a stats scrape of an idle
/// node already lists them at zero instead of omitting them.
struct NodeMetrics {
    estimates_served: Counter,
    offers_made: Counter,
    offers_rejected: Counter,
    queries_executed: Counter,
    queries_failed: Counter,
    periods: Counter,
    /// Per-class rejection counters, indexed by [`ClassId::index`].
    rejected_by_class: Vec<Counter>,
    backlog_ms: Gauge,
    exec_ms: HistogramHandle,
    period_ms: HistogramHandle,
}

impl NodeMetrics {
    fn resolve(telemetry: &Telemetry, num_classes: usize) -> Option<NodeMetrics> {
        let r = telemetry.registry()?;
        Some(NodeMetrics {
            estimates_served: r.counter("qad.estimates_served"),
            offers_made: r.counter("qad.offers_made"),
            offers_rejected: r.counter("qad.offers_rejected"),
            queries_executed: r.counter("qad.queries_executed"),
            queries_failed: r.counter("qad.queries_failed"),
            periods: r.counter("qad.periods"),
            rejected_by_class: (0..num_classes)
                .map(|k| r.counter(&format!("qad.rejected.class{k}")))
                .collect(),
            backlog_ms: r.gauge("qad.backlog_ms"),
            exec_ms: r.histogram("qad.exec_ms"),
            period_ms: r.histogram("qad.period_ms"),
        })
    }
}

/// Internal node state.
struct NodeWorker {
    id: usize,
    db: Database,
    estimator: PlanHistoryEstimator,
    qant: Option<QantNode>,
    spec_classes: Vec<(ClassId, String)>,
    /// Estimated outstanding work (ms) — grows on Execute, shrinks after.
    backlog_ms: f64,
    slowdown: f64,
    link_latency: Duration,
    inbox: Receiver<NodeMsg>,
    /// Fault behaviour of this node's link (negotiation replies only —
    /// see [`NodeWorker::run`]). [`LinkFaults::none`] is zero-cost.
    faults: LinkFaults,
    /// Dedicated fault stream; untouched when `faults` is disabled.
    fault_rng: DetRng,
    /// Wall-clock origin mapping outage windows (virtual [`SimTime`]
    /// offsets) onto this run's elapsed time.
    epoch: Instant,
    /// Telemetry handle labelled with this node's index. The shared clock
    /// is stamped from `epoch.elapsed()` per message, so cluster traces
    /// carry wall-clock timestamps (and are *not* byte-deterministic,
    /// unlike the simulator's).
    telemetry: Telemetry,
    /// Registry-backed metric handles (`None` without a registry).
    metrics: Option<NodeMetrics>,
    /// Wall clock of the last period tick, for the period-duration
    /// histogram.
    last_tick: Instant,
}

/// Spawns a node thread: loads its share of the data, optionally arms the
/// QA-NT market (with jittered initial prices), and serves its mailbox.
/// The link is fault-free; see [`spawn_node_with_faults`] for lossy links.
pub fn spawn_node(
    spec: &ClusterSpec,
    node: usize,
    data_seed: u64,
    qant_config: Option<QantConfig>,
) -> NodeHandle {
    spawn_node_with_faults(
        spec,
        node,
        data_seed,
        qant_config,
        LinkFaults::none(),
        Instant::now(),
        Telemetry::disabled(),
    )
}

/// Spawns a node whose *negotiation replies* traverse a faulty link:
/// estimate and offer replies may be dropped (per `faults.drop_prob` and
/// its outage windows, with window offsets measured from `epoch`) or
/// delayed by jitter. `Execute` replies are never dropped — assignments
/// travel over a reliable (TCP-like) connection, matching the paper's
/// deployment where only the chatty estimate traffic crossed the flaky
/// wireless link. The fault stream is seeded from `data_seed` and the node
/// index, so a run is reproducible given its spec and seed.
///
/// `telemetry` observes the node's market events and reply losses; it is
/// relabelled with the node index, and its clock is stamped from
/// `epoch.elapsed()` (wall-clock) per message. Pass
/// [`Telemetry::disabled`] for a silent node.
#[allow(clippy::too_many_arguments)]
pub fn spawn_node_with_faults(
    spec: &ClusterSpec,
    node: usize,
    data_seed: u64,
    qant_config: Option<QantConfig>,
    faults: LinkFaults,
    epoch: Instant,
    telemetry: Telemetry,
) -> NodeHandle {
    let (tx, rx) = channel();
    let statements = spec.node_statements(node);
    let tables: Vec<(String, Vec<qa_minidb::value::Row>)> = spec
        .tables
        .iter()
        .filter(|t| t.copies.contains(&node))
        .map(|t| (t.name.clone(), spec.table_rows(t, data_seed)))
        .collect();
    // A representative instance of each locally-evaluable class, used to
    // refresh per-class execution estimates at each period tick.
    let spec_classes: Vec<(ClassId, String)> = spec
        .classes
        .iter()
        .filter(|c| spec.capable_nodes(c.id).contains(&node))
        .map(|c| (c.id, c.instantiate((c.const_range.0 + c.const_range.1) / 2)))
        .collect();
    let slowdown = spec.slowdown[node];
    let link_latency = Duration::from_micros(spec.link_latency_us[node]);
    let num_classes = spec.classes.len();
    let telemetry = telemetry.with_label(node as u32);
    let qant = qant_config.map(|cfg| {
        let mut rng = DetRng::seed_from_u64(data_seed ^ (node as u64).wrapping_mul(0x9E37));
        let mut q = QantNode::with_jitter(num_classes, cfg, &mut rng);
        q.set_telemetry(telemetry.clone());
        q
    });

    let fault_rng =
        DetRng::seed_from_u64(data_seed ^ (node as u64).wrapping_mul(0x9E37) ^ FAULT_SALT);
    let metrics = NodeMetrics::resolve(&telemetry, num_classes);
    let join = std::thread::Builder::new()
        .name(format!("qa-node-{node}"))
        .spawn(move || {
            let mut db = Database::new();
            for s in &statements {
                // Programmer-error invariant: `ClusterSpec` generates this
                // DDL itself; a parse/execution failure means the generator
                // and the engine disagree, which no retry can fix.
                db.execute(s).expect("spec-generated DDL must execute");
            }
            for (name, rows) in tables {
                // Same invariant: rows are generated to match the schema.
                db.load_rows(&name, rows)
                    .expect("spec-generated rows must match the schema");
            }
            let mut worker = NodeWorker {
                id: node,
                db,
                estimator: PlanHistoryEstimator::new(0.3, 0.01),
                qant,
                spec_classes,
                backlog_ms: 0.0,
                slowdown,
                link_latency,
                inbox: rx,
                faults,
                fault_rng,
                epoch,
                telemetry,
                metrics,
                last_tick: Instant::now(),
            };
            worker.init_market();
            worker.run();
        })
        // Programmer-error invariant: thread spawning only fails on OS
        // resource exhaustion, which the experiment cannot run through.
        .expect("spawn node thread");
    NodeHandle {
        id: node,
        sender: tx,
        join,
    }
}

impl NodeWorker {
    /// Warms the plan-history estimator with one real execution per local
    /// class, then computes the initial supply vector. The paper's
    /// two-step estimator is defined in terms of "past execution
    /// information"; without any, the optimizer-cost prior is in plan
    /// units, not milliseconds, and a cold market would reject everything
    /// until the first executions land.
    fn init_market(&mut self) {
        self.telemetry
            .set_now_us(self.epoch.elapsed().as_micros() as u64);
        let warmups: Vec<String> = self
            .spec_classes
            .iter()
            .map(|(_, sql)| sql.clone())
            .collect();
        for sql in warmups {
            let started = Instant::now();
            if self.db.query(&sql).is_ok() {
                let engine_ms = started.elapsed().as_secs_f64() * 1e3;
                if let Ok(ex) = self.db.explain(&sql) {
                    self.estimator.observe_ms(ex.fingerprint, engine_ms);
                }
            }
        }
        if self.qant.is_some() {
            let costs = self.class_costs();
            if let Some(q) = self.qant.as_mut() {
                q.begin_period(&costs, None);
            }
        }
    }

    /// Restarts the market period with a work-conserving budget:
    /// `2T − backlog`, so an idle node never refuses capacity while a
    /// backlogged one stops overselling (same policy as the simulator).
    fn restart_period(&mut self) {
        if self.qant.is_none() {
            return;
        }
        let costs = self.class_costs();
        let Some(q) = self.qant.as_mut() else { return };
        q.end_period();
        let period_ms = q.config().period.as_millis_f64();
        let budget = (2.0 * period_ms - self.backlog_ms).clamp(0.5 * period_ms, 2.0 * period_ms);
        q.begin_period_with_budget(&costs, None, budget);
    }

    /// Per-class execution estimates (ms), `None` for classes this node
    /// cannot evaluate.
    fn class_costs(&self) -> Vec<Option<f64>> {
        let k = self.qant.as_ref().map_or(0, |q| q.num_classes());
        let mut costs = vec![None; k];
        for (id, sql) in &self.spec_classes {
            costs[id.index()] = self.estimate_ms(sql).ok();
        }
        costs
    }

    /// The two-step estimate for one SQL string.
    fn estimate_ms(&self, sql: &str) -> Result<f64, qa_minidb::DbError> {
        let ex = self.db.explain(sql)?;
        Ok(self
            .estimator
            .estimate_ms(ex.fingerprint, ex.root.cost)
            .max(0.01)
            * self.slowdown)
    }

    /// Whether a negotiation reply leaving now survives the link. Checked
    /// only on the fault path; never draws with a disabled plan.
    fn reply_delivered(&mut self) -> bool {
        if self.faults.is_none() {
            return true;
        }
        let at = SimTime::from_micros(self.epoch.elapsed().as_micros() as u64);
        self.faults.delivers(at, &mut self.fault_rng)
    }

    /// Extra wall-clock delay a delivered reply pays on a jittery link.
    fn reply_jitter(&mut self) -> Duration {
        if self.faults.is_none() {
            return Duration::ZERO;
        }
        Duration::from_micros(self.faults.sample_jitter(&mut self.fault_rng).as_micros())
    }

    /// Emits a [`TelemetryEvent::MessageDropped`] for a fault-eaten reply.
    fn note_reply_dropped(&self, context: &'static str) {
        let telemetry = &self.telemetry;
        telemetry.emit(|| TelemetryEvent::MessageDropped {
            node: telemetry.label(),
            context: context.to_string(),
        });
    }

    fn run(&mut self) {
        while let Ok(msg) = self.inbox.recv() {
            self.telemetry
                .set_now_us(self.epoch.elapsed().as_micros() as u64);
            // One-way link latency before any reply leaves the node.
            match msg {
                NodeMsg::Estimate { sql, reply } => {
                    if let Some(m) = &self.metrics {
                        m.estimates_served.incr();
                    }
                    let exec_ms = self.estimate_ms(&sql).unwrap_or(f64::INFINITY);
                    std::thread::sleep(self.link_latency + self.reply_jitter());
                    // A dropped reply is simply never sent; the client's
                    // collection deadline treats it as a non-answer.
                    if self.reply_delivered() {
                        let _ = reply.send(EstimateReply {
                            node: self.id,
                            exec_ms,
                        });
                    } else {
                        self.note_reply_dropped("estimate_reply");
                    }
                }
                NodeMsg::CallForOffers { class, sql, reply } => {
                    let offered = match &mut self.qant {
                        Some(q) => q.on_request(class),
                        None => true,
                    };
                    if let Some(m) = &self.metrics {
                        if offered {
                            m.offers_made.incr();
                        } else {
                            m.offers_rejected.incr();
                            if let Some(c) = m.rejected_by_class.get(class.index()) {
                                c.incr();
                            }
                        }
                    }
                    let completion_ms = if offered {
                        self.backlog_ms + self.estimate_ms(&sql).unwrap_or(f64::INFINITY)
                    } else {
                        f64::INFINITY
                    };
                    std::thread::sleep(self.link_latency + self.reply_jitter());
                    if self.reply_delivered() {
                        let _ = reply.send(OfferReply {
                            node: self.id,
                            offered,
                            completion_ms,
                        });
                    } else {
                        self.note_reply_dropped("offer_reply");
                    }
                }
                NodeMsg::Execute { sql, class, reply } => {
                    if let Some(q) = &mut self.qant {
                        q.on_accept(class);
                    }
                    let est = self.estimate_ms(&sql).unwrap_or(0.0);
                    self.backlog_ms += est;
                    if let Some(m) = &self.metrics {
                        m.backlog_ms.set(self.backlog_ms);
                    }
                    let started = Instant::now();
                    let outcome = self.db.query(&sql);
                    let raw_ms = started.elapsed().as_secs_f64() * 1e3;
                    // Heterogeneous hardware: slow nodes take
                    // proportionally longer (real sleep, real wall time).
                    let extra = raw_ms * (self.slowdown - 1.0);
                    if extra > 0.0 {
                        std::thread::sleep(Duration::from_secs_f64(extra / 1e3));
                    }
                    let exec_ms = started.elapsed().as_secs_f64() * 1e3;
                    self.backlog_ms = (self.backlog_ms - est).max(0.0);
                    if let Some(m) = &self.metrics {
                        m.backlog_ms.set(self.backlog_ms);
                        m.exec_ms.observe(exec_ms);
                        m.queries_executed.incr();
                        if outcome.is_err() {
                            m.queries_failed.incr();
                        }
                    }
                    if let Ok(ex) = self.db.explain(&sql) {
                        // Record the *unscaled-by-slowdown* time? No: the
                        // estimator predicts this node's wall time, so it
                        // learns the scaled value but estimate_ms also
                        // multiplies by slowdown. Store the raw engine time
                        // to keep the two-step scheme consistent.
                        self.estimator
                            .observe_ms(ex.fingerprint, exec_ms / self.slowdown);
                    }
                    // Execute replies are never fault-dropped: assignments
                    // travel over a reliable (TCP-like) connection; only
                    // the chatty negotiation traffic is lossy. A node
                    // *crash* still loses them — the channel disconnects.
                    std::thread::sleep(self.link_latency);
                    match outcome {
                        Ok(res) => {
                            let _ = reply.send(ExecReply {
                                node: self.id,
                                rows: res.rows.len(),
                                exec_ms,
                                error: None,
                            });
                        }
                        Err(e) => {
                            let _ = reply.send(ExecReply {
                                node: self.id,
                                rows: 0,
                                exec_ms,
                                error: Some(e.to_string()),
                            });
                        }
                    }
                }
                NodeMsg::PeriodTick => {
                    if let Some(m) = &self.metrics {
                        m.periods.incr();
                        m.period_ms
                            .observe(self.last_tick.elapsed().as_secs_f64() * 1e3);
                    }
                    self.last_tick = Instant::now();
                    self.restart_period();
                }
                NodeMsg::DumpPrices { reply } => {
                    let prices = self
                        .qant
                        .as_ref()
                        .map(|q| q.prices().as_slice().to_vec())
                        .unwrap_or_default();
                    let _ = reply.send(PricesReply {
                        node: self.id,
                        prices,
                    });
                }
                NodeMsg::Shutdown => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::generate(3, 4, 6, 8, 4, 60)
    }

    #[test]
    fn node_answers_estimates_and_executes() {
        let s = spec();
        let class = &s.classes[0];
        let node = s.capable_nodes(class.id)[0];
        let h = spawn_node(&s, node, 99, None);
        let sql = class.instantiate(100);

        let (tx, rx) = channel();
        h.sender
            .send(NodeMsg::Estimate {
                sql: sql.clone(),
                reply: tx,
            })
            .unwrap();
        let est = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(est.node, node);
        assert!(est.exec_ms.is_finite() && est.exec_ms > 0.0);

        let (tx, rx) = channel();
        h.sender
            .send(NodeMsg::Execute {
                sql,
                class: class.id,
                reply: tx,
            })
            .unwrap();
        let res = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(res.error.is_none(), "{:?}", res.error);
        assert!(res.exec_ms > 0.0);
        h.shutdown();
    }

    /// Measures the node's own estimate for the class so tests can size
    /// the market period to a handful of supply units.
    fn calibrated_period_ms(s: &ClusterSpec, node: usize, sql: &str) -> f64 {
        let h = spawn_node(s, node, 99, None);
        let (tx, rx) = channel();
        h.sender
            .send(NodeMsg::Estimate {
                sql: sql.to_string(),
                reply: tx,
            })
            .unwrap();
        let est = rx.recv_timeout(Duration::from_secs(10)).unwrap().exec_ms;
        h.shutdown();
        (est * 3.0).max(0.05)
    }

    #[test]
    fn lossy_link_drops_negotiation_but_not_execution() {
        let s = spec();
        let class = &s.classes[0];
        let node = s.capable_nodes(class.id)[0];
        let h = spawn_node_with_faults(
            &s,
            node,
            99,
            None,
            LinkFaults::lossy(1.0),
            Instant::now(),
            Telemetry::disabled(),
        );
        let sql = class.instantiate(100);

        // Negotiation reply is dropped: the reply sender is discarded, so
        // the client observes a disconnect, not a value.
        let (tx, rx) = channel();
        h.sender
            .send(NodeMsg::Estimate {
                sql: sql.clone(),
                reply: tx,
            })
            .unwrap();
        assert!(
            rx.recv_timeout(Duration::from_secs(10)).is_err(),
            "estimate reply must be dropped on a fully lossy link"
        );

        // Execution replies ride the reliable connection regardless.
        let (tx, rx) = channel();
        h.sender
            .send(NodeMsg::Execute {
                sql,
                class: class.id,
                reply: tx,
            })
            .unwrap();
        let res = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(res.error.is_none(), "{:?}", res.error);
        h.shutdown();
    }

    #[test]
    fn qant_node_offers_then_exhausts() {
        let s = spec();
        let class = &s.classes[0];
        let node = s.capable_nodes(class.id)[0];
        let sql = class.instantiate(100);
        let period_ms = calibrated_period_ms(&s, node, &sql);
        let cfg = QantConfig {
            period: qa_simnet::SimDuration::from_millis_f64(period_ms),
            ..QantConfig::default()
        };
        let h = spawn_node(&s, node, 99, Some(cfg));
        // Alternate requests with period ticks: rejections raise the
        // class's private price until the node supplies it; sustained
        // requests then exhaust each period's supply again. Both market
        // events must occur.
        let mut offers = 0;
        let mut rejections = 0;
        for _ in 0..300 {
            let (tx, rx) = channel();
            h.sender
                .send(NodeMsg::CallForOffers {
                    class: class.id,
                    sql: sql.clone(),
                    reply: tx,
                })
                .unwrap();
            let o = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            if o.offered {
                offers += 1;
                let (tx, rx) = channel();
                h.sender
                    .send(NodeMsg::Execute {
                        sql: sql.clone(),
                        class: class.id,
                        reply: tx,
                    })
                    .unwrap();
                let _ = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            } else {
                rejections += 1;
                h.sender.send(NodeMsg::PeriodTick).unwrap();
            }
            if offers > 3 && rejections > 3 {
                break;
            }
        }
        assert!(offers > 0, "node must offer once prices adapt");
        assert!(rejections > 0, "supply must exhaust within periods");
        h.shutdown();
    }

    #[test]
    fn period_tick_replenishes_supply() {
        let s = spec();
        let class = &s.classes[0];
        let node = s.capable_nodes(class.id)[0];
        let sql = class.instantiate(100);
        let period_ms = calibrated_period_ms(&s, node, &sql);
        let cfg = QantConfig {
            period: qa_simnet::SimDuration::from_millis_f64(period_ms),
            ..QantConfig::default()
        };
        let h = spawn_node(&s, node, 99, Some(cfg));
        let offer = |h: &NodeHandle| {
            let (tx, rx) = channel();
            h.sender
                .send(NodeMsg::CallForOffers {
                    class: class.id,
                    sql: sql.clone(),
                    reply: tx,
                })
                .unwrap();
            rx.recv_timeout(Duration::from_secs(10)).unwrap().offered
        };
        // Exhaust (bounded: the calibrated period holds only a few units).
        let mut guard = 0;
        while offer(&h) && guard < 500 {
            guard += 1;
            let (tx, rx) = channel();
            h.sender
                .send(NodeMsg::Execute {
                    sql: sql.clone(),
                    class: class.id,
                    reply: tx,
                })
                .unwrap();
            let _ = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        // Several ticks (prices decay, supply recomputes with carry).
        for _ in 0..4 {
            h.sender.send(NodeMsg::PeriodTick).unwrap();
        }
        assert!(offer(&h), "supply must replenish after period ticks");
        h.shutdown();
    }

    #[test]
    fn estimator_learns_from_executions() {
        let s = spec();
        let class = &s.classes[0];
        let node = s.capable_nodes(class.id)[0];
        let h = spawn_node(&s, node, 99, None);
        let sql = class.instantiate(100);
        let estimate = |h: &NodeHandle| {
            let (tx, rx) = channel();
            h.sender
                .send(NodeMsg::Estimate {
                    sql: sql.clone(),
                    reply: tx,
                })
                .unwrap();
            rx.recv_timeout(Duration::from_secs(10)).unwrap().exec_ms
        };
        let cold = estimate(&h);
        for _ in 0..3 {
            let (tx, rx) = channel();
            h.sender
                .send(NodeMsg::Execute {
                    sql: sql.clone(),
                    class: class.id,
                    reply: tx,
                })
                .unwrap();
            let _ = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let warm = estimate(&h);
        // After observations, the estimate must track measured wall time
        // rather than the cost prior (which is in arbitrary units).
        assert!(warm.is_finite() && cold.is_finite());
        assert!(warm > 0.0);
        h.shutdown();
    }
}
