//! Transport abstraction: how the driver reaches the node fleet.
//!
//! The §5.2 experiment originally hard-wired `std::sync::mpsc` senders
//! into the driver. [`Transport`] lifts that into a trait with two
//! interchangeable implementations:
//!
//! * [`ChannelTransport`] — the historical in-process fleet: one OS
//!   thread per node, mpsc mailboxes, zero serialization.
//! * [`TcpTransport`] — real processes: each node is a `qad` server
//!   reached over a [`qa_net::Connection`], every protocol message
//!   crossing the wire as a [`WireMsg`] frame.
//!
//! ## Contract
//!
//! Request methods (`estimate`, `call_for_offers`, `execute`,
//! `dump_prices`) are **asynchronous sends**: the reply arrives on the
//! `Sender` the caller passed, or never does. The driver's loss-tolerant
//! collection deadline is the only completion guarantee — exactly the
//! semantics the in-process fleet always had, which is what makes the two
//! implementations observationally interchangeable:
//!
//! * a reply that will never come (fault-dropped, peer dead) surfaces as
//!   either a disconnected `Receiver` or a collection timeout;
//! * a send to a dead peer returns a [`ClusterError`] immediately, and
//!   the caller is expected to mark the node dead and re-allocate (PR-1
//!   crash semantics);
//! * `shutdown_node` is crash injection: over channels it shuts the
//!   mailbox, over TCP it terminates the remote process.
//!
//! Token correlation: reply `Sender`s cannot cross a socket, so
//! [`TcpTransport`] assigns each request a `u64` token, keeps the typed
//! sender in a per-peer pending map, and a dispatcher thread routes each
//! incoming reply frame back by token. Tokens are registered *before* the
//! request is sent — a reply can never race its own registration.

use crate::error::ClusterError;
use crate::node::{EstimateReply, ExecReply, NodeHandle, NodeMsg, OfferReply, PricesReply};
use qa_net::{ConnConfig, Connection, NetError, WireMsg};
use qa_simnet::telemetry::Telemetry;
use qa_workload::ClassId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an unanswered request token is kept before the dispatcher
/// garbage-collects it (longer than any driver deadline, so a slow reply
/// is never orphaned while someone still waits for it).
const PENDING_TTL: Duration = Duration::from_secs(120);

/// A fleet-facing message channel; see the module docs for the contract.
pub trait Transport: Send + Sync {
    /// Fleet size (dead peers included — indices are stable).
    fn num_nodes(&self) -> usize;

    /// Greedy's estimate poll.
    ///
    /// # Errors
    /// [`ClusterError`] when the send itself fails (peer dead).
    fn estimate(
        &self,
        node: usize,
        sql: &str,
        reply: Sender<EstimateReply>,
    ) -> Result<(), ClusterError>;

    /// QA-NT's call-for-offers.
    ///
    /// # Errors
    /// [`ClusterError`] when the send itself fails (peer dead).
    fn call_for_offers(
        &self,
        node: usize,
        class: ClassId,
        sql: &str,
        reply: Sender<OfferReply>,
    ) -> Result<(), ClusterError>;

    /// Executes an accepted assignment.
    ///
    /// # Errors
    /// [`ClusterError`] when the send itself fails (peer dead).
    fn execute(
        &self,
        node: usize,
        class: ClassId,
        sql: &str,
        reply: Sender<ExecReply>,
    ) -> Result<(), ClusterError>;

    /// Announces a QA-NT period boundary.
    ///
    /// # Errors
    /// [`ClusterError`] when the send itself fails (peer dead).
    fn period_tick(&self, node: usize) -> Result<(), ClusterError>;

    /// Requests the node's current per-class price vector.
    ///
    /// # Errors
    /// [`ClusterError`] when the send itself fails (peer dead).
    fn dump_prices(&self, node: usize, reply: Sender<PricesReply>) -> Result<(), ClusterError>;

    /// Terminates one node (crash injection / targeted shutdown). Best
    /// effort; a node that is already gone is not an error.
    fn shutdown_node(&self, node: usize);

    /// Gracefully tears the whole fleet connection down. Idempotent.
    fn shutdown(&self);
}

// ---------------------------------------------------------------------------
// In-process channels
// ---------------------------------------------------------------------------

/// The historical in-process fleet: node threads behind mpsc mailboxes.
pub struct ChannelTransport {
    senders: Vec<Sender<NodeMsg>>,
    handles: Mutex<Vec<NodeHandle>>,
}

impl ChannelTransport {
    /// Wraps already-spawned node threads.
    pub fn new(nodes: Vec<NodeHandle>) -> ChannelTransport {
        ChannelTransport {
            senders: nodes.iter().map(|n| n.sender.clone()).collect(),
            handles: Mutex::new(nodes),
        }
    }

    fn send(&self, phase: &'static str, node: usize, msg: NodeMsg) -> Result<(), ClusterError> {
        self.senders[node]
            .send(msg)
            .map_err(|_| ClusterError::ChannelClosed { phase, node })
    }
}

impl Transport for ChannelTransport {
    fn num_nodes(&self) -> usize {
        self.senders.len()
    }

    fn estimate(
        &self,
        node: usize,
        sql: &str,
        reply: Sender<EstimateReply>,
    ) -> Result<(), ClusterError> {
        self.send(
            "estimate",
            node,
            NodeMsg::Estimate {
                sql: sql.to_string(),
                reply,
            },
        )
    }

    fn call_for_offers(
        &self,
        node: usize,
        class: ClassId,
        sql: &str,
        reply: Sender<OfferReply>,
    ) -> Result<(), ClusterError> {
        self.send(
            "offer",
            node,
            NodeMsg::CallForOffers {
                class,
                sql: sql.to_string(),
                reply,
            },
        )
    }

    fn execute(
        &self,
        node: usize,
        class: ClassId,
        sql: &str,
        reply: Sender<ExecReply>,
    ) -> Result<(), ClusterError> {
        self.send(
            "execute",
            node,
            NodeMsg::Execute {
                sql: sql.to_string(),
                class,
                reply,
            },
        )
    }

    fn period_tick(&self, node: usize) -> Result<(), ClusterError> {
        self.send("tick", node, NodeMsg::PeriodTick)
    }

    fn dump_prices(&self, node: usize, reply: Sender<PricesReply>) -> Result<(), ClusterError> {
        self.send("prices", node, NodeMsg::DumpPrices { reply })
    }

    fn shutdown_node(&self, node: usize) {
        let _ = self.senders[node].send(NodeMsg::Shutdown);
    }

    fn shutdown(&self) {
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for h in handles {
            h.shutdown();
        }
    }
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// One node's metrics-registry snapshot, scraped over the wire.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// The responding fleet node.
    pub node: usize,
    /// Its `MetricsRegistry::snapshot()` as compact JSON.
    pub json: String,
}

/// A reply sender parked under its request token.
enum Pending {
    Estimate(Sender<EstimateReply>),
    Offer(Sender<OfferReply>),
    Exec(Sender<ExecReply>),
    Prices(Sender<PricesReply>),
    Stats(Sender<NodeStats>),
}

/// Shared between a peer's handle and its dispatcher thread.
struct PeerState {
    addr: String,
    pending: Mutex<HashMap<u64, (Pending, Instant)>>,
}

impl PeerState {
    /// Fails every outstanding request now: dropping the parked senders
    /// disconnects their receivers, so waiters observe dead-peer
    /// semantics immediately instead of aging out via the TTL sweep.
    fn fail_pending(&self) {
        self.pending.lock().unwrap().clear();
    }
}

struct Peer {
    state: Arc<PeerState>,
    conn: Mutex<Option<Connection>>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

/// The fleet over real sockets: one [`Connection`] per `qad` server.
pub struct TcpTransport {
    peers: Vec<Peer>,
    next_token: AtomicU64,
}

impl TcpTransport {
    /// Dials every node of the fleet (`addrs[i]` must host fleet node
    /// `i`) and completes the handshakes. Connection retry/backoff and
    /// handshake policy come from `cfg`; transport telemetry (connects,
    /// retries, deaths) flows through `telemetry`.
    ///
    /// # Errors
    /// [`ClusterError::Net`] naming the first peer that could not be
    /// reached or failed its handshake.
    pub fn connect(
        addrs: &[String],
        cfg: &ConnConfig,
        telemetry: &Telemetry,
    ) -> Result<TcpTransport, ClusterError> {
        let mut peers = Vec::with_capacity(addrs.len());
        for (node, addr) in addrs.iter().enumerate() {
            let (conn, rx) =
                Connection::dial(addr, qa_net::wire::CLIENT_NODE, node as u32, cfg, telemetry)
                    .map_err(|e| ClusterError::net("connect", node, addr.clone(), e))?;
            let state = Arc::new(PeerState {
                addr: addr.clone(),
                pending: Mutex::new(HashMap::new()),
            });
            let dispatcher = {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("qa-dispatch-{node}"))
                    .spawn(move || dispatch_replies(state, rx))
                    .map_err(|e| {
                        ClusterError::net("connect", node, addr.clone(), NetError::io("spawn", &e))
                    })?
            };
            peers.push(Peer {
                state,
                conn: Mutex::new(Some(conn)),
                dispatcher: Mutex::new(Some(dispatcher)),
            });
        }
        Ok(TcpTransport {
            peers,
            next_token: AtomicU64::new(1),
        })
    }

    /// Drops every connection *without* sending `Shutdown`: the servers
    /// stay up and keep accepting (a driver crash looks exactly like
    /// this). A later `shutdown` becomes a no-op on the closed peers.
    pub fn disconnect(&self) {
        for peer in &self.peers {
            if let Some(c) = peer.conn.lock().unwrap().take() {
                c.close();
            }
            // Fail waiters before joining the dispatcher: the join can
            // block on connection teardown, and nobody may wait out the
            // TTL for a reply that can no longer arrive.
            peer.state.fail_pending();
            if let Some(d) = peer.dispatcher.lock().unwrap().take() {
                let _ = d.join();
            }
        }
    }

    fn send(&self, phase: &'static str, node: usize, msg: WireMsg) -> Result<(), ClusterError> {
        let peer = &self.peers[node];
        let guard = peer.conn.lock().unwrap();
        let conn = guard.as_ref().ok_or_else(|| {
            ClusterError::net(phase, node, peer.state.addr.clone(), NetError::PeerClosed)
        })?;
        conn.send(msg)
            .map_err(|e| ClusterError::net(phase, node, peer.state.addr.clone(), e))
    }

    /// Requests one node's metrics-registry snapshot (the fleet stats
    /// scrape). Answered by the `qad` session loop directly — never the
    /// node worker — so a saturated market still reports its stats.
    ///
    /// # Errors
    /// [`ClusterError`] when the send itself fails (peer dead).
    pub fn request_stats(&self, node: usize, reply: Sender<NodeStats>) -> Result<(), ClusterError> {
        self.request("stats", node, Pending::Stats(reply), |token| {
            WireMsg::StatsRequest { token }
        })
    }

    /// Registers the reply slot under a fresh token, then sends. On a
    /// failed send the slot is withdrawn again so the map cannot leak.
    fn request(
        &self,
        phase: &'static str,
        node: usize,
        pending: Pending,
        make_msg: impl FnOnce(u64) -> WireMsg,
    ) -> Result<(), ClusterError> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.peers[node]
            .state
            .pending
            .lock()
            .unwrap()
            .insert(token, (pending, Instant::now()));
        match self.send(phase, node, make_msg(token)) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.peers[node]
                    .state
                    .pending
                    .lock()
                    .unwrap()
                    .remove(&token);
                Err(e)
            }
        }
    }
}

impl Transport for TcpTransport {
    fn num_nodes(&self) -> usize {
        self.peers.len()
    }

    fn estimate(
        &self,
        node: usize,
        sql: &str,
        reply: Sender<EstimateReply>,
    ) -> Result<(), ClusterError> {
        let sql = sql.to_string();
        self.request("estimate", node, Pending::Estimate(reply), |token| {
            WireMsg::Estimate { token, sql }
        })
    }

    fn call_for_offers(
        &self,
        node: usize,
        class: ClassId,
        sql: &str,
        reply: Sender<OfferReply>,
    ) -> Result<(), ClusterError> {
        let sql = sql.to_string();
        self.request("offer", node, Pending::Offer(reply), |token| {
            WireMsg::CallForOffers {
                token,
                class: class.0,
                sql,
            }
        })
    }

    fn execute(
        &self,
        node: usize,
        class: ClassId,
        sql: &str,
        reply: Sender<ExecReply>,
    ) -> Result<(), ClusterError> {
        let sql = sql.to_string();
        self.request("execute", node, Pending::Exec(reply), |token| {
            WireMsg::Execute {
                token,
                class: class.0,
                sql,
            }
        })
    }

    fn period_tick(&self, node: usize) -> Result<(), ClusterError> {
        self.send("tick", node, WireMsg::PeriodTick)
    }

    fn dump_prices(&self, node: usize, reply: Sender<PricesReply>) -> Result<(), ClusterError> {
        self.request("prices", node, Pending::Prices(reply), |token| {
            WireMsg::DumpPrices { token }
        })
    }

    fn shutdown_node(&self, node: usize) {
        let _ = self.send("shutdown", node, WireMsg::Shutdown);
        let conn = self.peers[node].conn.lock().unwrap().take();
        if let Some(c) = conn {
            c.close();
        }
        // As in `disconnect`: pending replies can never arrive once the
        // connection is gone, so fail them immediately.
        self.peers[node].state.fail_pending();
        let dispatcher = self.peers[node].dispatcher.lock().unwrap().take();
        if let Some(d) = dispatcher {
            let _ = d.join();
        }
    }

    fn shutdown(&self) {
        for node in 0..self.peers.len() {
            self.shutdown_node(node);
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Routes reply frames back to their parked senders by token. Runs until
/// the connection dies, then drops every outstanding sender so waiting
/// drivers observe disconnection (dead-peer semantics).
fn dispatch_replies(state: Arc<PeerState>, rx: Receiver<WireMsg>) {
    loop {
        // The timeout is only the GC cadence: expired tokens (replies
        // that will never come, e.g. fault-dropped remotely) are swept so
        // the map stays bounded on long runs.
        let msg = match rx.recv_timeout(PENDING_TTL / 8) {
            Ok(m) => m,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                state
                    .pending
                    .lock()
                    .unwrap()
                    .retain(|_, (_, born)| born.elapsed() < PENDING_TTL);
                continue;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        };
        let token = match &msg {
            WireMsg::EstimateReply { token, .. }
            | WireMsg::OfferReply { token, .. }
            | WireMsg::ExecReply { token, .. }
            | WireMsg::Prices { token, .. }
            | WireMsg::StatsReply { token, .. } => *token,
            // Anything else is not a reply; a well-behaved qad never
            // sends these to a driver.
            _ => continue,
        };
        let slot = state.pending.lock().unwrap().remove(&token);
        // A mismatched slot type means a protocol violation; dropping the
        // sender surfaces it as a disconnect rather than a wrong value.
        match (slot, msg) {
            (Some((Pending::Estimate(tx), _)), WireMsg::EstimateReply { node, exec_ms, .. }) => {
                let _ = tx.send(EstimateReply {
                    node: node as usize,
                    exec_ms,
                });
            }
            (
                Some((Pending::Offer(tx), _)),
                WireMsg::OfferReply {
                    node,
                    offered,
                    completion_ms,
                    ..
                },
            ) => {
                let _ = tx.send(OfferReply {
                    node: node as usize,
                    offered,
                    completion_ms,
                });
            }
            (
                Some((Pending::Exec(tx), _)),
                WireMsg::ExecReply {
                    node,
                    rows,
                    exec_ms,
                    error,
                    ..
                },
            ) => {
                let _ = tx.send(ExecReply {
                    node: node as usize,
                    rows: rows as usize,
                    exec_ms,
                    error,
                });
            }
            (Some((Pending::Prices(tx), _)), WireMsg::Prices { node, prices, .. }) => {
                let _ = tx.send(PricesReply {
                    node: node as usize,
                    prices,
                });
            }
            (Some((Pending::Stats(tx), _)), WireMsg::StatsReply { node, json, .. }) => {
                let _ = tx.send(NodeStats {
                    node: node as usize,
                    json,
                });
            }
            _ => {}
        }
    }
    // Peer died: disconnect every waiter.
    state.pending.lock().unwrap().clear();
}
