//! Failure taxonomy for the cluster driver.
//!
//! The driver talks to autonomous node threads over channels; any of them
//! can die (crash injection, a panicked worker) or stall (a saturated
//! single-worker DBMS). Those are *environmental* failures and must not
//! panic the experiment — they surface as [`ClusterError`] values that the
//! driver either retries around (allocation paths) or records in the
//! per-query outcome. Panics remain reserved for programmer errors
//! (malformed generated SQL, impossible specs), which are documented at
//! their `expect` sites.

use qa_net::NetError;
use std::fmt;

/// An environmental failure in the cluster protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A node's mailbox or reply channel disconnected: the node thread is
    /// gone (crashed or shut down).
    ChannelClosed {
        /// Protocol phase ("estimate", "offer", "execute", …).
        phase: &'static str,
        /// The node that went away.
        node: usize,
    },
    /// A reply did not arrive within the deadline. The node may be alive
    /// but saturated, or the message may have been lost.
    Timeout {
        /// Protocol phase.
        phase: &'static str,
        /// The node polled (or `usize::MAX` when waiting on many).
        node: usize,
    },
    /// No live capable node remains for a query class.
    NoCandidates,
    /// The query exhausted its retry budget without being placed.
    RetriesExhausted {
        /// Attempts made.
        retries: u32,
    },
    /// Deployment-time failure (spec or data loading).
    Setup(String),
    /// A transport-level failure talking to a peer over the network. The
    /// wire-layer cause is preserved (and exposed via
    /// [`std::error::Error::source`]) together with which peer, at which
    /// address, during which protocol phase.
    Net {
        /// Protocol phase ("estimate", "offer", "execute", "connect", …).
        phase: &'static str,
        /// The peer node.
        node: usize,
        /// The peer's socket address.
        addr: String,
        /// The underlying wire-layer error.
        source: NetError,
    },
}

impl ClusterError {
    /// Wraps a wire-layer error with peer and phase context.
    pub fn net(
        phase: &'static str,
        node: usize,
        addr: impl Into<String>,
        source: NetError,
    ) -> Self {
        ClusterError::Net {
            phase,
            node,
            addr: addr.into(),
            source,
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::ChannelClosed { phase, node } => {
                write!(f, "node {node} disconnected during {phase}")
            }
            ClusterError::Timeout { phase, node } => {
                if *node == usize::MAX {
                    write!(f, "{phase} deadline expired")
                } else {
                    write!(f, "node {node} timed out during {phase}")
                }
            }
            ClusterError::NoCandidates => write!(f, "no live capable node"),
            ClusterError::RetriesExhausted { retries } => {
                write!(f, "no placement after {retries} retries")
            }
            ClusterError::Setup(msg) => write!(f, "setup failed: {msg}"),
            ClusterError::Net {
                phase,
                node,
                addr,
                source,
            } => {
                write!(
                    f,
                    "network failure during {phase} with node {node} at {addr}: {source}"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Net { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert_eq!(
            ClusterError::ChannelClosed {
                phase: "offer",
                node: 3
            }
            .to_string(),
            "node 3 disconnected during offer"
        );
        assert_eq!(
            ClusterError::Timeout {
                phase: "offer collection",
                node: usize::MAX
            }
            .to_string(),
            "offer collection deadline expired"
        );
        assert_eq!(
            ClusterError::NoCandidates.to_string(),
            "no live capable node"
        );
        assert_eq!(
            ClusterError::RetriesExhausted { retries: 7 }.to_string(),
            "no placement after 7 retries"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ClusterError::NoCandidates);
    }

    #[test]
    fn net_errors_carry_peer_context_and_chain_to_the_wire_cause() {
        let err = ClusterError::net("offer", 3, "127.0.0.1:4017", NetError::PeerClosed);
        assert_eq!(
            err.to_string(),
            "network failure during offer with node 3 at 127.0.0.1:4017: peer connection closed"
        );
        let source = std::error::Error::source(&err).expect("wire cause");
        assert_eq!(source.to_string(), NetError::PeerClosed.to_string());
    }
}
