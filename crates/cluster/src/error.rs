//! Failure taxonomy for the cluster driver.
//!
//! The driver talks to autonomous node threads over channels; any of them
//! can die (crash injection, a panicked worker) or stall (a saturated
//! single-worker DBMS). Those are *environmental* failures and must not
//! panic the experiment — they surface as [`ClusterError`] values that the
//! driver either retries around (allocation paths) or records in the
//! per-query outcome. Panics remain reserved for programmer errors
//! (malformed generated SQL, impossible specs), which are documented at
//! their `expect` sites.

use std::fmt;

/// An environmental failure in the cluster protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A node's mailbox or reply channel disconnected: the node thread is
    /// gone (crashed or shut down).
    ChannelClosed {
        /// Protocol phase ("estimate", "offer", "execute", …).
        phase: &'static str,
        /// The node that went away.
        node: usize,
    },
    /// A reply did not arrive within the deadline. The node may be alive
    /// but saturated, or the message may have been lost.
    Timeout {
        /// Protocol phase.
        phase: &'static str,
        /// The node polled (or `usize::MAX` when waiting on many).
        node: usize,
    },
    /// No live capable node remains for a query class.
    NoCandidates,
    /// The query exhausted its retry budget without being placed.
    RetriesExhausted {
        /// Attempts made.
        retries: u32,
    },
    /// Deployment-time failure (spec or data loading).
    Setup(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::ChannelClosed { phase, node } => {
                write!(f, "node {node} disconnected during {phase}")
            }
            ClusterError::Timeout { phase, node } => {
                if *node == usize::MAX {
                    write!(f, "{phase} deadline expired")
                } else {
                    write!(f, "node {node} timed out during {phase}")
                }
            }
            ClusterError::NoCandidates => write!(f, "no live capable node"),
            ClusterError::RetriesExhausted { retries } => {
                write!(f, "no placement after {retries} retries")
            }
            ClusterError::Setup(msg) => write!(f, "setup failed: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert_eq!(
            ClusterError::ChannelClosed {
                phase: "offer",
                node: 3
            }
            .to_string(),
            "node 3 disconnected during offer"
        );
        assert_eq!(
            ClusterError::Timeout {
                phase: "offer collection",
                node: usize::MAX
            }
            .to_string(),
            "offer collection deadline expired"
        );
        assert_eq!(
            ClusterError::NoCandidates.to_string(),
            "no live capable node"
        );
        assert_eq!(
            ClusterError::RetriesExhausted { retries: 7 }.to_string(),
            "no placement after 7 retries"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ClusterError::NoCandidates);
    }
}
