//! Deployment generation: tables, views, copies, query classes.
//!
//! Mirrors §5.2's data layout at reduced scale: `num_tables` base tables
//! with 2–4 copies spread over the nodes, `num_views` select-project views
//! over them, and a set of select-join-project-group *star query* classes.
//! Queries of a class share their SQL shape and differ only in a selection
//! constant (§2.1), so they share a minidb plan fingerprint — which is what
//! the history estimator keys on.

use qa_simnet::DetRng;
use qa_workload::ClassId;

/// One table of the deployment.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name (`t00`, `t01`, …).
    pub name: String,
    /// Rows to generate.
    pub rows: usize,
    /// Nodes holding a copy (2–4 of them).
    pub copies: Vec<usize>,
}

/// One select-project view.
#[derive(Debug, Clone)]
pub struct ViewSpec {
    /// View name (`v00`, …).
    pub name: String,
    /// The base table index.
    pub table: usize,
    /// The view's defining SQL.
    pub sql: String,
}

/// One query class: a star-query template with a `{c}` placeholder for the
/// selection constant.
#[derive(Debug, Clone)]
pub struct QueryClassSpec {
    /// The class id.
    pub id: ClassId,
    /// Template with `{c}` placeholder.
    pub template: String,
    /// Tables touched (by index), for capability checks.
    pub tables: Vec<usize>,
    /// Range of the selection constant.
    pub const_range: (i64, i64),
}

impl QueryClassSpec {
    /// Instantiates the template with a concrete constant.
    pub fn instantiate(&self, constant: i64) -> String {
        self.template.replace("{c}", &constant.to_string())
    }

    /// Draws a random instance.
    pub fn sample(&self, rng: &mut DetRng) -> String {
        let c = rng.int_in(self.const_range.0 as u64, self.const_range.1 as u64) as i64;
        self.instantiate(c)
    }
}

/// The full deployment description.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of nodes (paper: 5).
    pub num_nodes: usize,
    /// Tables.
    pub tables: Vec<TableSpec>,
    /// Views.
    pub views: Vec<ViewSpec>,
    /// Query classes.
    pub classes: Vec<QueryClassSpec>,
    /// Per-node slowdown factor (1.0 = fastest; the paper's slowest PC ran
    /// the workload ~14× slower than the fastest).
    pub slowdown: Vec<f64>,
    /// Per-node one-way reply latency in microseconds (one node sits on a
    /// slow wireless-like link).
    pub link_latency_us: Vec<u64>,
}

impl ClusterSpec {
    /// Generates the §5.2 deployment at a given scale.
    ///
    /// * `rows_per_table` — base-table size (the paper's 1 GB scales down
    ///   to a few hundred rows for CI),
    /// * `num_tables` / `num_views` — paper: 20 and 80,
    /// * `num_classes` — star-query classes to generate.
    pub fn generate(
        seed: u64,
        num_nodes: usize,
        num_tables: usize,
        num_views: usize,
        num_classes: usize,
        rows_per_table: usize,
    ) -> ClusterSpec {
        assert!(num_nodes >= 2 && num_tables >= 2 && num_classes >= 1);
        let mut rng = DetRng::seed_from_u64(seed).derive("cluster-spec");
        let tables: Vec<TableSpec> = (0..num_tables)
            .map(|i| {
                let copies = {
                    let n = rng.int_in(2, 4.min(num_nodes as u64)) as usize;
                    rng.sample_indices(num_nodes, n)
                };
                TableSpec {
                    name: format!("t{i:02}"),
                    rows: rows_per_table / 2 + rng.index(rows_per_table.max(2) / 2 + 1),
                    copies,
                }
            })
            .collect();
        let views: Vec<ViewSpec> = (0..num_views)
            .map(|i| {
                let table = rng.index(num_tables);
                let cutoff = rng.int_in(0, 500);
                ViewSpec {
                    name: format!("v{i:02}"),
                    table,
                    sql: format!(
                        "CREATE VIEW v{i:02} AS SELECT id, a, b, g FROM {} WHERE a > {cutoff}",
                        tables[table].name
                    ),
                }
            })
            .collect();
        // Whether some node holds every table in `picked`.
        let evaluable = |picked: &[usize]| {
            (0..num_nodes).any(|n| picked.iter().all(|&t| tables[t].copies.contains(&n)))
        };
        let classes: Vec<QueryClassSpec> = (0..num_classes)
            .map(|i| {
                // A star query joins a fact table with 1–2 others on id and
                // groups by g — the paper's select-join-project-group shape.
                // Redraw until the picked tables share a node (every class
                // must be evaluable somewhere, like the paper's deployment);
                // a single-table query is the always-evaluable fallback.
                let mut picked = Vec::new();
                for _ in 0..16 {
                    let joins = 1 + rng.index(2);
                    picked = rng.sample_indices(num_tables, joins + 1);
                    if evaluable(&picked) {
                        break;
                    }
                    picked.clear();
                }
                if picked.is_empty() {
                    picked = vec![rng.index(num_tables)];
                }
                let fact = &tables[picked[0]].name;
                let mut sql =
                    format!("SELECT f.g, COUNT(*) AS n, SUM(f.b) AS total FROM {fact} AS f");
                for (j, &t) in picked[1..].iter().enumerate() {
                    let alias = (b'u' + j as u8) as char;
                    sql.push_str(&format!(
                        " JOIN {} AS {alias} ON f.id = {alias}.id",
                        tables[t].name
                    ));
                }
                sql.push_str(" WHERE f.a > {c} GROUP BY f.g ORDER BY f.g");
                QueryClassSpec {
                    id: ClassId(i as u32),
                    template: sql,
                    tables: picked,
                    const_range: (0, 900),
                }
            })
            .collect();
        // Slowdowns: one fast node, a spread up to ~8× (paper: 1 s → 14 s).
        let mut slowdown: Vec<f64> = (0..num_nodes)
            .map(|i| match i {
                0 => 1.0,
                _ => 1.0 + rng.float_in(0.5, 7.0),
            })
            .collect();
        slowdown[num_nodes - 1] = slowdown[num_nodes - 1].max(6.0); // one slow PC
                                                                    // Links: last node on the slow wireless-like link.
        let link_latency_us: Vec<u64> = (0..num_nodes)
            .map(|i| if i == num_nodes - 1 { 3_000 } else { 200 })
            .collect();
        ClusterSpec {
            num_nodes,
            tables,
            views,
            classes,
            slowdown,
            link_latency_us,
        }
    }

    /// The paper-shaped deployment (5 nodes, 20 tables, 80 views) at a
    /// given row scale.
    pub fn paper(seed: u64, rows_per_table: usize) -> ClusterSpec {
        ClusterSpec::generate(seed, 5, 20, 80, 12, rows_per_table)
    }

    /// Nodes capable of evaluating a class (hold every touched table).
    pub fn capable_nodes(&self, class: ClassId) -> Vec<usize> {
        let spec = &self.classes[class.index()];
        (0..self.num_nodes)
            .filter(|&n| {
                spec.tables
                    .iter()
                    .all(|&t| self.tables[t].copies.contains(&n))
            })
            .collect()
    }

    /// DDL + data statements for one node: creates local copies of its
    /// tables (with identical content across copies — same seed per table)
    /// and the views whose base table is local.
    pub fn node_statements(&self, node: usize) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.tables {
            if !t.copies.contains(&node) {
                continue;
            }
            out.push(format!(
                "CREATE TABLE {} (id INT, a INT, b FLOAT, c TEXT, g INT)",
                t.name
            ));
        }
        for v in &self.views {
            if self.tables[v.table].copies.contains(&node) {
                out.push(v.sql.clone());
            }
        }
        out
    }

    /// Generates the rows of one table (identical for every copy — mirrors
    /// are replicas).
    pub fn table_rows(&self, table: &TableSpec, seed: u64) -> Vec<qa_minidb::value::Row> {
        use qa_minidb::Value;
        let mut rng = DetRng::seed_from_u64(seed ^ fxhash(&table.name));
        (0..table.rows)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(rng.int_in(0, 1_000) as i64),
                    Value::Float(rng.float_in(0.0, 100.0)),
                    Value::Str(format!("r{}", rng.int_in(0, 50))),
                    Value::Int(rng.int_in(0, 20) as i64),
                ]
            })
            .collect()
    }
}

/// Tiny FNV-style string hash for per-table seeds.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::generate(7, 5, 8, 16, 6, 100)
    }

    #[test]
    fn shape_matches_request() {
        let s = spec();
        assert_eq!(s.num_nodes, 5);
        assert_eq!(s.tables.len(), 8);
        assert_eq!(s.views.len(), 16);
        assert_eq!(s.classes.len(), 6);
        assert_eq!(s.slowdown.len(), 5);
        assert!((s.slowdown[0] - 1.0).abs() < 1e-12);
        assert!(s.slowdown[4] >= 6.0, "one genuinely slow node");
        assert!(s.link_latency_us[4] > s.link_latency_us[0]);
    }

    #[test]
    fn tables_have_2_to_4_copies() {
        let s = spec();
        for t in &s.tables {
            assert!(
                (2..=4).contains(&t.copies.len()),
                "{}: {:?}",
                t.name,
                t.copies
            );
            let mut c = t.copies.clone();
            c.sort_unstable();
            c.dedup();
            assert_eq!(c.len(), t.copies.len(), "copies must be distinct nodes");
        }
    }

    #[test]
    fn every_generated_class_has_a_capable_node() {
        // Several seeds: the generator must only emit evaluable classes
        // (hand-built specs may still violate this; the driver rejects
        // them with `NoCandidates`).
        for seed in [7, 31, 2007, 99] {
            let s = ClusterSpec::generate(seed, 5, 8, 16, 8, 60);
            for c in &s.classes {
                let cap = s.capable_nodes(c.id);
                assert!(
                    !cap.is_empty(),
                    "seed {seed}, class {}: no capable node",
                    c.id
                );
                for &n in &cap {
                    assert!(c.tables.iter().all(|&t| s.tables[t].copies.contains(&n)));
                }
            }
        }
    }

    #[test]
    fn instantiation_replaces_constant() {
        let s = spec();
        let sql = s.classes[0].instantiate(123);
        assert!(sql.contains("f.a > 123"), "{sql}");
        assert!(!sql.contains("{c}"));
    }

    #[test]
    fn node_statements_load_into_minidb() {
        let s = spec();
        for node in 0..s.num_nodes {
            let mut db = qa_minidb::Database::new();
            for stmt in s.node_statements(node) {
                db.execute(&stmt).unwrap_or_else(|e| panic!("{stmt}: {e}"));
            }
        }
    }

    #[test]
    fn star_queries_run_on_capable_nodes() {
        let s = spec();
        let mut rng = DetRng::seed_from_u64(1);
        for class in &s.classes {
            let capable = s.capable_nodes(class.id);
            let Some(&node) = capable.first() else {
                continue;
            };
            let mut db = qa_minidb::Database::new();
            for stmt in s.node_statements(node) {
                db.execute(&stmt).unwrap();
            }
            for t in &s.tables {
                if t.copies.contains(&node) {
                    db.load_rows(&t.name, s.table_rows(t, 7)).unwrap();
                }
            }
            let sql = class.sample(&mut rng);
            let res = db.query(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            assert_eq!(res.columns, vec!["g", "n", "total"]);
        }
    }

    #[test]
    fn replicas_are_identical() {
        let s = spec();
        let t = &s.tables[0];
        let a = s.table_rows(t, 42);
        let b = s.table_rows(t, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn same_class_instances_share_plan_fingerprint() {
        let s = spec();
        let class = &s.classes[0];
        let capable = s.capable_nodes(class.id);
        let Some(&node) = capable.first() else { return };
        let mut db = qa_minidb::Database::new();
        for stmt in s.node_statements(node) {
            db.execute(&stmt).unwrap();
        }
        let a = db.explain(&class.instantiate(10)).unwrap();
        let b = db.explain(&class.instantiate(777)).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
    }
}
