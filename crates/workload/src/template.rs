//! Query templates / classes.
//!
//! §2.1: the workload consists of read-only select-join-project-sort
//! queries, classified into `K` disjoint classes. Queries of the same class
//! "use similar resources and have similar estimated execution cost when run
//! on the same node (could be different on different nodes)". A
//! [`QueryTemplate`] carries what the cost model needs: the relations the
//! query touches and a *base cost* — its execution time on a reference node
//! with average hardware — which each node then scales by its own CPU/IO
//! factors (`qa-sim`'s cost model).
//!
//! [`TemplateSet::generate`] reproduces Table 3's workload shape: 100
//! classes of queries with 0–49 joins (average 24) and a ~2 000 ms average
//! best execution time.

use crate::ids::{ClassId, RelationId};
use qa_simnet::{DetRng, SimDuration};

/// One query class (template).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    /// The class identifier.
    pub id: ClassId,
    /// Number of joins (0–49 in the paper's zipf workload).
    pub joins: u32,
    /// Relations touched: `joins + 1` base relations.
    pub relations: Vec<RelationId>,
    /// Execution time on the reference node (average CPU, average I/O,
    /// cold planning); real nodes scale this by their hardware factors.
    pub base_cost: SimDuration,
    /// Approximate result size in bytes, used for network transfer costs.
    pub result_bytes: u64,
}

impl QueryTemplate {
    /// `true` iff the template can run on a node holding `has_relation`
    /// (a predicate over relation ids): every touched relation must be
    /// locally available.
    pub fn runnable_where<F: Fn(RelationId) -> bool>(&self, has_relation: F) -> bool {
        self.relations.iter().all(|&r| has_relation(r))
    }
}

/// Parameters for synthetic template generation (Table 3 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateConfig {
    /// Number of classes `K` (paper: 100).
    pub num_classes: usize,
    /// Number of relations to draw from (paper: 1 000).
    pub num_relations: usize,
    /// Joins per query, inclusive range (paper: 0–49).
    pub joins_min: u32,
    /// Upper bound of the joins range.
    pub joins_max: u32,
    /// Average best execution time of queries (paper: ~2 000 ms).
    pub mean_base_cost: SimDuration,
    /// Average result size in bytes.
    pub mean_result_bytes: u64,
}

impl Default for TemplateConfig {
    fn default() -> Self {
        TemplateConfig {
            num_classes: 100,
            num_relations: 1_000,
            joins_min: 0,
            joins_max: 49,
            mean_base_cost: SimDuration::from_millis(2_000),
            mean_result_bytes: 64 * 1024,
        }
    }
}

/// A generated set of query templates, indexed by [`ClassId`].
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateSet {
    templates: Vec<QueryTemplate>,
}

impl TemplateSet {
    /// Builds a set from explicit templates (ids must be dense and in
    /// order).
    ///
    /// # Panics
    /// Panics if ids are not `0..n` in order.
    pub fn from_templates(templates: Vec<QueryTemplate>) -> Self {
        for (i, t) in templates.iter().enumerate() {
            assert_eq!(t.id.index(), i, "template ids must be dense and ordered");
        }
        TemplateSet { templates }
    }

    /// Generates `cfg.num_classes` templates per Table 3.
    ///
    /// Cost scales with the number of joins: a 0-join scan is cheap, a
    /// 49-join query expensive, with the configured mean over the set.
    pub fn generate(cfg: &TemplateConfig, rng: &mut DetRng) -> Self {
        assert!(cfg.num_classes > 0 && cfg.num_relations > 0);
        assert!(cfg.joins_min <= cfg.joins_max);
        let mut templates = Vec::with_capacity(cfg.num_classes);
        // First pass: raw per-class weights so we can normalize the mean.
        let mut raws: Vec<(u32, Vec<RelationId>, f64, f64)> = Vec::with_capacity(cfg.num_classes);
        for _ in 0..cfg.num_classes {
            let joins = rng.int_in(u64::from(cfg.joins_min), u64::from(cfg.joins_max)) as u32;
            let tables = (joins as usize + 1).min(cfg.num_relations);
            let relations: Vec<RelationId> = rng
                .sample_indices(cfg.num_relations, tables)
                .into_iter()
                .map(|i| RelationId(i as u32))
                .collect();
            // Cost grows roughly linearly in the number of joins with a
            // ±30 % idiosyncratic factor.
            let raw_cost = (1.0 + joins as f64) * rng.float_in(0.7, 1.3);
            let raw_bytes = rng.float_in(0.25, 4.0);
            raws.push((joins, relations, raw_cost, raw_bytes));
        }
        let mean_raw: f64 = raws.iter().map(|r| r.2).sum::<f64>() / raws.len() as f64;
        let mean_raw_bytes: f64 = raws.iter().map(|r| r.3).sum::<f64>() / raws.len() as f64;
        for (i, (joins, relations, raw_cost, raw_bytes)) in raws.into_iter().enumerate() {
            let cost = cfg.mean_base_cost.as_secs_f64() * raw_cost / mean_raw;
            let bytes = cfg.mean_result_bytes as f64 * raw_bytes / mean_raw_bytes;
            templates.push(QueryTemplate {
                id: ClassId(i as u32),
                joins,
                relations,
                base_cost: SimDuration::from_secs_f64(cost),
                result_bytes: bytes.max(1.0) as u64,
            });
        }
        TemplateSet { templates }
    }

    /// Number of classes `K`.
    pub fn num_classes(&self) -> usize {
        self.templates.len()
    }

    /// The template of a class.
    pub fn get(&self, id: ClassId) -> &QueryTemplate {
        &self.templates[id.index()]
    }

    /// All templates in id order.
    pub fn iter(&self) -> impl Iterator<Item = &QueryTemplate> {
        self.templates.iter()
    }

    /// Mean base cost over all classes.
    pub fn mean_base_cost(&self) -> SimDuration {
        let total: f64 = self
            .templates
            .iter()
            .map(|t| t.base_cost.as_secs_f64())
            .sum();
        SimDuration::from_secs_f64(total / self.templates.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(0x7AB1E3)
    }

    #[test]
    fn generates_requested_class_count() {
        let set = TemplateSet::generate(&TemplateConfig::default(), &mut rng());
        assert_eq!(set.num_classes(), 100);
    }

    #[test]
    fn joins_within_configured_range() {
        let set = TemplateSet::generate(&TemplateConfig::default(), &mut rng());
        assert!(set.iter().all(|t| t.joins <= 49));
        // Average joins should be near the midpoint (paper: 24).
        let avg: f64 = set.iter().map(|t| t.joins as f64).sum::<f64>() / 100.0;
        assert!((avg - 24.5).abs() < 6.0, "avg joins {avg}");
    }

    #[test]
    fn mean_cost_matches_config() {
        let cfg = TemplateConfig::default();
        let set = TemplateSet::generate(&cfg, &mut rng());
        let mean = set.mean_base_cost().as_millis_f64();
        assert!((mean - 2_000.0).abs() < 20.0, "mean {mean}ms");
    }

    #[test]
    fn relations_are_distinct_per_template() {
        let set = TemplateSet::generate(&TemplateConfig::default(), &mut rng());
        for t in set.iter() {
            let mut rels: Vec<_> = t.relations.clone();
            rels.sort();
            rels.dedup();
            assert_eq!(
                rels.len(),
                t.relations.len(),
                "duplicate relation in {:?}",
                t.id
            );
            assert_eq!(t.relations.len() as u32, t.joins + 1);
        }
    }

    #[test]
    fn cost_correlates_with_joins() {
        let set = TemplateSet::generate(&TemplateConfig::default(), &mut rng());
        let cheap: f64 = set
            .iter()
            .filter(|t| t.joins < 10)
            .map(|t| t.base_cost.as_millis_f64())
            .sum::<f64>()
            / set.iter().filter(|t| t.joins < 10).count().max(1) as f64;
        let pricey: f64 = set
            .iter()
            .filter(|t| t.joins > 40)
            .map(|t| t.base_cost.as_millis_f64())
            .sum::<f64>()
            / set.iter().filter(|t| t.joins > 40).count().max(1) as f64;
        assert!(pricey > cheap * 2.0, "cheap {cheap} pricey {pricey}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TemplateSet::generate(&TemplateConfig::default(), &mut rng());
        let b = TemplateSet::generate(&TemplateConfig::default(), &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn runnable_where_checks_all_relations() {
        let t = QueryTemplate {
            id: ClassId(0),
            joins: 1,
            relations: vec![RelationId(1), RelationId(2)],
            base_cost: SimDuration::from_millis(100),
            result_bytes: 10,
        };
        assert!(t.runnable_where(|_| true));
        assert!(!t.runnable_where(|r| r == RelationId(1)));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn from_templates_rejects_sparse_ids() {
        let t = QueryTemplate {
            id: ClassId(5),
            joins: 0,
            relations: vec![],
            base_cost: SimDuration::from_millis(1),
            result_bytes: 1,
        };
        let _ = TemplateSet::from_templates(vec![t]);
    }
}
