//! Materialized query traces.
//!
//! A [`Trace`] is the time-ordered list of queries entering the federation —
//! what Figure 3 plots per half-second. Both the simulator (`qa-sim`) and
//! the threaded cluster (`qa-cluster`) replay traces, so an experiment's
//! workload is generated once and shared by every algorithm under test
//! (paired comparison, same arrivals for QA-NT and all baselines).

use crate::ids::{ClassId, NodeId};
use qa_simnet::json::Json;
use qa_simnet::{json_obj, DetRng, SimDuration, SimTime};

/// A single query arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEvent {
    /// Unique id within the trace (dense, in arrival order).
    pub id: u64,
    /// Arrival time.
    pub at: SimTime,
    /// The query's class.
    pub class: ClassId,
    /// The client node that poses the query.
    pub origin: NodeId,
}

/// A time-ordered sequence of query arrivals.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    events: Vec<QueryEvent>,
}

impl Trace {
    /// Builds a trace from `(time, class)` pairs, assigning dense ids and
    /// uniformly random origin nodes. Input need not be sorted.
    pub fn from_arrivals(
        mut arrivals: Vec<(SimTime, ClassId)>,
        num_nodes: usize,
        rng: &mut DetRng,
    ) -> Self {
        assert!(num_nodes > 0);
        arrivals.sort_by_key(|(t, c)| (*t, c.index()));
        let events = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, (at, class))| QueryEvent {
                id: i as u64,
                at,
                class,
                origin: NodeId(rng.index(num_nodes) as u32),
            })
            .collect();
        Trace { events }
    }

    /// Builds from fully specified events (must be time-sorted).
    ///
    /// # Panics
    /// Panics if events are out of order.
    pub fn from_events(events: Vec<QueryEvent>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "trace events must be time-sorted"
        );
        Trace { events }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no queries.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events in time order.
    pub fn iter(&self) -> impl Iterator<Item = &QueryEvent> {
        self.events.iter()
    }

    /// The events slice.
    pub fn events(&self) -> &[QueryEvent] {
        &self.events
    }

    /// Arrival time of the last query, or the origin for an empty trace.
    pub fn horizon(&self) -> SimTime {
        self.events.last().map_or(SimTime::ZERO, |e| e.at)
    }

    /// Arrivals per period (Figure 3's y-axis with `period = 500 ms`),
    /// optionally restricted to one class.
    pub fn arrivals_per_period(&self, period: SimDuration, class: Option<ClassId>) -> Vec<u64> {
        let mut counts: Vec<u64> = Vec::new();
        for e in &self.events {
            if class.is_some_and(|c| c != e.class) {
                continue;
            }
            let idx = e.at.period_index(period) as usize;
            if idx >= counts.len() {
                counts.resize(idx + 1, 0);
            }
            counts[idx] += 1;
        }
        counts
    }

    /// Total queries of a class.
    pub fn count_class(&self, class: ClassId) -> usize {
        self.events.iter().filter(|e| e.class == class).count()
    }

    /// Serializes the trace to JSON (recorded workloads are replayed across
    /// mechanisms and sessions). Times are stored in microseconds.
    pub fn to_json(&self) -> String {
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|e| {
                json_obj! {
                    "id": e.id,
                    "at_us": e.at.as_micros(),
                    "class": e.class.index(),
                    "origin": e.origin.index(),
                }
            })
            .collect();
        json_obj! { "events": events }.dump()
    }

    /// Deserializes a trace from [`Trace::to_json`] output, re-validating
    /// the time ordering.
    pub fn from_json(json: &str) -> Result<Trace, String> {
        let doc = Json::parse(json)?;
        let items = doc
            .get("events")
            .and_then(Json::as_array)
            .ok_or("missing 'events' array")?;
        let mut events = Vec::with_capacity(items.len());
        for item in items {
            let field = |key: &str| {
                item.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("missing or invalid '{key}'"))
            };
            let narrow = |v: u64, what: &str| {
                u32::try_from(v).map_err(|_| format!("{what} {v} out of range"))
            };
            events.push(QueryEvent {
                id: field("id")?,
                at: SimTime::from_micros(field("at_us")?),
                class: ClassId(narrow(field("class")?, "class")?),
                origin: NodeId(narrow(field("origin")?, "origin")?),
            });
        }
        if !events.windows(2).all(|w| w[0].at <= w[1].at) {
            return Err("trace events out of order".to_string());
        }
        Ok(Trace { events })
    }

    /// Merges two traces (re-sorting and re-numbering ids).
    pub fn merge(mut self, other: Trace) -> Trace {
        self.events.extend(other.events);
        self.events
            .sort_by_key(|e| (e.at, e.class.index(), e.origin.index()));
        for (i, e) in self.events.iter_mut().enumerate() {
            e.id = i as u64;
        }
        Trace {
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(0x7ACE)
    }

    #[test]
    fn from_arrivals_sorts_and_numbers() {
        let arrivals = vec![
            (SimTime::from_millis(300), ClassId(1)),
            (SimTime::from_millis(100), ClassId(0)),
            (SimTime::from_millis(200), ClassId(0)),
        ];
        let t = Trace::from_arrivals(arrivals, 4, &mut rng());
        let times: Vec<u64> = t.iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, vec![100, 200, 300]);
        let ids: Vec<u64> = t.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(t.iter().all(|e| e.origin.index() < 4));
    }

    #[test]
    fn arrivals_per_period_bins_correctly() {
        let arrivals = vec![
            (SimTime::from_millis(0), ClassId(0)),
            (SimTime::from_millis(499), ClassId(1)),
            (SimTime::from_millis(500), ClassId(0)),
            (SimTime::from_millis(1_400), ClassId(0)),
        ];
        let t = Trace::from_arrivals(arrivals, 2, &mut rng());
        assert_eq!(
            t.arrivals_per_period(SimDuration::from_millis(500), None),
            vec![2, 1, 1]
        );
        assert_eq!(
            t.arrivals_per_period(SimDuration::from_millis(500), Some(ClassId(0))),
            vec![1, 1, 1]
        );
    }

    #[test]
    fn merge_preserves_order_and_renumbers() {
        let a = Trace::from_arrivals(vec![(SimTime::from_millis(10), ClassId(0))], 1, &mut rng());
        let b = Trace::from_arrivals(vec![(SimTime::from_millis(5), ClassId(1))], 1, &mut rng());
        let m = a.merge(b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.events()[0].at, SimTime::from_millis(5));
        assert_eq!(m.events()[0].id, 0);
        assert_eq!(m.events()[1].id, 1);
    }

    #[test]
    fn horizon_and_counts() {
        let t = Trace::from_arrivals(
            vec![
                (SimTime::from_millis(10), ClassId(0)),
                (SimTime::from_millis(90), ClassId(0)),
                (SimTime::from_millis(50), ClassId(1)),
            ],
            2,
            &mut rng(),
        );
        assert_eq!(t.horizon(), SimTime::from_millis(90));
        assert_eq!(t.count_class(ClassId(0)), 2);
        assert_eq!(t.count_class(ClassId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn from_events_rejects_unsorted() {
        let e = |ms, id| QueryEvent {
            id,
            at: SimTime::from_millis(ms),
            class: ClassId(0),
            origin: NodeId(0),
        };
        let _ = Trace::from_events(vec![e(10, 0), e(5, 1)]);
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::from_arrivals(
            vec![
                (SimTime::from_millis(10), ClassId(0)),
                (SimTime::from_millis(50), ClassId(1)),
            ],
            3,
            &mut rng(),
        );
        let j = t.to_json();
        let back = Trace::from_json(&j).unwrap();
        assert_eq!(t, back);
        assert!(Trace::from_json("{bad json").is_err());
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_events(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.horizon(), SimTime::ZERO);
        assert!(t
            .arrivals_per_period(SimDuration::from_millis(500), None)
            .is_empty());
    }
}
