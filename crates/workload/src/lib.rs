//! # qa-workload — query classes, synthetic datasets and arrival processes
//!
//! The vocabulary and workload machinery of the paper's evaluation (§5,
//! Table 3):
//!
//! * [`ids`] — [`NodeId`] and [`ClassId`] newtypes shared by every layer,
//! * [`template`] — query templates/classes (§2.1: families of queries
//!   differing only in selection constants, with similar per-node cost) and
//!   the Table-3 generator (100 classes of select-join-project-sort queries
//!   with 0–49 joins),
//! * [`dataset`] — the synthetic federation dataset: 1 000 relations of
//!   1–20 MB mirrored ~5× across 100 heterogeneous nodes,
//! * [`arrival`] — arrival processes: the 0.05–2 Hz sinusoid workloads of
//!   Figures 3–5 (two classes, 90° phase offset, peak Q1 = 2 × peak Q2),
//!   the zipf inter-arrival workload of Figure 6, and the uniform
//!   inter-arrival workload of the real-cluster experiment (§5.2),
//! * [`trace`] — materialized query traces: time-ordered
//!   [`QueryEvent`]s that the simulator and the cluster driver replay.

pub mod arrival;
pub mod dataset;
pub mod ids;
pub mod template;
pub mod trace;

pub use arrival::{ArrivalProcess, SinusoidProcess, UniformProcess, ZipfProcess};
pub use dataset::{Dataset, DatasetConfig, Relation};
pub use ids::{ClassId, NodeId, RelationId};
pub use template::{QueryTemplate, TemplateConfig, TemplateSet};
pub use trace::{QueryEvent, Trace};
