//! Identifier newtypes shared across the stack.

use qa_simnet::json::{Json, ToJson};
use std::fmt;

/// Identifies a node (an autonomous DBMS) in the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The numeric index (nodes are dense, `0..I`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ToJson for NodeId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Identifies a query class/template (§2.1: one of the `K` disjoint classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The numeric index (classes are dense, `0..K`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ToJson for ClassId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifies a relation in the federation's common schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u32);

impl RelationId {
    /// The numeric index (relations are dense).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(ClassId(7).to_string(), "q7");
        assert_eq!(RelationId(12).to_string(), "R12");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(ClassId(5).index(), 5);
    }
}
