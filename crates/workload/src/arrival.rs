//! Arrival processes (§5.1 and §5.2 workloads).
//!
//! * [`SinusoidProcess`] — the first experiment set: query arrival rates
//!   follow a sinusoid waveform (Fig. 3). The paper's canonical setup is
//!   two classes, Q1 and Q2, with a 90° phase difference and peak Q1 rate
//!   twice Q2's; frequency 0.05–2 Hz and amplitude 10–300 % of system
//!   capacity are swept in Figures 5a/5b.
//! * [`ZipfProcess`] — the second experiment set (Fig. 6): 10 000 queries
//!   in 100 classes, per-class inter-arrival times zipf-distributed with
//!   `a = 1`, capped at 30 s, mean swept from 10 ms to 20 s.
//! * [`UniformProcess`] — the real-cluster experiment (§5.2): uniform
//!   inter-arrival with a configurable mean (300/400 ms in the paper).
//!
//! Each process generates `(time, class)` pairs; [`crate::trace::Trace`]
//! attaches origins and ids.

use crate::ids::ClassId;
use qa_simnet::{DetRng, SimDuration, SimTime, Zipf};

/// Generates raw `(arrival time, class)` pairs over a horizon.
pub trait ArrivalProcess {
    /// Generates all arrivals in `[0, horizon)`.
    fn generate(&self, horizon: SimTime, rng: &mut DetRng) -> Vec<(SimTime, ClassId)>;
}

/// A non-homogeneous Poisson process whose rate follows a raised sinusoid:
///
/// `rate(t) = peak/2 · (1 + sin(2π·f·t + φ))`  queries/second,
///
/// oscillating between 0 and `peak`. Sampled by thinning against the
/// constant bound `peak`.
#[derive(Debug, Clone, PartialEq)]
pub struct SinusoidProcess {
    /// The class every arrival belongs to.
    pub class: ClassId,
    /// Waveform frequency in Hz (paper sweeps 0.05–2 Hz).
    pub frequency_hz: f64,
    /// Peak arrival rate in queries/second.
    pub peak_rate_per_sec: f64,
    /// Phase offset in radians (Q2 uses 90° = π/2 in the paper).
    pub phase_rad: f64,
}

impl SinusoidProcess {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics on non-positive frequency or rate.
    pub fn new(class: ClassId, frequency_hz: f64, peak_rate_per_sec: f64, phase_rad: f64) -> Self {
        assert!(frequency_hz.is_finite() && frequency_hz > 0.0);
        assert!(peak_rate_per_sec.is_finite() && peak_rate_per_sec > 0.0);
        SinusoidProcess {
            class,
            frequency_hz,
            peak_rate_per_sec,
            phase_rad,
        }
    }

    /// Instantaneous rate at time `t` (queries/second).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let x = 2.0 * std::f64::consts::PI * self.frequency_hz * t.as_secs_f64() + self.phase_rad;
        self.peak_rate_per_sec / 2.0 * (1.0 + x.sin())
    }

    /// The paper's canonical two-class sinusoid workload: Q1 (class 0) at
    /// `peak_q1` queries/s and Q2 (class 1) at half that, 90° out of phase.
    pub fn paper_pair(
        frequency_hz: f64,
        peak_q1_per_sec: f64,
    ) -> (SinusoidProcess, SinusoidProcess) {
        (
            SinusoidProcess::new(ClassId(0), frequency_hz, peak_q1_per_sec, 0.0),
            SinusoidProcess::new(
                ClassId(1),
                frequency_hz,
                peak_q1_per_sec / 2.0,
                std::f64::consts::FRAC_PI_2,
            ),
        )
    }
}

impl ArrivalProcess for SinusoidProcess {
    fn generate(&self, horizon: SimTime, rng: &mut DetRng) -> Vec<(SimTime, ClassId)> {
        // Thinning (Lewis & Shedler): candidate arrivals at the bounding
        // rate `peak`, each kept with probability rate(t)/peak.
        let mut out = Vec::new();
        let mut t = 0.0_f64; // seconds
        let horizon_s = horizon.as_secs_f64();
        let bound = self.peak_rate_per_sec;
        loop {
            t += -((1.0 - rng.unit()).ln()) / bound;
            if t >= horizon_s {
                break;
            }
            let at = SimTime::from_micros((t * 1e6) as u64);
            if rng.unit() < self.rate_at(at) / bound {
                out.push((at, self.class));
            }
        }
        out
    }
}

/// Per-class zipf inter-arrival process (Fig. 6 workload).
///
/// The paper: "The inter-arrival time of queries belonging to the same
/// query class followed a zipf distribution with parameter a = 1. The
/// maximum inter-arrival time between two queries was constrained to
/// 30,000 ms and the [minimum] inter-arrival time was varied from 10 ms to
/// 20,000 ms." Gaps are drawn over `num_slots` values spaced linearly on
/// `[min_gap, max_gap]` with zipf(a) rank probabilities — rank 1 (= the
/// minimum gap) carries the most mass, so small `min_gap` makes classes
/// fiercely bursty while `min_gap → max_gap` smooths the process out.
#[derive(Debug, Clone)]
pub struct ZipfProcess {
    /// Number of classes; arrivals are generated independently per class.
    pub num_classes: usize,
    /// Zipf exponent (paper: `a = 1`).
    pub exponent: f64,
    /// Minimum inter-arrival gap (the paper's swept x-axis).
    pub min_gap: SimDuration,
    /// Maximum inter-arrival gap (paper: 30 000 ms).
    pub max_gap: SimDuration,
    /// Zipf support size (number of distinct gap "slots").
    pub num_slots: usize,
}

impl ZipfProcess {
    /// The Fig. 6 defaults for a given per-class *minimum* gap.
    pub fn paper(num_classes: usize, min_gap: SimDuration) -> Self {
        ZipfProcess {
            num_classes,
            exponent: 1.0,
            min_gap,
            max_gap: SimDuration::from_millis(30_000),
            num_slots: 100,
        }
    }

    /// The gap value of a 1-based rank: linear interpolation between
    /// `min_gap` (rank 1) and `max_gap` (rank `num_slots`), in seconds.
    fn gap_of_rank(&self, rank: usize) -> f64 {
        let lo = self.min_gap.as_secs_f64();
        let hi = self.max_gap.as_secs_f64().max(lo);
        if self.num_slots <= 1 {
            return lo;
        }
        lo + (rank - 1) as f64 / (self.num_slots - 1) as f64 * (hi - lo)
    }

    /// The process's mean gap in seconds (for horizon sizing).
    pub fn mean_gap_secs(&self) -> f64 {
        let zipf = Zipf::new(self.num_slots, self.exponent);
        (1..=self.num_slots)
            .map(|k| self.gap_of_rank(k) * zipf.pmf(k))
            .sum()
    }
}

impl ArrivalProcess for ZipfProcess {
    fn generate(&self, horizon: SimTime, rng: &mut DetRng) -> Vec<(SimTime, ClassId)> {
        assert!(self.num_classes > 0);
        assert!(self.min_gap <= self.max_gap);
        let zipf = Zipf::new(self.num_slots, self.exponent);
        let mut out = Vec::new();
        for c in 0..self.num_classes {
            let class = ClassId(c as u32);
            // Random initial offset desynchronizes classes.
            let mut t = rng.unit() * self.max_gap.as_secs_f64();
            while t < horizon.as_secs_f64() {
                out.push((SimTime::from_micros((t * 1e6) as u64), class));
                t += self.gap_of_rank(zipf.sample_rank(rng));
            }
        }
        out
    }
}

/// Uniform inter-arrival process over a class mix (§5.2 workload).
#[derive(Debug, Clone)]
pub struct UniformProcess {
    /// Mean inter-arrival gap; individual gaps are uniform on
    /// `[0.5·mean, 1.5·mean)`.
    pub mean_gap: SimDuration,
    /// Classes to draw from, uniformly.
    pub classes: Vec<ClassId>,
    /// Stop after this many queries (the paper issues exactly 300), or
    /// `None` to fill the horizon.
    pub max_queries: Option<usize>,
}

impl ArrivalProcess for UniformProcess {
    fn generate(&self, horizon: SimTime, rng: &mut DetRng) -> Vec<(SimTime, ClassId)> {
        assert!(!self.classes.is_empty());
        let mean = self.mean_gap.as_secs_f64();
        assert!(mean > 0.0);
        let mut out = Vec::new();
        let mut t = 0.0_f64;
        loop {
            t += rng.float_in(0.5 * mean, 1.5 * mean);
            if t >= horizon.as_secs_f64() {
                break;
            }
            if self.max_queries.is_some_and(|m| out.len() >= m) {
                break;
            }
            out.push((
                SimTime::from_micros((t * 1e6) as u64),
                *rng.pick(&self.classes),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(0xA221)
    }

    #[test]
    fn sinusoid_rate_oscillates_between_zero_and_peak() {
        let p = SinusoidProcess::new(ClassId(0), 0.05, 10.0, 0.0);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for ms in (0..40_000).step_by(100) {
            let r = p.rate_at(SimTime::from_millis(ms));
            min = min.min(r);
            max = max.max(r);
        }
        assert!((0.0..0.5).contains(&min), "min {min}");
        assert!(max > 9.5 && max <= 10.0, "max {max}");
    }

    #[test]
    fn sinusoid_counts_follow_waveform() {
        // One 20 s cycle at 0.05 Hz: arrivals in the high half-cycle must
        // far exceed the low half-cycle.
        let p = SinusoidProcess::new(ClassId(0), 0.05, 50.0, 0.0);
        let mut r = rng();
        let arrivals = p.generate(SimTime::from_secs(20), &mut r);
        assert!(!arrivals.is_empty());
        // phase 0: sin positive on (0,10)s, negative on (10,20)s.
        let first_half = arrivals
            .iter()
            .filter(|(t, _)| t.as_secs_f64() < 10.0)
            .count();
        let second_half = arrivals.len() - first_half;
        assert!(
            first_half as f64 > 2.0 * second_half as f64,
            "first {first_half} second {second_half}"
        );
    }

    #[test]
    fn sinusoid_mean_rate_is_half_peak() {
        let p = SinusoidProcess::new(ClassId(0), 0.5, 40.0, 0.0);
        let mut r = rng();
        // 100 s = 50 full cycles: expected 40/2 × 100 = 2 000 arrivals.
        let n = p.generate(SimTime::from_secs(100), &mut r).len();
        assert!((1_800..2_200).contains(&n), "n {n}");
    }

    #[test]
    fn paper_pair_has_phase_and_amplitude_relation() {
        let (q1, q2) = SinusoidProcess::paper_pair(0.05, 8.0);
        assert_eq!(q1.class, ClassId(0));
        assert_eq!(q2.class, ClassId(1));
        assert!((q1.peak_rate_per_sec - 2.0 * q2.peak_rate_per_sec).abs() < 1e-12);
        assert!((q2.phase_rad - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // At t = 0, Q2 is at its... sin(π/2)=1 → peak; Q1 at mid.
        assert!((q2.rate_at(SimTime::ZERO) - q2.peak_rate_per_sec).abs() < 1e-9);
        assert!((q1.rate_at(SimTime::ZERO) - q1.peak_rate_per_sec / 2.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_empirical_mean_matches_formula() {
        let p = ZipfProcess::paper(1, SimDuration::from_millis(500));
        let expected = p.mean_gap_secs();
        let mut r = rng();
        let arrivals = p.generate(SimTime::from_secs(3_000), &mut r);
        assert!(arrivals.len() > 200, "len {}", arrivals.len());
        let mut times: Vec<f64> = arrivals.iter().map(|(t, _)| t.as_secs_f64()).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (mean - expected).abs() < 0.2 * expected,
            "mean gap {mean}s vs {expected}s"
        );
    }

    #[test]
    fn zipf_gaps_bounded_by_min_and_max() {
        let p = ZipfProcess::paper(1, SimDuration::from_millis(5_000));
        let mut r = rng();
        let arrivals = p.generate(SimTime::from_secs(2_000), &mut r);
        let times: Vec<f64> = arrivals.iter().map(|(t, _)| t.as_secs_f64()).collect();
        for w in times.windows(2) {
            let gap = w[1] - w[0];
            assert!((5.0 - 1e-6..=30.0 + 1e-6).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn smaller_min_gap_is_burstier() {
        let tight = ZipfProcess::paper(1, SimDuration::from_millis(10));
        let loose = ZipfProcess::paper(1, SimDuration::from_millis(20_000));
        let mut r1 = rng();
        let mut r2 = rng();
        let horizon = SimTime::from_secs(1_000);
        let a = tight.generate(horizon, &mut r1).len();
        let b = loose.generate(horizon, &mut r2).len();
        assert!(a > 3 * b, "tight {a} vs loose {b}");
    }

    #[test]
    fn zipf_generates_all_classes() {
        let p = ZipfProcess::paper(10, SimDuration::from_millis(500));
        let mut r = rng();
        let arrivals = p.generate(SimTime::from_secs(200), &mut r);
        for c in 0..10 {
            assert!(
                arrivals.iter().any(|(_, cl)| *cl == ClassId(c)),
                "class {c} missing"
            );
        }
    }

    #[test]
    fn zipf_gaps_respect_cap() {
        let p = ZipfProcess::paper(1, SimDuration::from_millis(20_000));
        let mut r = rng();
        let arrivals = p.generate(SimTime::from_secs(3_000), &mut r);
        let times: Vec<f64> = arrivals.iter().map(|(t, _)| t.as_secs_f64()).collect();
        for w in times.windows(2) {
            assert!(
                w[1] - w[0] <= 30.0 + 1e-6,
                "gap {} exceeds cap",
                w[1] - w[0]
            );
        }
    }

    #[test]
    fn uniform_respects_count_and_mean() {
        let p = UniformProcess {
            mean_gap: SimDuration::from_millis(300),
            classes: vec![ClassId(0), ClassId(1), ClassId(2)],
            max_queries: Some(300),
        };
        let mut r = rng();
        let arrivals = p.generate(SimTime::from_secs(600), &mut r);
        assert_eq!(arrivals.len(), 300);
        let last = arrivals.last().unwrap().0.as_secs_f64();
        // 300 gaps of ~0.3 s ≈ 90 s.
        assert!((70.0..110.0).contains(&last), "last arrival {last}s");
        assert!(arrivals.iter().all(|(_, c)| c.index() < 3));
    }

    #[test]
    fn uniform_stops_at_horizon_without_cap() {
        let p = UniformProcess {
            mean_gap: SimDuration::from_millis(100),
            classes: vec![ClassId(0)],
            max_queries: None,
        };
        let mut r = rng();
        let arrivals = p.generate(SimTime::from_secs(5), &mut r);
        assert!(!arrivals.is_empty());
        assert!(arrivals.iter().all(|(t, _)| t.as_secs_f64() < 5.0));
        assert!((40..60).contains(&arrivals.len()), "len {}", arrivals.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let p = SinusoidProcess::new(ClassId(0), 0.05, 10.0, 0.0);
        let a = p.generate(SimTime::from_secs(20), &mut rng());
        let b = p.generate(SimTime::from_secs(20), &mut rng());
        assert_eq!(a, b);
    }
}
