//! Synthetic federation dataset (Table 3).
//!
//! "The dataset was synthetically created and consisted of 1,000 different
//! relations with a size of 1-20 Mbytes (avg. 10.5 Mbytes). Each relation
//! had 5 mirrors, on average, that were distributed randomly over the 100
//! RDBMSs. Each node had approximately 50 different relations."
//!
//! [`Dataset::generate`] reproduces that layout and answers the two
//! questions the allocation layer asks: *which nodes can evaluate a given
//! template* (all touched relations locally mirrored — realistically, with
//! 24-way joins over random mirrors, few nodes qualify per class, which is
//! what makes the federation heterogeneous), and *which relations a node
//! holds*.

use crate::ids::{NodeId, RelationId};
use crate::template::QueryTemplate;
use qa_simnet::DetRng;

/// One relation of the common schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// The relation id.
    pub id: RelationId,
    /// Size in bytes (1–20 MB in the paper).
    pub size_bytes: u64,
    /// Number of attributes (paper: 10).
    pub attributes: u32,
    /// The nodes holding a mirror.
    pub mirrors: Vec<NodeId>,
}

/// Dataset generation parameters (Table 3 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Nodes in the federation (paper: 100).
    pub num_nodes: usize,
    /// Relations in the schema (paper: 1 000).
    pub num_relations: usize,
    /// Relation size range in bytes (paper: 1–20 MB).
    pub size_min_bytes: u64,
    /// Upper bound of the size range.
    pub size_max_bytes: u64,
    /// Attributes per relation (paper: 10).
    pub attributes: u32,
    /// Average mirrors per relation (paper: 5).
    pub mean_mirrors: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            num_nodes: 100,
            num_relations: 1_000,
            size_min_bytes: 1 << 20,
            size_max_bytes: 20 << 20,
            attributes: 10,
            mean_mirrors: 5.0,
        }
    }
}

/// The generated dataset: relations plus the node → relations index.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    relations: Vec<Relation>,
    /// `per_node[n]` = sorted relation ids held by node `n`.
    per_node: Vec<Vec<RelationId>>,
    num_nodes: usize,
}

impl Dataset {
    /// Generates a dataset per the configuration.
    pub fn generate(cfg: &DatasetConfig, rng: &mut DetRng) -> Self {
        assert!(cfg.num_nodes > 0 && cfg.num_relations > 0);
        assert!(cfg.size_min_bytes <= cfg.size_max_bytes);
        assert!(cfg.mean_mirrors >= 1.0 && cfg.mean_mirrors <= cfg.num_nodes as f64);
        let mut relations = Vec::with_capacity(cfg.num_relations);
        let mut per_node: Vec<Vec<RelationId>> = vec![Vec::new(); cfg.num_nodes];
        for i in 0..cfg.num_relations {
            let id = RelationId(i as u32);
            let size_bytes = rng.int_in(cfg.size_min_bytes, cfg.size_max_bytes);
            // Mirror count: uniform on mean ± 2, at least 1, at most every
            // node — symmetric, so the empirical mean matches Table 3.
            let m = cfg.mean_mirrors.round();
            let lo = (m - 2.0).max(1.0) as u64;
            let hi = (m + 2.0).min(cfg.num_nodes as f64) as u64;
            let count = rng.int_in(lo, hi.max(lo)) as usize;
            let mirrors: Vec<NodeId> = rng
                .sample_indices(cfg.num_nodes, count)
                .into_iter()
                .map(|n| NodeId(n as u32))
                .collect();
            for &n in &mirrors {
                per_node[n.index()].push(id);
            }
            relations.push(Relation {
                id,
                size_bytes,
                attributes: cfg.attributes,
                mirrors,
            });
        }
        for rels in &mut per_node {
            rels.sort_unstable();
        }
        Dataset {
            relations,
            per_node,
            num_nodes: cfg.num_nodes,
        }
    }

    /// Builds a dataset from an explicit mirror layout (tests, Fig. 1
    /// micro-model).
    pub fn from_relations(num_nodes: usize, relations: Vec<Relation>) -> Self {
        let mut per_node: Vec<Vec<RelationId>> = vec![Vec::new(); num_nodes];
        for r in &relations {
            for &n in &r.mirrors {
                assert!(n.index() < num_nodes, "mirror on unknown node {n}");
                per_node[n.index()].push(r.id);
            }
        }
        for rels in &mut per_node {
            rels.sort_unstable();
        }
        Dataset {
            relations,
            per_node,
            num_nodes,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The relation record.
    pub fn relation(&self, id: RelationId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Sorted relation ids held by `node`.
    pub fn relations_of(&self, node: NodeId) -> &[RelationId] {
        &self.per_node[node.index()]
    }

    /// `true` iff `node` holds a mirror of `rel`.
    pub fn node_has(&self, node: NodeId, rel: RelationId) -> bool {
        self.per_node[node.index()].binary_search(&rel).is_ok()
    }

    /// The nodes able to evaluate `template` locally: those holding every
    /// relation it touches.
    pub fn capable_nodes(&self, template: &QueryTemplate) -> Vec<NodeId> {
        (0..self.num_nodes)
            .map(|n| NodeId(n as u32))
            .filter(|&n| template.runnable_where(|r| self.node_has(n, r)))
            .collect()
    }

    /// Average mirrors per relation (diagnostic).
    pub fn mean_mirrors(&self) -> f64 {
        self.relations
            .iter()
            .map(|r| r.mirrors.len() as f64)
            .sum::<f64>()
            / self.relations.len() as f64
    }

    /// Average relations per node (diagnostic; paper says ~50).
    pub fn mean_relations_per_node(&self) -> f64 {
        self.per_node.iter().map(|v| v.len() as f64).sum::<f64>() / self.num_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClassId;
    use qa_simnet::SimDuration;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(0xDA7A)
    }

    #[test]
    fn table3_shape() {
        let ds = Dataset::generate(&DatasetConfig::default(), &mut rng());
        assert_eq!(ds.num_relations(), 1_000);
        assert_eq!(ds.num_nodes(), 100);
        let mm = ds.mean_mirrors();
        assert!((mm - 5.0).abs() < 0.5, "mean mirrors {mm}");
        let rpn = ds.mean_relations_per_node();
        assert!((rpn - 50.0).abs() < 10.0, "relations per node {rpn}");
    }

    #[test]
    fn sizes_within_bounds() {
        let cfg = DatasetConfig::default();
        let ds = Dataset::generate(&cfg, &mut rng());
        for i in 0..ds.num_relations() {
            let r = ds.relation(RelationId(i as u32));
            assert!(r.size_bytes >= cfg.size_min_bytes && r.size_bytes <= cfg.size_max_bytes);
            assert_eq!(r.attributes, 10);
            assert!(!r.mirrors.is_empty());
        }
    }

    #[test]
    fn per_node_index_consistent_with_mirrors() {
        let ds = Dataset::generate(&DatasetConfig::default(), &mut rng());
        for i in 0..ds.num_relations() {
            let r = ds.relation(RelationId(i as u32));
            for &n in &r.mirrors {
                assert!(ds.node_has(n, r.id));
            }
        }
    }

    #[test]
    fn capable_nodes_requires_all_relations() {
        let relations = vec![
            Relation {
                id: RelationId(0),
                size_bytes: 1,
                attributes: 1,
                mirrors: vec![NodeId(0), NodeId(1)],
            },
            Relation {
                id: RelationId(1),
                size_bytes: 1,
                attributes: 1,
                mirrors: vec![NodeId(1), NodeId(2)],
            },
        ];
        let ds = Dataset::from_relations(3, relations);
        let t = QueryTemplate {
            id: ClassId(0),
            joins: 1,
            relations: vec![RelationId(0), RelationId(1)],
            base_cost: SimDuration::from_millis(100),
            result_bytes: 1,
        };
        assert_eq!(ds.capable_nodes(&t), vec![NodeId(1)]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&DatasetConfig::default(), &mut rng());
        let b = Dataset::generate(&DatasetConfig::default(), &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn from_relations_validates_mirror_nodes() {
        let relations = vec![Relation {
            id: RelationId(0),
            size_bytes: 1,
            attributes: 1,
            mirrors: vec![NodeId(9)],
        }];
        let _ = Dataset::from_relations(2, relations);
    }
}
