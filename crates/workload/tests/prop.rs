//! Property tests for workload generation.

use proptest::prelude::*;
use qa_simnet::{DetRng, SimDuration, SimTime};
use qa_workload::arrival::{ArrivalProcess, SinusoidProcess, UniformProcess, ZipfProcess};
use qa_workload::{ClassId, Trace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Traces are always time-sorted with dense ids and in-range origins.
    #[test]
    fn trace_invariants(
        seed in any::<u64>(),
        n in 0usize..200,
        nodes in 1usize..50,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let arrivals: Vec<(SimTime, ClassId)> = (0..n)
            .map(|_| {
                (
                    SimTime::from_millis(rng.int_in(0, 10_000)),
                    ClassId(rng.int_in(0, 5) as u32),
                )
            })
            .collect();
        let t = Trace::from_arrivals(arrivals, nodes, &mut rng);
        prop_assert_eq!(t.len(), n);
        for (i, e) in t.iter().enumerate() {
            prop_assert_eq!(e.id, i as u64);
            prop_assert!(e.origin.index() < nodes);
        }
        for w in t.events().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    /// Every arrival process respects the horizon.
    #[test]
    fn processes_respect_horizon(seed in any::<u64>(), secs in 1u64..30) {
        let horizon = SimTime::from_secs(secs);
        let mut rng = DetRng::seed_from_u64(seed);
        let sin = SinusoidProcess::new(ClassId(0), 0.1, 20.0, 0.0);
        for (t, _) in sin.generate(horizon, &mut rng) {
            prop_assert!(t < horizon);
        }
        let zipf = ZipfProcess::paper(3, SimDuration::from_millis(500));
        for (t, _) in zipf.generate(horizon, &mut rng) {
            prop_assert!(t < horizon);
        }
        let uni = UniformProcess {
            mean_gap: SimDuration::from_millis(200),
            classes: vec![ClassId(0), ClassId(1)],
            max_queries: None,
        };
        for (t, _) in uni.generate(horizon, &mut rng) {
            prop_assert!(t < horizon);
        }
    }

    /// The sinusoid's empirical rate is bounded by its peak.
    #[test]
    fn sinusoid_rate_bounded(seed in any::<u64>(), peak in 1.0f64..50.0) {
        let p = SinusoidProcess::new(ClassId(0), 0.2, peak, 0.0);
        let mut rng = DetRng::seed_from_u64(seed);
        let arrivals = p.generate(SimTime::from_secs(30), &mut rng);
        // Expected count = peak/2 × 30; allow generous stochastic slack.
        let expected = peak / 2.0 * 30.0;
        prop_assert!(
            (arrivals.len() as f64) < 2.0 * expected + 30.0,
            "{} arrivals for expected {expected}",
            arrivals.len()
        );
    }

    /// Merging traces preserves every event and global order.
    #[test]
    fn trace_merge_preserves_events(seed in any::<u64>(), n1 in 0usize..50, n2 in 0usize..50) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mk = |n: usize, rng: &mut DetRng| {
            let arrivals: Vec<(SimTime, ClassId)> = (0..n)
                .map(|_| (SimTime::from_millis(rng.int_in(0, 1_000)), ClassId(0)))
                .collect();
            Trace::from_arrivals(arrivals, 3, rng)
        };
        let a = mk(n1, &mut rng);
        let b = mk(n2, &mut rng);
        let merged = a.clone().merge(b.clone());
        prop_assert_eq!(merged.len(), a.len() + b.len());
        for w in merged.events().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }
}
