//! Property tests for workload generation, driven by seeded [`DetRng`]
//! loops (the hermetic-build substitute for proptest): each property runs
//! over 64 random cases from a fixed seed, so failures reproduce exactly.

use qa_simnet::{DetRng, SimDuration, SimTime};
use qa_workload::arrival::{ArrivalProcess, SinusoidProcess, UniformProcess, ZipfProcess};
use qa_workload::{ClassId, Trace};

const CASES: usize = 64;

/// Traces are always time-sorted with dense ids and in-range origins.
#[test]
fn trace_invariants() {
    let mut meta = DetRng::seed_from_u64(0x0A10_0001);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let n = meta.index(200);
        let nodes = 1 + meta.index(49);
        let mut rng = DetRng::seed_from_u64(seed);
        let arrivals: Vec<(SimTime, ClassId)> = (0..n)
            .map(|_| {
                (
                    SimTime::from_millis(rng.int_in(0, 10_000)),
                    ClassId(rng.int_in(0, 5) as u32),
                )
            })
            .collect();
        let t = Trace::from_arrivals(arrivals, nodes, &mut rng);
        assert_eq!(t.len(), n, "case {case}");
        for (i, e) in t.iter().enumerate() {
            assert_eq!(e.id, i as u64, "case {case}");
            assert!(e.origin.index() < nodes, "case {case}");
        }
        for w in t.events().windows(2) {
            assert!(w[0].at <= w[1].at, "case {case}");
        }
    }
}

/// Every arrival process respects the horizon.
#[test]
fn processes_respect_horizon() {
    let mut meta = DetRng::seed_from_u64(0x0A10_0002);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let secs = 1 + meta.index(29) as u64;
        let horizon = SimTime::from_secs(secs);
        let mut rng = DetRng::seed_from_u64(seed);
        let sin = SinusoidProcess::new(ClassId(0), 0.1, 20.0, 0.0);
        for (t, _) in sin.generate(horizon, &mut rng) {
            assert!(t < horizon, "case {case}");
        }
        let zipf = ZipfProcess::paper(3, SimDuration::from_millis(500));
        for (t, _) in zipf.generate(horizon, &mut rng) {
            assert!(t < horizon, "case {case}");
        }
        let uni = UniformProcess {
            mean_gap: SimDuration::from_millis(200),
            classes: vec![ClassId(0), ClassId(1)],
            max_queries: None,
        };
        for (t, _) in uni.generate(horizon, &mut rng) {
            assert!(t < horizon, "case {case}");
        }
    }
}

/// The sinusoid's empirical rate is bounded by its peak.
#[test]
fn sinusoid_rate_bounded() {
    let mut meta = DetRng::seed_from_u64(0x0A10_0003);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let peak = meta.float_in(1.0, 50.0);
        let p = SinusoidProcess::new(ClassId(0), 0.2, peak, 0.0);
        let mut rng = DetRng::seed_from_u64(seed);
        let arrivals = p.generate(SimTime::from_secs(30), &mut rng);
        // Expected count = peak/2 × 30; allow generous stochastic slack.
        let expected = peak / 2.0 * 30.0;
        assert!(
            (arrivals.len() as f64) < 2.0 * expected + 30.0,
            "case {case}: {} arrivals for expected {expected}",
            arrivals.len()
        );
    }
}

/// Merging traces preserves every event and global order.
#[test]
fn trace_merge_preserves_events() {
    let mut meta = DetRng::seed_from_u64(0x0A10_0004);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let n1 = meta.index(50);
        let n2 = meta.index(50);
        let mut rng = DetRng::seed_from_u64(seed);
        let mk = |n: usize, rng: &mut DetRng| {
            let arrivals: Vec<(SimTime, ClassId)> = (0..n)
                .map(|_| (SimTime::from_millis(rng.int_in(0, 1_000)), ClassId(0)))
                .collect();
            Trace::from_arrivals(arrivals, 3, rng)
        };
        let a = mk(n1, &mut rng);
        let b = mk(n2, &mut rng);
        let merged = a.clone().merge(b.clone());
        assert_eq!(merged.len(), a.len() + b.len(), "case {case}");
        for w in merged.events().windows(2) {
            assert!(w[0].at <= w[1].at, "case {case}");
        }
    }
}
