//! Property tests for the relational engine, driven by seeded [`DetRng`]
//! loops (the hermetic-build substitute for proptest): each property runs
//! over 150 random cases from a fixed seed, so failures reproduce exactly.

use qa_minidb::exec::basic::{Scan, Sort};
use qa_minidb::exec::collect;
use qa_minidb::exec::join::{HashJoin, MergeJoin, NestedLoopJoin};
use qa_minidb::expr::BoundExpr;
use qa_minidb::value::{DataType, Row, Value};
use qa_minidb::Database;
use qa_simnet::DetRng;

const CASES: usize = 150;

fn random_rows(rng: &mut DetRng, max: usize) -> Vec<Row> {
    let n = rng.index(max);
    (0..n)
        .map(|_| {
            let key = if rng.chance(1.0 / 9.0) {
                Value::Null
            } else {
                Value::Int(rng.int_in(0, 7) as i64)
            };
            vec![key, Value::Int(rng.int_in(0, 99) as i64)]
        })
        .collect()
}

fn random_value(rng: &mut DetRng) -> Value {
    match rng.index(7) {
        0 => Value::Null,
        1 => Value::Bool(rng.chance(0.5)),
        2 => Value::Int(rng.int_in(0, 199) as i64 - 100),
        3 => Value::Float(rng.float_in(-100.0, 100.0)),
        4 => Value::Float(0.0),
        5 => Value::Float(-0.0),
        _ => {
            let len = rng.index(4);
            Value::Str(
                (0..len)
                    .map(|_| char::from(b'a' + rng.index(3) as u8))
                    .collect(),
            )
        }
    }
}

fn sorted(mut v: Vec<Row>) -> Vec<Row> {
    v.sort();
    v
}

/// The three join algorithms agree on arbitrary inputs (equi join on the
/// first column, NULLs never matching).
#[test]
fn join_algorithms_agree() {
    let mut rng = DetRng::seed_from_u64(0x11D8_0001);
    for case in 0..CASES {
        let left = random_rows(&mut rng, 30);
        let right = random_rows(&mut rng, 30);
        let equi = vec![(0usize, 0usize)];
        let hash = collect(Box::new(HashJoin::new(
            Box::new(Scan::new(&left)),
            Box::new(Scan::new(&right)),
            equi.clone(),
            None,
            2,
        )))
        .unwrap();
        let merge = collect(Box::new(MergeJoin::new(
            Box::new(Scan::new(&left)),
            Box::new(Scan::new(&right)),
            equi.clone(),
            None,
        )))
        .unwrap();
        let nl = collect(Box::new(NestedLoopJoin::new(
            Box::new(Scan::new(&left)),
            Box::new(Scan::new(&right)),
            equi,
            None,
            2,
        )))
        .unwrap();
        assert_eq!(sorted(hash.clone()), sorted(merge), "case {case}");
        assert_eq!(sorted(hash), sorted(nl), "case {case}");
    }
}

/// Join output size equals the sum over keys of |L_k|·|R_k|.
#[test]
fn join_cardinality_formula() {
    use std::collections::HashMap;
    let mut rng = DetRng::seed_from_u64(0x11D8_0002);
    for case in 0..CASES {
        let left = random_rows(&mut rng, 30);
        let right = random_rows(&mut rng, 30);
        let mut lc: HashMap<Value, usize> = HashMap::new();
        for r in &left {
            if !r[0].is_null() {
                *lc.entry(r[0].clone()).or_default() += 1;
            }
        }
        let mut expected = 0usize;
        for r in &right {
            if !r[0].is_null() {
                expected += lc.get(&r[0]).copied().unwrap_or(0);
            }
        }
        let out = collect(Box::new(HashJoin::new(
            Box::new(Scan::new(&left)),
            Box::new(Scan::new(&right)),
            vec![(0, 0)],
            None,
            2,
        )))
        .unwrap();
        assert_eq!(out.len(), expected, "case {case}");
    }
}

/// Sort emits a permutation of its input, ordered by the key.
#[test]
fn sort_is_an_ordered_permutation() {
    let mut rng = DetRng::seed_from_u64(0x11D8_0003);
    for case in 0..CASES {
        let rows = random_rows(&mut rng, 50);
        let key = BoundExpr::Column {
            index: 1,
            ty: DataType::Int,
            name: "v".into(),
        };
        let out = collect(Box::new(Sort::new(
            Box::new(Scan::new(&rows)),
            vec![(key, true)],
        )))
        .unwrap();
        assert_eq!(out.len(), rows.len(), "case {case}");
        assert_eq!(sorted(out.clone()), sorted(rows), "case {case}");
        for w in out.windows(2) {
            assert!(w[0][1] <= w[1][1], "case {case}");
        }
    }
}

/// Value ordering is a total order: transitive and antisymmetric on random
/// triples.
#[test]
fn value_order_is_total() {
    use std::cmp::Ordering;
    let mut rng = DetRng::seed_from_u64(0x11D8_0004);
    for _ in 0..CASES * 4 {
        let a = random_value(&mut rng);
        let b = random_value(&mut rng);
        let c = random_value(&mut rng);
        // Antisymmetry.
        if a.cmp(&b) == Ordering::Less {
            assert_eq!(b.cmp(&a), Ordering::Greater);
        }
        // Transitivity.
        if a <= b && b <= c {
            assert!(a <= c);
        }
        // Hash consistency.
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| {
                let mut s = DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            };
            assert_eq!(h(&a), h(&b));
        }
    }
}

/// Aggregates computed by the engine equal a direct computation.
#[test]
fn sql_aggregates_match_reference() {
    let mut rng = DetRng::seed_from_u64(0x11D8_0005);
    for case in 0..CASES {
        let values: Vec<i64> = (0..1 + rng.index(59))
            .map(|_| rng.int_in(0, 999) as i64)
            .collect();
        let mut db = Database::new();
        db.execute("CREATE TABLE t (v INT)").unwrap();
        db.load_rows("t", values.iter().map(|&v| vec![Value::Int(v)]).collect())
            .unwrap();
        let r = db
            .query("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t")
            .unwrap();
        let row = &r.rows[0];
        assert_eq!(&row[0], &Value::Int(values.len() as i64), "case {case}");
        assert_eq!(
            &row[1],
            &Value::Int(values.iter().sum::<i64>()),
            "case {case}"
        );
        assert_eq!(
            &row[2],
            &Value::Int(*values.iter().min().unwrap()),
            "case {case}"
        );
        assert_eq!(
            &row[3],
            &Value::Int(*values.iter().max().unwrap()),
            "case {case}"
        );
    }
}

/// WHERE filters match a direct predicate evaluation.
#[test]
fn sql_filter_matches_reference() {
    let mut rng = DetRng::seed_from_u64(0x11D8_0006);
    for case in 0..CASES {
        let values: Vec<i64> = (0..rng.index(60))
            .map(|_| rng.int_in(0, 99) as i64)
            .collect();
        let cutoff = rng.int_in(0, 99) as i64;
        let mut db = Database::new();
        db.execute("CREATE TABLE t (v INT)").unwrap();
        db.load_rows("t", values.iter().map(|&v| vec![Value::Int(v)]).collect())
            .unwrap();
        let r = db
            .query(&format!("SELECT v FROM t WHERE v > {cutoff} ORDER BY v"))
            .unwrap();
        let mut expected: Vec<i64> = values.iter().copied().filter(|&v| v > cutoff).collect();
        expected.sort_unstable();
        let got: Vec<i64> = r
            .rows
            .iter()
            .map(|row| match row[0] {
                Value::Int(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, expected, "case {case}");
    }
}
