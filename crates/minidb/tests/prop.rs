//! Property tests for the relational engine.

use proptest::prelude::*;
use qa_minidb::exec::basic::{Scan, Sort};
use qa_minidb::exec::join::{HashJoin, MergeJoin, NestedLoopJoin};
use qa_minidb::exec::collect;
use qa_minidb::expr::BoundExpr;
use qa_minidb::value::{DataType, Row, Value};
use qa_minidb::Database;

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (
            prop_oneof![Just(Value::Null), (0i64..8).prop_map(Value::Int)],
            0i64..100,
        )
            .prop_map(|(k, v)| vec![k, Value::Int(v)]),
        0..max,
    )
}

fn sorted(mut v: Vec<Row>) -> Vec<Row> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// The three join algorithms agree on arbitrary inputs (equi join on
    /// the first column, NULLs never matching).
    #[test]
    fn join_algorithms_agree(left in rows_strategy(30), right in rows_strategy(30)) {
        let equi = vec![(0usize, 0usize)];
        let hash = collect(Box::new(HashJoin::new(
            Box::new(Scan::new(&left)),
            Box::new(Scan::new(&right)),
            equi.clone(),
            None,
            2,
        ))).unwrap();
        let merge = collect(Box::new(MergeJoin::new(
            Box::new(Scan::new(&left)),
            Box::new(Scan::new(&right)),
            equi.clone(),
            None,
        ))).unwrap();
        let nl = collect(Box::new(NestedLoopJoin::new(
            Box::new(Scan::new(&left)),
            Box::new(Scan::new(&right)),
            equi,
            None,
            2,
        ))).unwrap();
        prop_assert_eq!(sorted(hash.clone()), sorted(merge));
        prop_assert_eq!(sorted(hash), sorted(nl));
    }

    /// Join output size equals the sum over keys of |L_k|·|R_k|.
    #[test]
    fn join_cardinality_formula(left in rows_strategy(30), right in rows_strategy(30)) {
        use std::collections::HashMap;
        let mut lc: HashMap<Value, usize> = HashMap::new();
        for r in &left {
            if !r[0].is_null() {
                *lc.entry(r[0].clone()).or_default() += 1;
            }
        }
        let mut expected = 0usize;
        for r in &right {
            if !r[0].is_null() {
                expected += lc.get(&r[0]).copied().unwrap_or(0);
            }
        }
        let out = collect(Box::new(HashJoin::new(
            Box::new(Scan::new(&left)),
            Box::new(Scan::new(&right)),
            vec![(0, 0)],
            None,
            2,
        ))).unwrap();
        prop_assert_eq!(out.len(), expected);
    }

    /// Sort emits a permutation of its input, ordered by the key.
    #[test]
    fn sort_is_an_ordered_permutation(rows in rows_strategy(50)) {
        let key = BoundExpr::Column { index: 1, ty: DataType::Int, name: "v".into() };
        let out = collect(Box::new(Sort::new(
            Box::new(Scan::new(&rows)),
            vec![(key, true)],
        ))).unwrap();
        prop_assert_eq!(out.len(), rows.len());
        prop_assert_eq!(sorted(out.clone()), sorted(rows));
        for w in out.windows(2) {
            prop_assert!(w[0][1] <= w[1][1]);
        }
    }

    /// Value ordering is a total order: transitive and antisymmetric on
    /// random triples.
    #[test]
    fn value_order_is_total(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        if a.cmp(&b) == Ordering::Less {
            prop_assert_eq!(b.cmp(&a), Ordering::Greater);
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Hash consistency.
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| {
                let mut s = DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            };
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// Aggregates computed by the engine equal a direct computation.
    #[test]
    fn sql_aggregates_match_reference(values in proptest::collection::vec(0i64..1_000, 1..60)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (v INT)").unwrap();
        db.load_rows("t", values.iter().map(|&v| vec![Value::Int(v)]).collect()).unwrap();
        let r = db.query("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t").unwrap();
        let row = &r.rows[0];
        prop_assert_eq!(&row[0], &Value::Int(values.len() as i64));
        prop_assert_eq!(&row[1], &Value::Int(values.iter().sum::<i64>()));
        prop_assert_eq!(&row[2], &Value::Int(*values.iter().min().unwrap()));
        prop_assert_eq!(&row[3], &Value::Int(*values.iter().max().unwrap()));
    }

    /// WHERE filters match a direct predicate evaluation.
    #[test]
    fn sql_filter_matches_reference(
        values in proptest::collection::vec(0i64..100, 0..60),
        cutoff in 0i64..100,
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (v INT)").unwrap();
        db.load_rows("t", values.iter().map(|&v| vec![Value::Int(v)]).collect()).unwrap();
        let r = db
            .query(&format!("SELECT v FROM t WHERE v > {cutoff} ORDER BY v"))
            .unwrap();
        let mut expected: Vec<i64> = values.iter().copied().filter(|&v| v > cutoff).collect();
        expected.sort_unstable();
        let got: Vec<i64> = r.rows.iter().map(|row| match row[0] {
            Value::Int(v) => v,
            _ => unreachable!(),
        }).collect();
        prop_assert_eq!(got, expected);
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Float),
        Just(Value::Float(0.0)),
        Just(Value::Float(-0.0)),
        "[a-c]{0,3}".prop_map(Value::Str),
    ]
}
