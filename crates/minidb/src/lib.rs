//! # qa-minidb — a from-scratch in-memory relational DBMS
//!
//! The real-deployment experiment of *Autonomic Query Allocation based on
//! Microeconomics Principles* (§5.2) runs QA-NT on five PCs hosting "the
//! latest version of a leading commercial RDBMS", estimating query costs
//! with `EXPLAIN PLAN` corrected by past-execution history. This crate is
//! the open substitute for that RDBMS: a small but real relational engine
//! that parses SQL, plans it with a cost-based optimizer, explains plans
//! with cost estimates, and executes them over in-memory tables.
//!
//! The engine supports exactly the workload shape the paper uses —
//! read-only select-join-project-sort(-group) queries (§2.1) over base
//! tables and select-project views — plus the DDL/DML needed to set an
//! experiment up:
//!
//! * `CREATE TABLE` / `CREATE VIEW` / `INSERT` / `SELECT`
//! * scans, filters, projections, hash/merge/nested-loop joins, sorts,
//!   hash aggregation (`COUNT/SUM/MIN/MAX/AVG`, `GROUP BY`), `LIMIT`
//! * `EXPLAIN` with estimated cardinalities and cost, and a stable *plan
//!   fingerprint* that `qa-cluster` keys its execution-history estimator on
//!   (the paper's "past execution information concerning queries with the
//!   same plan").
//!
//! Entry point: [`Database`].
//!
//! ```
//! use qa_minidb::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE emp (id INT, dept TEXT, salary FLOAT)").unwrap();
//! db.execute("INSERT INTO emp VALUES (1, 'eng', 100.0), (2, 'ops', 80.0)").unwrap();
//! let result = db
//!     .execute("SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept")
//!     .unwrap();
//! assert_eq!(result.rows.len(), 2);
//! ```

pub mod catalog;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod plan;
pub mod schema;
pub mod sql;
pub mod storage;
pub mod value;

pub use engine::{Database, QueryResult};
pub use error::{DbError, DbResult};
pub use plan::explain::Explain;
pub use schema::{Column, Schema};
pub use value::{DataType, Value};
