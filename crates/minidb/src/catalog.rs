//! The catalog: tables and views by (case-insensitive) name.
//!
//! Views store their defining `SELECT` text; the binder inlines a view by
//! re-parsing and re-binding its definition at reference time, exactly like
//! the select-project views over base tables that the paper's real
//! deployment uses (§5.2: "80 select-project views over these tables").

use crate::error::{DbError, DbResult};
use crate::storage::Table;
use std::collections::HashMap;

/// A stored view definition.
#[derive(Debug, Clone)]
pub struct View {
    /// The view name.
    pub name: String,
    /// The defining `SELECT` statement text.
    pub query: String,
}

/// The namespace of tables and views.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    views: HashMap<String, View>,
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table.
    ///
    /// # Errors
    /// `Catalog` if a table or view with the name exists.
    pub fn create_table(&mut self, table: Table) -> DbResult<()> {
        let k = key(table.name());
        if self.tables.contains_key(&k) || self.views.contains_key(&k) {
            return Err(DbError::catalog(format!(
                "relation '{}' already exists",
                table.name()
            )));
        }
        self.tables.insert(k, table);
        Ok(())
    }

    /// Registers a view.
    ///
    /// # Errors
    /// `Catalog` if a table or view with the name exists.
    pub fn create_view(&mut self, view: View) -> DbResult<()> {
        let k = key(&view.name);
        if self.tables.contains_key(&k) || self.views.contains_key(&k) {
            return Err(DbError::catalog(format!(
                "relation '{}' already exists",
                view.name
            )));
        }
        self.views.insert(k, view);
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&key(name))
    }

    /// Mutable table lookup (INSERT path).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&key(name))
    }

    /// Looks up a view.
    pub fn view(&self, name: &str) -> Option<&View> {
        self.views.get(&key(name))
    }

    /// `true` iff any relation (table or view) with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        let k = key(name);
        self.tables.contains_key(&k) || self.views.contains_key(&k)
    }

    /// Names of all tables (unsorted).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.values().map(|t| t.name()).collect()
    }

    /// Names of all views (unsorted).
    pub fn view_names(&self) -> Vec<&str> {
        self.views.values().map(|v| v.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn t(name: &str) -> Table {
        Table::new(name, Schema::new(vec![Column::new("x", DataType::Int)]))
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.create_table(t("Emp")).unwrap();
        assert!(c.table("emp").is_some());
        assert!(c.table("EMP").is_some());
        assert!(c.contains("eMp"));
        assert!(c.table("dept").is_none());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table(t("a")).unwrap();
        assert!(matches!(
            c.create_table(t("A")).unwrap_err(),
            DbError::Catalog(_)
        ));
    }

    #[test]
    fn view_and_table_share_namespace() {
        let mut c = Catalog::new();
        c.create_table(t("a")).unwrap();
        let v = View {
            name: "a".into(),
            query: "SELECT x FROM a".into(),
        };
        assert!(c.create_view(v).is_err());
        c.create_view(View {
            name: "va".into(),
            query: "SELECT x FROM a".into(),
        })
        .unwrap();
        assert!(c.view("VA").is_some());
        assert!(c.create_table(t("va")).is_err());
    }

    #[test]
    fn names_listing() {
        let mut c = Catalog::new();
        c.create_table(t("one")).unwrap();
        c.create_table(t("two")).unwrap();
        let mut names = c.table_names();
        names.sort_unstable();
        assert_eq!(names, vec!["one", "two"]);
    }
}
