//! Runtime values and data types.
//!
//! Three scalar types cover the paper's select-join-project-sort workload:
//! 64-bit integers, 64-bit floats and UTF-8 strings, plus SQL `NULL`.
//! Values are totally ordered (NULLs first, floats by IEEE `total_cmp`) so
//! sort and merge-join never have to handle incomparable pairs, and hashing
//! is consistent with equality (floats hash their bit pattern after
//! normalizing `-0.0`, integers and equal-valued floats intentionally hash
//! differently only when they compare differently).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean (produced by predicates; storable).
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "BOOL"),
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (typeless).
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
        }
    }

    /// `true` iff NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int or Float) as f64, if applicable.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// `true` iff the value is a non-NULL number.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Whether this value can be stored in a column of type `ty`
    /// (NULL fits anywhere; INT widens into FLOAT).
    pub fn fits(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Str(_), DataType::Text)
        )
    }

    /// Coerces into column type `ty` (only INT → FLOAT actually converts).
    pub fn coerce(self, ty: DataType) -> Value {
        match (self, ty) {
            (Value::Int(i), DataType::Float) => Value::Float(i as f64),
            (v, _) => v,
        }
    }

    /// Normalized float bits for hashing (`-0.0` → `0.0`, all NaNs equal).
    fn float_bits(f: f64) -> u64 {
        if f == 0.0 {
            0u64
        } else if f.is_nan() {
            f64::NAN.to_bits()
        } else {
            f.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < numbers < strings; Int and Float compare
    /// numerically (so `1 = 1.0`); floats use `total_cmp` among themselves.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
            // Numbers hash through their f64 representation so that
            // Int(1) and Float(1.0), which compare equal, hash equal.
            Value::Int(i) => {
                1u8.hash(state);
                Value::float_bits(*i as f64).hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                Value::float_bits(*f).hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// Float comparison for the total order: `-0.0 == 0.0` (unlike raw
/// `total_cmp`), NaNs equal to each other and ordered after all numbers.
fn cmp_f64(a: f64, b: f64) -> Ordering {
    if a == b {
        Ordering::Equal
    } else {
        a.total_cmp(&b)
    }
}

/// A tuple of values — one table/operator row.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn total_order_across_types() {
        let mut vs = vec![
            Value::Str("b".into()),
            Value::Int(5),
            Value::Null,
            Value::Float(2.5),
            Value::Str("a".into()),
            Value::Int(-1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Int(-1),
                Value::Float(2.5),
                Value::Int(5),
                Value::Str("a".into()),
                Value::Str("b".into()),
            ]
        );
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(2.5) > Value::Int(2));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(h(&Value::Int(1)), h(&Value::Float(1.0)));
        assert_eq!(h(&Value::Float(0.0)), h(&Value::Float(-0.0)));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn nan_is_self_consistent() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(h(&nan), h(&nan.clone()));
    }

    #[test]
    fn fits_and_coerce() {
        assert!(Value::Int(1).fits(DataType::Float));
        assert!(!Value::Float(1.0).fits(DataType::Int));
        assert!(Value::Null.fits(DataType::Text));
        assert_eq!(Value::Int(3).coerce(DataType::Float), Value::Float(3.0));
        assert_eq!(
            Value::Str("x".into()).coerce(DataType::Text),
            Value::Str("x".into())
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Str("hi".into()).to_string(), "'hi'");
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }
}
