//! SQL front-end: lexer, AST and parser.
//!
//! Covers the dialect subset the paper's workload needs (§2.1 read-only
//! select-join-project-sort queries, plus the DDL/DML to set experiments
//! up):
//!
//! ```sql
//! CREATE TABLE t (a INT, b FLOAT, c TEXT);
//! CREATE VIEW v AS SELECT a, b FROM t WHERE a > 0;
//! INSERT INTO t VALUES (1, 2.0, 'x'), (2, 3.5, 'y');
//! SELECT t.a, SUM(u.b) FROM t JOIN u ON t.a = u.a
//!   WHERE u.b >= 10 AND c <> 'z'
//!   GROUP BY t.a ORDER BY t.a DESC LIMIT 5;
//! EXPLAIN SELECT ...;
//! ```

pub mod ast;
pub mod parser;
pub mod token;

pub use ast::{AggFunc, BinaryOp, Expr, FromClause, SelectItem, SelectStmt, Statement, UnaryOp};
pub use parser::parse_statement;
pub use token::{tokenize, Token};
