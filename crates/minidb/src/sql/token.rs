//! The lexer.
//!
//! Hand-rolled single-pass tokenizer. Keywords are recognized
//! case-insensitively but kept as [`Token::Keyword`] with an upper-cased
//! spelling; identifiers preserve their original case (resolution is
//! case-insensitive anyway). String literals use single quotes with `''`
//! escaping, as in standard SQL.

use crate::error::{DbError, DbResult};
use std::fmt;

/// Reserved words.
const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "JOIN", "ON", "AS", "AND", "OR",
    "NOT", "CREATE", "TABLE", "VIEW", "INSERT", "INTO", "VALUES", "INT", "FLOAT", "TEXT", "ASC",
    "DESC", "COUNT", "SUM", "MIN", "MAX", "AVG", "EXPLAIN", "NULL", "IS", "DISTINCT", "INDEX",
];

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A reserved word, upper-cased.
    Keyword(String),
    /// An identifier (original case preserved).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal (unescaped content).
    Str(String),
    /// A punctuation/operator symbol: `( ) , . * = <> < <= > >= + - / ;`.
    Symbol(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Symbol(s) => write!(f, "{s}"),
        }
    }
}

/// Tokenizes `input`.
///
/// # Errors
/// `Parse` on unterminated strings, malformed numbers or unknown
/// characters, with byte positions in the message.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | ';' | '=' => {
                out.push(Token::Symbol(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    ';' => ";",
                    _ => "=",
                }));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    out.push(Token::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    out.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    return Err(DbError::parse(format!("unexpected '!' at byte {i}")));
                }
            }
            '\'' => {
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(DbError::parse(format!(
                                "unterminated string starting at byte {start}"
                            )))
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                // A '.' is part of the number only if followed by a digit —
                // `1.5` is a float, `t1.x` stays ident-dot-ident.
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| DbError::parse(format!("bad float '{text}'")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| DbError::parse(format!("integer '{text}' out of range")))?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word.to_string()));
                }
            }
            other => {
                return Err(DbError::parse(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("select Foo FROM bar"),
            vec![
                Token::Keyword("SELECT".into()),
                Token::Ident("Foo".into()),
                Token::Keyword("FROM".into()),
                Token::Ident("bar".into()),
            ]
        );
    }

    #[test]
    fn numbers_ints_and_floats() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("3.25"), vec![Token::Float(3.25)]);
        // Qualified column, not a float.
        assert_eq!(
            toks("t1.x"),
            vec![
                Token::Ident("t1".into()),
                Token::Symbol("."),
                Token::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'abc'"), vec![Token::Str("abc".into())]);
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a <= b <> c >= d != e"),
            vec![
                Token::Ident("a".into()),
                Token::Symbol("<="),
                Token::Ident("b".into()),
                Token::Symbol("<>"),
                Token::Ident("c".into()),
                Token::Symbol(">="),
                Token::Ident("d".into()),
                Token::Symbol("<>"),
                Token::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn arithmetic_and_punctuation() {
        assert_eq!(
            toks("(a + b) * 2, -c"),
            vec![
                Token::Symbol("("),
                Token::Ident("a".into()),
                Token::Symbol("+"),
                Token::Ident("b".into()),
                Token::Symbol(")"),
                Token::Symbol("*"),
                Token::Int(2),
                Token::Symbol(","),
                Token::Symbol("-"),
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn unknown_character_errors() {
        assert!(matches!(tokenize("a @ b"), Err(DbError::Parse(_))));
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn underscored_identifiers() {
        assert_eq!(toks("foo_bar_1"), vec![Token::Ident("foo_bar_1".into())]);
    }
}
