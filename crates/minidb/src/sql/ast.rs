//! Abstract syntax tree, with a pretty-printer.
//!
//! The printer produces SQL the parser accepts, which the property tests
//! exploit: `parse(print(ast)) == ast`.

use crate::value::{DataType, Value};
use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
    },
    /// `CREATE VIEW name AS SELECT …`
    CreateView {
        /// View name.
        name: String,
        /// The defining query.
        select: SelectStmt,
    },
    /// `CREATE INDEX name ON table (column)`
    CreateIndex {
        /// Index name (catalog bookkeeping only).
        name: String,
        /// The indexed table.
        table: String,
        /// The indexed column.
        column: String,
    },
    /// `INSERT INTO name VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Value>>,
    },
    /// `SELECT …`
    Select(SelectStmt),
    /// `EXPLAIN SELECT …`
    Explain(SelectStmt),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT` — deduplicate the projected rows.
    pub distinct: bool,
    /// The projection list.
    pub projections: Vec<SelectItem>,
    /// The `FROM` clause (absent for `SELECT 1`-style constants).
    pub from: Option<FromClause>,
    /// The `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `ORDER BY` expressions with ascending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// One projection-list entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// An expression with an optional `AS` alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// The output alias.
        alias: Option<String>,
    },
}

/// A `FROM` clause: a table or a left-deep join tree.
#[derive(Debug, Clone, PartialEq)]
pub enum FromClause {
    /// A base table or view with an optional alias.
    Table {
        /// Relation name.
        name: String,
        /// Alias (defaults to the name).
        alias: Option<String>,
    },
    /// `left JOIN right ON condition`
    Join {
        /// Left input.
        left: Box<FromClause>,
        /// Right input.
        right: Box<FromClause>,
        /// Join condition.
        on: Expr,
    },
}

/// Binary operators, loosest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// `true` for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::Count => write!(f, "COUNT"),
            AggFunc::Sum => write!(f, "SUM"),
            AggFunc::Min => write!(f, "MIN"),
            AggFunc::Max => write!(f, "MAX"),
            AggFunc::Avg => write!(f, "AVG"),
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, optionally qualified.
    Column {
        /// Table alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// Unary application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary application.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Aggregate call; `None` argument means `COUNT(*)`.
    Agg {
        /// The function.
        func: AggFunc,
        /// The argument (`None` only for COUNT).
        arg: Option<Box<Expr>>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Expr {
    /// Fully parenthesized, so precedence never matters on re-parse.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Agg { func, arg } => match arg {
                Some(a) => write!(f, "{func}({a})"),
                None => write!(f, "{func}(*)"),
            },
            Expr::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "({expr} IS NOT NULL)")
                } else {
                    write!(f, "({expr} IS NULL)")
                }
            }
        }
    }
}

impl fmt::Display for FromClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromClause::Table { name, alias } => match alias {
                Some(a) if a != name => write!(f, "{name} AS {a}"),
                _ => write!(f, "{name}"),
            },
            FromClause::Join { left, right, on } => {
                write!(f, "{left} JOIN {right} ON {on}")
            }
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, p) in self.projections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match p {
                SelectItem::Star => write!(f, "*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (e, asc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e} {}", if *asc { "ASC" } else { "DESC" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_is_fully_parenthesized() {
        let e = Expr::Binary {
            left: Box::new(Expr::Column {
                qualifier: Some("t".into()),
                name: "a".into(),
            }),
            op: BinaryOp::Add,
            right: Box::new(Expr::Binary {
                left: Box::new(Expr::Literal(Value::Int(2))),
                op: BinaryOp::Mul,
                right: Box::new(Expr::Column {
                    qualifier: None,
                    name: "b".into(),
                }),
            }),
        };
        assert_eq!(e.to_string(), "(t.a + (2 * b))");
    }

    #[test]
    fn select_display_covers_all_clauses() {
        let s = SelectStmt {
            distinct: false,
            projections: vec![
                SelectItem::Star,
                SelectItem::Expr {
                    expr: Expr::Agg {
                        func: AggFunc::Count,
                        arg: None,
                    },
                    alias: Some("n".into()),
                },
            ],
            from: Some(FromClause::Table {
                name: "t".into(),
                alias: None,
            }),
            where_clause: Some(Expr::IsNull {
                expr: Box::new(Expr::Column {
                    qualifier: None,
                    name: "x".into(),
                }),
                negated: true,
            }),
            group_by: vec![Expr::Column {
                qualifier: None,
                name: "g".into(),
            }],
            order_by: vec![(
                Expr::Column {
                    qualifier: None,
                    name: "g".into(),
                },
                false,
            )],
            limit: Some(10),
        };
        assert_eq!(
            s.to_string(),
            "SELECT *, COUNT(*) AS n FROM t WHERE (x IS NOT NULL) \
             GROUP BY g ORDER BY g DESC LIMIT 10"
        );
    }
}
