//! Recursive-descent parser with operator precedence.
//!
//! Precedence (loosest to tightest): `OR`, `AND`, `NOT`, comparisons /
//! `IS [NOT] NULL`, `+ -`, `* /`, unary `-`, primaries.

use super::ast::{AggFunc, BinaryOp, Expr, FromClause, SelectItem, SelectStmt, Statement, UnaryOp};
use super::token::{tokenize, Token};
use crate::error::{DbError, DbResult};
use crate::value::{DataType, Value};

/// Parses a single SQL statement (an optional trailing `;` is allowed).
pub fn parse_statement(input: &str) -> DbResult<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(";"); // optional
    if !p.at_end() {
        return Err(DbError::parse(format!(
            "unexpected trailing input at '{}'",
            p.peek_desc()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        self.peek().map_or("end of input".into(), |t| t.to_string())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(DbError::parse(format!(
                "expected {kw}, found '{}'",
                self.peek_desc()
            )))
        }
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(sym)) if *sym == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> DbResult<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(DbError::parse(format!(
                "expected '{s}', found '{}'",
                self.peek_desc()
            )))
        }
    }

    fn expect_ident(&mut self) -> DbResult<String> {
        match self.advance() {
            Some(Token::Ident(i)) => Ok(i),
            other => Err(DbError::parse(format!(
                "expected identifier, found '{}'",
                other.map_or("end of input".into(), |t| t.to_string())
            ))),
        }
    }

    fn statement(&mut self) -> DbResult<Statement> {
        if self.eat_keyword("CREATE") {
            if self.eat_keyword("TABLE") {
                return self.create_table();
            }
            if self.eat_keyword("VIEW") {
                return self.create_view();
            }
            if self.eat_keyword("INDEX") {
                return self.create_index();
            }
            return Err(DbError::parse("expected TABLE, VIEW or INDEX after CREATE"));
        }
        if self.eat_keyword("INSERT") {
            return self.insert();
        }
        if self.eat_keyword("EXPLAIN") {
            self.expect_keyword("SELECT")?;
            return Ok(Statement::Explain(self.select()?));
        }
        if self.eat_keyword("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        Err(DbError::parse(format!(
            "expected a statement, found '{}'",
            self.peek_desc()
        )))
    }

    fn data_type(&mut self) -> DbResult<DataType> {
        match self.advance() {
            Some(Token::Keyword(k)) if k == "INT" => Ok(DataType::Int),
            Some(Token::Keyword(k)) if k == "FLOAT" => Ok(DataType::Float),
            Some(Token::Keyword(k)) if k == "TEXT" => Ok(DataType::Text),
            other => Err(DbError::parse(format!(
                "expected a type (INT/FLOAT/TEXT), found '{}'",
                other.map_or("end of input".into(), |t| t.to_string())
            ))),
        }
    }

    fn create_table(&mut self) -> DbResult<Statement> {
        let name = self.expect_ident()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty = self.data_type()?;
            columns.push((col, ty));
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_view(&mut self) -> DbResult<Statement> {
        let name = self.expect_ident()?;
        self.expect_keyword("AS")?;
        self.expect_keyword("SELECT")?;
        Ok(Statement::CreateView {
            name,
            select: self.select()?,
        })
    }

    fn create_index(&mut self) -> DbResult<Statement> {
        let name = self.expect_ident()?;
        self.expect_keyword("ON")?;
        let table = self.expect_ident()?;
        self.expect_symbol("(")?;
        let column = self.expect_ident()?;
        self.expect_symbol(")")?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_keyword("INTO")?;
        let table = self.expect_ident()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal_value()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn literal_value(&mut self) -> DbResult<Value> {
        let negative = self.eat_symbol("-");
        match self.advance() {
            Some(Token::Int(i)) => Ok(Value::Int(if negative { -i } else { i })),
            Some(Token::Float(f)) => Ok(Value::Float(if negative { -f } else { f })),
            Some(Token::Str(s)) if !negative => Ok(Value::Str(s)),
            Some(Token::Keyword(k)) if k == "NULL" && !negative => Ok(Value::Null),
            other => Err(DbError::parse(format!(
                "expected a literal, found '{}'",
                other.map_or("end of input".into(), |t| t.to_string())
            ))),
        }
    }

    /// Parses the body of a SELECT (the keyword is already consumed).
    fn select(&mut self) -> DbResult<SelectStmt> {
        let distinct = self.eat_keyword("DISTINCT");
        let mut projections = Vec::new();
        loop {
            if self.eat_symbol("*") {
                projections.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                projections.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        let from = if self.eat_keyword("FROM") {
            Some(self.parse_from_clause()?)
        } else {
            None
        };
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push((e, asc));
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => {
                    return Err(DbError::parse(format!(
                        "expected a non-negative LIMIT count, found '{}'",
                        other.map_or("end of input".into(), |t| t.to_string())
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_from_clause(&mut self) -> DbResult<FromClause> {
        let mut left = self.table_ref()?;
        while self.eat_keyword("JOIN") {
            let right = self.table_ref()?;
            self.expect_keyword("ON")?;
            let on = self.expr()?;
            left = FromClause::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
            };
        }
        Ok(left)
    }

    fn table_ref(&mut self) -> DbResult<FromClause> {
        let name = self.expect_ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let Some(Token::Ident(_)) = self.peek() {
            // Bare alias: FROM emp e
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(FromClause::Table { name, alias })
    }

    // ----- expressions, by descending precedence -----

    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> DbResult<Expr> {
        let left = self.additive()?;
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Symbol("=")) => Some(BinaryOp::Eq),
            Some(Token::Symbol("<>")) => Some(BinaryOp::NotEq),
            Some(Token::Symbol("<")) => Some(BinaryOp::Lt),
            Some(Token::Symbol("<=")) => Some(BinaryOp::LtEq),
            Some(Token::Symbol(">")) => Some(BinaryOp::Gt),
            Some(Token::Symbol(">=")) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> DbResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol("+")) => BinaryOp::Add,
                Some(Token::Symbol("-")) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> DbResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol("*")) => BinaryOp::Mul,
                Some(Token::Symbol("/")) => BinaryOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> DbResult<Expr> {
        if self.eat_symbol("-") {
            let inner = self.unary()?;
            // Fold negation into numeric literals for cleaner ASTs.
            if let Expr::Literal(Value::Int(i)) = inner {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            if let Expr::Literal(Value::Float(f)) = inner {
                return Ok(Expr::Literal(Value::Float(-f)));
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn agg_func(kw: &str) -> Option<AggFunc> {
        match kw {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        }
    }

    fn primary(&mut self) -> DbResult<Expr> {
        match self.advance() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Expr::Literal(Value::Null)),
            Some(Token::Keyword(k)) if Self::agg_func(&k).is_some() => {
                let func = Self::agg_func(&k).expect("checked");
                self.expect_symbol("(")?;
                let arg = if self.eat_symbol("*") {
                    if func != AggFunc::Count {
                        return Err(DbError::parse(format!("{func}(*) is not valid")));
                    }
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect_symbol(")")?;
                Ok(Expr::Agg { func, arg })
            }
            Some(Token::Symbol("(")) => {
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Ident(first)) => {
                if self.eat_symbol(".") {
                    let name = self.expect_ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(first),
                        name,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name: first,
                    })
                }
            }
            other => Err(DbError::parse(format!(
                "expected an expression, found '{}'",
                other.map_or("end of input".into(), |t| t.to_string())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parse_create_table() {
        let s = parse_statement("CREATE TABLE t (a INT, b FLOAT, c TEXT);").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "t".into(),
                columns: vec![
                    ("a".into(), DataType::Int),
                    ("b".into(), DataType::Float),
                    ("c".into(), DataType::Text),
                ],
            }
        );
    }

    #[test]
    fn parse_insert_multi_row_with_negatives_and_null() {
        let s = parse_statement("INSERT INTO t VALUES (1, -2.5, 'x'), (-3, NULL, 'y''z')").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(
                    rows[0],
                    vec![Value::Int(1), Value::Float(-2.5), Value::Str("x".into())]
                );
                assert_eq!(
                    rows[1],
                    vec![Value::Int(-3), Value::Null, Value::Str("y'z".into())]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_simple_select() {
        let s = sel("SELECT * FROM t");
        assert_eq!(s.projections, vec![SelectItem::Star]);
        assert_eq!(
            s.from,
            Some(FromClause::Table {
                name: "t".into(),
                alias: None
            })
        );
    }

    #[test]
    fn parse_join_chain_is_left_deep() {
        let s = sel("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y");
        match s.from.unwrap() {
            FromClause::Join { left, right, .. } => {
                assert!(matches!(*left, FromClause::Join { .. }));
                assert!(matches!(
                    *right,
                    FromClause::Table { ref name, .. } if name == "c"
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_aliases() {
        let s = sel("SELECT e.id AS emp_id FROM emp AS e JOIN dept d ON e.d = d.id");
        match &s.projections[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("emp_id")),
            other => panic!("{other:?}"),
        }
        match s.from.unwrap() {
            FromClause::Join { left, right, .. } => {
                assert!(
                    matches!(*left, FromClause::Table { ref alias, .. } if alias.as_deref() == Some("e"))
                );
                assert!(
                    matches!(*right, FromClause::Table { ref alias, .. } if alias.as_deref() == Some("d"))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        let w = s.where_clause.unwrap();
        assert_eq!(w.to_string(), "((a = 1) OR ((b = 2) AND (c = 3)))");
    }

    #[test]
    fn precedence_arithmetic() {
        let s = sel("SELECT a + b * 2 - c / 4 FROM t");
        match &s.projections[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.to_string(), "((a + (b * 2)) - (c / 4))");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_group_order_limit() {
        let s = sel(
            "SELECT dept, COUNT(*), AVG(salary) FROM emp WHERE salary > 0 \
             GROUP BY dept ORDER BY dept ASC, COUNT(*) DESC LIMIT 3",
        );
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].1);
        assert!(!s.order_by[1].1);
        assert_eq!(s.limit, Some(3));
    }

    #[test]
    fn parse_is_null_and_not() {
        let s = sel("SELECT * FROM t WHERE a IS NULL AND NOT b IS NOT NULL");
        assert_eq!(
            s.where_clause.unwrap().to_string(),
            "((a IS NULL) AND (NOT (b IS NOT NULL)))"
        );
    }

    #[test]
    fn parse_explain_and_view() {
        assert!(matches!(
            parse_statement("EXPLAIN SELECT * FROM t").unwrap(),
            Statement::Explain(_)
        ));
        assert!(matches!(
            parse_statement("CREATE VIEW v AS SELECT a FROM t WHERE a > 1").unwrap(),
            Statement::CreateView { name, .. } if name == "v"
        ));
    }

    #[test]
    fn count_star_only_for_count() {
        assert!(parse_statement("SELECT SUM(*) FROM t").is_err());
        assert!(parse_statement("SELECT COUNT(*) FROM t").is_ok());
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELEC * FROM t").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE").is_err());
        assert!(parse_statement("SELECT * FROM t extra garbage").is_err());
        assert!(parse_statement("SELECT * FROM t LIMIT -1").is_err());
    }

    #[test]
    fn print_parse_round_trip() {
        let sqls = [
            "SELECT * FROM t",
            "SELECT a, b AS bb FROM t AS x WHERE (a > 1) AND (b < 2.5)",
            "SELECT COUNT(*) AS n, SUM(v) FROM t GROUP BY g ORDER BY g ASC LIMIT 7",
            "SELECT e.id FROM emp AS e JOIN dept AS d ON e.d = d.id WHERE d.name <> 'hq'",
        ];
        for sql in sqls {
            let first = sel(sql);
            let printed = first.to_string();
            let second = sel(&printed);
            assert_eq!(first, second, "round-trip failed for {sql}");
        }
    }
}
