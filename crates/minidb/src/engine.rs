//! The [`Database`] facade: parse → bind → optimize → execute.

use crate::catalog::{Catalog, View};
use crate::error::{DbError, DbResult};
use crate::exec;
use crate::plan::binder::bind_select;
use crate::plan::explain::Explain;
use crate::plan::logical::LogicalPlan;
use crate::plan::optimizer::{optimize, OptimizerConfig};
use crate::schema::{Column, Schema};
use crate::sql::ast::{SelectStmt, Statement};
use crate::sql::parser::parse_statement;
use crate::storage::Table;
use crate::value::{Row, Value};

/// The result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names (empty for DDL/DML).
    pub columns: Vec<String>,
    /// Output rows (empty for DDL/DML).
    pub rows: Vec<Row>,
    /// Rows affected by DML (INSERT).
    pub rows_affected: u64,
}

impl QueryResult {
    fn empty() -> QueryResult {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            rows_affected: 0,
        }
    }
}

/// An in-memory relational database instance.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    config: OptimizerConfig,
}

impl Database {
    /// An empty database with default (hash-join capable) configuration.
    pub fn new() -> Database {
        Database {
            catalog: Catalog::new(),
            config: OptimizerConfig::default(),
        }
    }

    /// An empty database with explicit physical capabilities — Table 3 of
    /// the paper gives only 95 of 100 nodes hash-join support; the others
    /// run with `enable_hash_join: false` and pay merge-join costs.
    pub fn with_config(config: OptimizerConfig) -> Database {
        Database {
            catalog: Catalog::new(),
            config,
        }
    }

    /// The optimizer configuration.
    pub fn config(&self) -> OptimizerConfig {
        self.config
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Executes one SQL statement.
    pub fn execute(&mut self, sql: &str) -> DbResult<QueryResult> {
        match parse_statement(sql)? {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(n, ty)| Column::new(n, ty))
                        .collect(),
                );
                self.catalog.create_table(Table::new(name, schema))?;
                Ok(QueryResult::empty())
            }
            Statement::CreateView { name, select } => {
                // Validate the definition now (bind against the current
                // catalog) and store its text.
                bind_select(&select, &self.catalog)?;
                self.catalog.create_view(View {
                    name,
                    query: select.to_string(),
                })?;
                Ok(QueryResult::empty())
            }
            Statement::CreateIndex {
                name: _,
                table,
                column,
            } => {
                let t = self
                    .catalog
                    .table_mut(&table)
                    .ok_or_else(|| DbError::catalog(format!("unknown table '{table}'")))?;
                let ordinal = t.schema().resolve(None, &column)?;
                t.create_index(ordinal)?;
                Ok(QueryResult::empty())
            }
            Statement::Insert { table, rows } => {
                let t = self
                    .catalog
                    .table_mut(&table)
                    .ok_or_else(|| DbError::catalog(format!("unknown table '{table}'")))?;
                let n = rows.len() as u64;
                for row in rows {
                    t.insert(row)?;
                }
                Ok(QueryResult {
                    columns: Vec::new(),
                    rows: Vec::new(),
                    rows_affected: n,
                })
            }
            Statement::Select(select) => self.run_select(&select),
            Statement::Explain(select) => {
                let explain = self.explain_select(&select)?;
                Ok(QueryResult {
                    columns: vec!["plan".to_string()],
                    rows: explain
                        .text
                        .lines()
                        .map(|l| vec![Value::Str(l.to_string())])
                        .collect(),
                    rows_affected: 0,
                })
            }
        }
    }

    /// Executes a SELECT without mutating the database.
    pub fn query(&self, sql: &str) -> DbResult<QueryResult> {
        match parse_statement(sql)? {
            Statement::Select(select) => self.run_select(&select),
            _ => Err(DbError::parse("query() accepts only SELECT statements")),
        }
    }

    /// Plans a SELECT and returns the optimized logical plan.
    pub fn plan(&self, sql: &str) -> DbResult<LogicalPlan> {
        match parse_statement(sql)? {
            Statement::Select(select) | Statement::Explain(select) => {
                let bound = bind_select(&select, &self.catalog)?;
                Ok(optimize(bound, &self.catalog, self.config))
            }
            _ => Err(DbError::parse("plan() accepts only SELECT statements")),
        }
    }

    /// `EXPLAIN` for a SELECT: plan tree, estimates, fingerprint.
    pub fn explain(&self, sql: &str) -> DbResult<Explain> {
        match parse_statement(sql)? {
            Statement::Select(select) | Statement::Explain(select) => self.explain_select(&select),
            _ => Err(DbError::parse("explain() accepts only SELECT statements")),
        }
    }

    fn explain_select(&self, select: &SelectStmt) -> DbResult<Explain> {
        let bound = bind_select(select, &self.catalog)?;
        let optimized = optimize(bound, &self.catalog, self.config);
        Ok(Explain::of(&optimized, &self.catalog))
    }

    fn run_select(&self, select: &SelectStmt) -> DbResult<QueryResult> {
        let bound = bind_select(select, &self.catalog)?;
        let optimized = optimize(bound, &self.catalog, self.config);
        let columns = optimized
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let iter = exec::build(&optimized, &self.catalog)?;
        let rows = exec::collect(iter)?;
        Ok(QueryResult {
            columns,
            rows,
            rows_affected: 0,
        })
    }

    /// Bulk-loads rows into a table without going through SQL parsing —
    /// used by experiment setup to load large synthetic tables quickly.
    pub fn load_rows(&mut self, table: &str, rows: Vec<Row>) -> DbResult<u64> {
        let t = self
            .catalog
            .table_mut(table)
            .ok_or_else(|| DbError::catalog(format!("unknown table '{table}'")))?;
        let n = rows.len() as u64;
        for row in rows {
            t.insert(row)?;
        }
        Ok(n)
    }
}

/// Convenience: builds a database pre-loaded from `(ddl, rows)` pairs.
pub fn database_from(statements: &[&str]) -> DbResult<Database> {
    let mut db = Database::new();
    for s in statements {
        db.execute(s)?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        database_from(&[
            "CREATE TABLE emp (id INT, dept TEXT, salary FLOAT)",
            "INSERT INTO emp VALUES \
             (1, 'eng', 100.0), (2, 'eng', 120.0), (3, 'ops', 80.0), \
             (4, 'ops', 90.0), (5, 'hr', 70.0)",
            "CREATE TABLE dept (name TEXT, budget FLOAT)",
            "INSERT INTO dept VALUES ('eng', 1000.0), ('ops', 500.0), ('hr', 200.0)",
        ])
        .unwrap()
    }

    #[test]
    fn end_to_end_select_where_order() {
        let db = sample_db();
        let r = db
            .query("SELECT id, salary FROM emp WHERE salary >= 90.0 ORDER BY salary DESC")
            .unwrap();
        assert_eq!(r.columns, vec!["id", "salary"]);
        let ids: Vec<Value> = r.rows.iter().map(|row| row[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(2), Value::Int(1), Value::Int(4)]);
    }

    #[test]
    fn end_to_end_join() {
        let db = sample_db();
        let r = db
            .query(
                "SELECT emp.id, dept.budget FROM emp JOIN dept ON emp.dept = dept.name \
                 WHERE dept.budget > 300.0 ORDER BY emp.id",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 4); // eng ×2, ops ×2
        assert_eq!(r.rows[0], vec![Value::Int(1), Value::Float(1000.0)]);
    }

    #[test]
    fn end_to_end_group_by() {
        let db = sample_db();
        let r = db
            .query(
                "SELECT dept, COUNT(*) AS n, AVG(salary) AS avg_sal \
                 FROM emp GROUP BY dept ORDER BY dept",
            )
            .unwrap();
        assert_eq!(r.columns, vec!["dept", "n", "avg_sal"]);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Str("eng".into()), Value::Int(2), Value::Float(110.0)],
                vec![Value::Str("hr".into()), Value::Int(1), Value::Float(70.0)],
                vec![Value::Str("ops".into()), Value::Int(2), Value::Float(85.0)],
            ]
        );
    }

    #[test]
    fn views_behave_like_tables() {
        let mut db = sample_db();
        db.execute("CREATE VIEW well_paid AS SELECT id, salary FROM emp WHERE salary > 85.0")
            .unwrap();
        let r = db
            .query("SELECT w.id FROM well_paid AS w ORDER BY w.id")
            .unwrap();
        let ids: Vec<Value> = r.rows.iter().map(|row| row[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(1), Value::Int(2), Value::Int(4)]);
    }

    #[test]
    fn view_over_view() {
        let mut db = sample_db();
        db.execute("CREATE VIEW v1 AS SELECT id, salary FROM emp WHERE salary > 75.0")
            .unwrap();
        db.execute("CREATE VIEW v2 AS SELECT id FROM v1 WHERE salary > 95.0")
            .unwrap();
        let r = db.query("SELECT * FROM v2 ORDER BY id").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn view_definition_validated_at_creation() {
        let mut db = sample_db();
        assert!(db
            .execute("CREATE VIEW bad AS SELECT zzz FROM emp")
            .is_err());
    }

    #[test]
    fn explain_statement_returns_plan_rows() {
        let mut db = sample_db();
        let r = db
            .execute("EXPLAIN SELECT * FROM emp WHERE id = 1")
            .unwrap();
        assert_eq!(r.columns, vec!["plan"]);
        assert!(!r.rows.is_empty());
        let text = r
            .rows
            .iter()
            .map(|row| row[0].to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("Scan"));
    }

    #[test]
    fn explain_api_gives_cost_and_fingerprint() {
        let db = sample_db();
        let a = db.explain("SELECT * FROM emp WHERE id = 1").unwrap();
        let b = db.explain("SELECT * FROM emp WHERE id = 2").unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.root.cost > 0.0);
    }

    #[test]
    fn insert_reports_rows_affected() {
        let mut db = sample_db();
        let r = db
            .execute("INSERT INTO dept VALUES ('x', 1.0), ('y', 2.0)")
            .unwrap();
        assert_eq!(r.rows_affected, 2);
        assert_eq!(db.query("SELECT * FROM dept").unwrap().rows.len(), 5);
    }

    #[test]
    fn merge_join_config_produces_same_results() {
        let mut db_merge = Database::with_config(OptimizerConfig {
            enable_hash_join: false,
        });
        for s in [
            "CREATE TABLE a (k INT)",
            "INSERT INTO a VALUES (1), (2), (3)",
            "CREATE TABLE b (k INT, v TEXT)",
            "INSERT INTO b VALUES (2, 'two'), (3, 'three'), (4, 'four')",
        ] {
            db_merge.execute(s).unwrap();
        }
        let r = db_merge
            .query("SELECT a.k, b.v FROM a JOIN b ON a.k = b.k ORDER BY a.k")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(2), Value::Str("two".into())],
                vec![Value::Int(3), Value::Str("three".into())],
            ]
        );
        assert!(db_merge
            .explain("SELECT a.k FROM a JOIN b ON a.k = b.k")
            .unwrap()
            .text
            .contains("MergeJoin"));
    }

    #[test]
    fn limit_applies_after_sort() {
        let db = sample_db();
        let r = db
            .query("SELECT id FROM emp ORDER BY salary DESC LIMIT 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], vec![Value::Int(2)]);
    }

    #[test]
    fn load_rows_bulk_path() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let n = db
            .load_rows("t", (0..1_000).map(|i| vec![Value::Int(i)]).collect())
            .unwrap();
        assert_eq!(n, 1_000);
        let r = db.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1_000));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut db = sample_db();
        assert!(db.execute("SELECT * FROM nope").is_err());
        assert!(db.execute("INSERT INTO nope VALUES (1)").is_err());
        assert!(db.execute("CREATE TABLE emp (x INT)").is_err());
        assert!(db.query("INSERT INTO emp VALUES (9, 'x', 1.0)").is_err());
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let db = sample_db();
        let r = db
            .query("SELECT COUNT(*), MIN(salary), MAX(salary) FROM emp")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::Int(5), Value::Float(70.0), Value::Float(120.0)]]
        );
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;

    fn indexed_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INT, grp INT, v FLOAT)")
            .unwrap();
        db.load_rows(
            "t",
            (0..1_000)
                .map(|i| vec![Value::Int(i), Value::Int(i % 10), Value::Float(i as f64)])
                .collect(),
        )
        .unwrap();
        db.execute("CREATE INDEX t_grp ON t (grp)").unwrap();
        db
    }

    #[test]
    fn equality_uses_index_scan() {
        let db = indexed_db();
        let ex = db.explain("SELECT * FROM t WHERE grp = 3").unwrap();
        assert!(ex.text.contains("IndexScan"), "{}", ex.text);
        let r = db.query("SELECT COUNT(*) FROM t WHERE grp = 3").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(100));
    }

    #[test]
    fn range_uses_index_scan() {
        let db = indexed_db();
        let ex = db.explain("SELECT * FROM t WHERE grp >= 8").unwrap();
        assert!(ex.text.contains("IndexScan"), "{}", ex.text);
        let r = db.query("SELECT COUNT(*) FROM t WHERE grp >= 8").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(200));
        // Mirrored literal form `3 > grp` ≡ `grp < 3`.
        let r = db.query("SELECT COUNT(*) FROM t WHERE 3 > grp").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(300));
        assert!(db
            .explain("SELECT * FROM t WHERE 3 > grp")
            .unwrap()
            .text
            .contains("IndexScan"));
    }

    #[test]
    fn index_and_residual_filter_compose() {
        let db = indexed_db();
        let sql = "SELECT COUNT(*) FROM t WHERE grp = 3 AND v < 500.0";
        let ex = db.explain(sql).unwrap();
        assert!(ex.text.contains("IndexScan"), "{}", ex.text);
        assert!(ex.text.contains("Filter"), "{}", ex.text);
        let r = db.query(sql).unwrap();
        // grp = 3 → ids 3, 13, …, 993; v < 500 keeps ids < 500 → 50 rows.
        assert_eq!(r.rows[0][0], Value::Int(50));
    }

    #[test]
    fn unindexed_column_stays_sequential() {
        let db = indexed_db();
        let ex = db.explain("SELECT * FROM t WHERE id = 7").unwrap();
        assert!(!ex.text.contains("IndexScan"), "{}", ex.text);
        assert!(ex.text.contains("Scan"));
    }

    #[test]
    fn index_scan_estimated_cheaper_than_full_scan() {
        let db = indexed_db();
        let with = db.explain("SELECT * FROM t WHERE grp = 3").unwrap();
        let without = db.explain("SELECT * FROM t WHERE id = 3").unwrap();
        assert!(
            with.root.cost < without.root.cost / 2.0,
            "index {} vs scan {}",
            with.root.cost,
            without.root.cost
        );
    }

    #[test]
    fn index_results_match_full_scan() {
        let mut db = indexed_db();
        // Same predicate through an unindexed expression to force a scan:
        // (grp + 0) = 3 is not sargable.
        let via_index = db
            .query("SELECT id FROM t WHERE grp = 3 ORDER BY id")
            .unwrap();
        let via_scan = db
            .query("SELECT id FROM t WHERE grp + 0 = 3 ORDER BY id")
            .unwrap();
        assert_eq!(via_index.rows, via_scan.rows);
        // And the index stays correct after further inserts.
        db.execute("INSERT INTO t VALUES (5000, 3, 1.0)").unwrap();
        let r = db.query("SELECT COUNT(*) FROM t WHERE grp = 3").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(101));
    }

    #[test]
    fn nulls_are_not_indexed_and_never_match() {
        let mut db = Database::new();
        db.execute("CREATE TABLE n (k INT)").unwrap();
        db.execute("INSERT INTO n VALUES (1), (NULL), (2), (NULL)")
            .unwrap();
        db.execute("CREATE INDEX n_k ON n (k)").unwrap();
        let r = db.query("SELECT COUNT(*) FROM n WHERE k >= 0").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        assert!(db
            .explain("SELECT * FROM n WHERE k >= 0")
            .unwrap()
            .text
            .contains("IndexScan"));
    }

    #[test]
    fn create_index_errors() {
        let mut db = indexed_db();
        assert!(db.execute("CREATE INDEX x ON missing (id)").is_err());
        assert!(db.execute("CREATE INDEX x ON t (nope)").is_err());
    }

    #[test]
    fn fingerprint_stable_across_index_literals() {
        let db = indexed_db();
        let a = db.explain("SELECT * FROM t WHERE grp = 1").unwrap();
        let b = db.explain("SELECT * FROM t WHERE grp = 9").unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        let c = db.explain("SELECT * FROM t WHERE grp > 1").unwrap();
        assert_ne!(a.fingerprint, c.fingerprint);
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;

    fn db() -> Database {
        database_from(&[
            "CREATE TABLE t (a INT, b TEXT)",
            "INSERT INTO t VALUES (1, 'x'), (1, 'x'), (2, 'x'), (1, 'y'), (2, 'x')",
        ])
        .unwrap()
    }

    #[test]
    fn distinct_dedupes_projected_rows() {
        let r = db().query("SELECT DISTINCT a, b FROM t").unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn distinct_single_column() {
        let r = db().query("SELECT DISTINCT b FROM t").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn distinct_preserves_order_by() {
        let r = db()
            .query("SELECT DISTINCT a FROM t ORDER BY a DESC")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
    }

    #[test]
    fn distinct_with_limit() {
        let r = db()
            .query("SELECT DISTINCT a, b FROM t ORDER BY a, b LIMIT 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], vec![Value::Int(1), Value::Str("x".into())]);
    }

    #[test]
    fn distinct_with_group_by_rejected() {
        assert!(db()
            .query("SELECT DISTINCT a, COUNT(*) FROM t GROUP BY a")
            .is_err());
    }

    #[test]
    fn distinct_round_trips_through_printer() {
        use crate::sql::ast::Statement;
        use crate::sql::parser::parse_statement;
        let sql = "SELECT DISTINCT a FROM t WHERE (a > 0) ORDER BY a ASC";
        let Statement::Select(ast) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(ast.distinct);
        let reparsed = parse_statement(&ast.to_string()).unwrap();
        assert_eq!(Statement::Select(ast), reparsed);
    }
}
