//! Bound (resolved, typed) expressions and their evaluation.
//!
//! The binder turns `ast::Expr` into [`BoundExpr`]: column references become
//! ordinals into the input schema, types are inferred and checked once, and
//! evaluation is a pure match over values with SQL semantics — three-valued
//! logic for `AND`/`OR`/`NOT`, comparisons with NULL yielding NULL, and
//! NULL-propagating arithmetic. Aggregates never appear here; the planner
//! strips them into the aggregation operator first.

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::sql::ast::{BinaryOp, Expr, UnaryOp};
use crate::value::{DataType, Row, Value};
use std::fmt;

/// A resolved, typed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Input column by ordinal.
    Column {
        /// Ordinal into the input row.
        index: usize,
        /// The column's type.
        ty: DataType,
        /// Display name (for EXPLAIN and output schemas).
        name: String,
    },
    /// A constant.
    Literal(Value),
    /// `NOT e` / `-e`.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<BoundExpr>,
    },
    /// Binary application.
    Binary {
        /// Left operand.
        left: Box<BoundExpr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// `e IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<BoundExpr>,
        /// `true` for IS NOT NULL.
        negated: bool,
    },
}

impl BoundExpr {
    /// The expression's static type (`None` for the NULL literal).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            BoundExpr::Column { ty, .. } => Some(*ty),
            BoundExpr::Literal(v) => v.data_type(),
            BoundExpr::Unary { op, expr } => match op {
                UnaryOp::Not => Some(DataType::Bool),
                UnaryOp::Neg => expr.data_type(),
            },
            BoundExpr::Binary { left, op, right } => {
                if *op == BinaryOp::And || *op == BinaryOp::Or || op.is_comparison() {
                    Some(DataType::Bool)
                } else {
                    // Arithmetic: FLOAT if either side is FLOAT.
                    match (left.data_type(), right.data_type()) {
                        (Some(DataType::Float), _) | (_, Some(DataType::Float)) => {
                            Some(DataType::Float)
                        }
                        _ => Some(DataType::Int),
                    }
                }
            }
            BoundExpr::IsNull { .. } => Some(DataType::Bool),
        }
    }

    /// A display name for output columns: column names pass through,
    /// everything else pretty-prints.
    pub fn output_name(&self) -> String {
        match self {
            BoundExpr::Column { name, .. } => name.clone(),
            other => other.to_string(),
        }
    }

    /// Evaluates against a row.
    pub fn eval(&self, row: &Row) -> DbResult<Value> {
        match self {
            BoundExpr::Column { index, .. } => Ok(row[*index].clone()),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match op {
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(DbError::type_err(format!("NOT applied to {other}"))),
                    },
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => {
                            Ok(Value::Int(i.checked_neg().ok_or_else(|| {
                                DbError::execution("integer negation overflow")
                            })?))
                        }
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(DbError::type_err(format!("negation applied to {other}"))),
                    },
                }
            }
            BoundExpr::Binary { left, op, right } => match op {
                BinaryOp::And => {
                    // Kleene: short-circuit false, propagate NULL otherwise.
                    let l = left.eval(row)?;
                    if l == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = right.eval(row)?;
                    match (l, r) {
                        (_, Value::Bool(false)) => Ok(Value::Bool(false)),
                        (Value::Bool(true), Value::Bool(true)) => Ok(Value::Bool(true)),
                        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                        (l, r) => Err(DbError::type_err(format!("AND applied to {l} and {r}"))),
                    }
                }
                BinaryOp::Or => {
                    let l = left.eval(row)?;
                    if l == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = right.eval(row)?;
                    match (l, r) {
                        (_, Value::Bool(true)) => Ok(Value::Bool(true)),
                        (Value::Bool(false), Value::Bool(false)) => Ok(Value::Bool(false)),
                        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                        (l, r) => Err(DbError::type_err(format!("OR applied to {l} and {r}"))),
                    }
                }
                cmp if cmp.is_comparison() => {
                    let l = left.eval(row)?;
                    let r = right.eval(row)?;
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    let ord = l.cmp(&r);
                    let b = match cmp {
                        BinaryOp::Eq => ord.is_eq(),
                        BinaryOp::NotEq => ord.is_ne(),
                        BinaryOp::Lt => ord.is_lt(),
                        BinaryOp::LtEq => ord.is_le(),
                        BinaryOp::Gt => ord.is_gt(),
                        BinaryOp::GtEq => ord.is_ge(),
                        _ => unreachable!("guarded by is_comparison"),
                    };
                    Ok(Value::Bool(b))
                }
                arith => {
                    let l = left.eval(row)?;
                    let r = right.eval(row)?;
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    eval_arith(*arith, l, r)
                }
            },
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
        }
    }

    /// Evaluates as a predicate: `true` only when the result is
    /// `Bool(true)` (SQL filters discard NULL).
    pub fn eval_predicate(&self, row: &Row) -> DbResult<bool> {
        Ok(self.eval(row)? == Value::Bool(true))
    }

    /// All column ordinals referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Column { index, .. } => out.push(*index),
            BoundExpr::Literal(_) => {}
            BoundExpr::Unary { expr, .. } => expr.referenced_columns(out),
            BoundExpr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            BoundExpr::IsNull { expr, .. } => expr.referenced_columns(out),
        }
    }

    /// Rewrites every column ordinal through `map` (used when pushing
    /// expressions past projections or into join sides).
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> BoundExpr {
        match self {
            BoundExpr::Column { index, ty, name } => BoundExpr::Column {
                index: map(*index),
                ty: *ty,
                name: name.clone(),
            },
            BoundExpr::Literal(v) => BoundExpr::Literal(v.clone()),
            BoundExpr::Unary { op, expr } => BoundExpr::Unary {
                op: *op,
                expr: Box::new(expr.remap_columns(map)),
            },
            BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
                left: Box::new(left.remap_columns(map)),
                op: *op,
                right: Box::new(right.remap_columns(map)),
            },
            BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.remap_columns(map)),
                negated: *negated,
            },
        }
    }
}

fn eval_arith(op: BinaryOp, l: Value, r: Value) -> DbResult<Value> {
    if !l.is_numeric() || !r.is_numeric() {
        return Err(DbError::type_err(format!(
            "arithmetic {op} applied to {l} and {r}"
        )));
    }
    // Integer op integer stays integer; anything with a float widens.
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        let (a, b) = (*a, *b);
        let out = match op {
            BinaryOp::Add => a.checked_add(b),
            BinaryOp::Sub => a.checked_sub(b),
            BinaryOp::Mul => a.checked_mul(b),
            BinaryOp::Div => {
                if b == 0 {
                    return Err(DbError::execution("division by zero"));
                }
                a.checked_div(b)
            }
            _ => unreachable!("arith ops only"),
        };
        return out
            .map(Value::Int)
            .ok_or_else(|| DbError::execution("integer overflow"));
    }
    let a = l.as_f64().expect("numeric");
    let b = r.as_f64().expect("numeric");
    let out = match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => {
            if b == 0.0 {
                return Err(DbError::execution("division by zero"));
            }
            a / b
        }
        _ => unreachable!("arith ops only"),
    };
    Ok(Value::Float(out))
}

/// Binds an AST expression against a schema. Aggregates are rejected —
/// callers must lower them first.
pub fn bind_expr(expr: &Expr, schema: &Schema) -> DbResult<BoundExpr> {
    match expr {
        Expr::Column { qualifier, name } => {
            let index = schema.resolve(qualifier.as_deref(), name)?;
            let col = schema.column(index);
            Ok(BoundExpr::Column {
                index,
                ty: col.ty,
                name: col.name.clone(),
            })
        }
        Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
        Expr::Unary { op, expr } => {
            let inner = bind_expr(expr, schema)?;
            match op {
                UnaryOp::Not => expect_type(&inner, DataType::Bool, "NOT")?,
                UnaryOp::Neg => expect_numeric(&inner, "negation")?,
            }
            Ok(BoundExpr::Unary {
                op: *op,
                expr: Box::new(inner),
            })
        }
        Expr::Binary { left, op, right } => {
            let l = bind_expr(left, schema)?;
            let r = bind_expr(right, schema)?;
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    expect_type(&l, DataType::Bool, &op.to_string())?;
                    expect_type(&r, DataType::Bool, &op.to_string())?;
                }
                cmp if cmp.is_comparison() => {
                    check_comparable(&l, &r, &op.to_string())?;
                }
                _ => {
                    expect_numeric(&l, &op.to_string())?;
                    expect_numeric(&r, &op.to_string())?;
                }
            }
            Ok(BoundExpr::Binary {
                left: Box::new(l),
                op: *op,
                right: Box::new(r),
            })
        }
        Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
            expr: Box::new(bind_expr(expr, schema)?),
            negated: *negated,
        }),
        Expr::Agg { .. } => Err(DbError::binding(
            "aggregate function in a non-aggregate context",
        )),
    }
}

fn expect_type(e: &BoundExpr, ty: DataType, ctx: &str) -> DbResult<()> {
    match e.data_type() {
        None => Ok(()), // NULL literal fits anywhere
        Some(t) if t == ty => Ok(()),
        Some(t) => Err(DbError::type_err(format!("{ctx} expects {ty}, got {t}"))),
    }
}

fn expect_numeric(e: &BoundExpr, ctx: &str) -> DbResult<()> {
    match e.data_type() {
        None | Some(DataType::Int) | Some(DataType::Float) => Ok(()),
        Some(t) => Err(DbError::type_err(format!(
            "{ctx} expects a number, got {t}"
        ))),
    }
}

fn check_comparable(l: &BoundExpr, r: &BoundExpr, ctx: &str) -> DbResult<()> {
    let compatible = match (l.data_type(), r.data_type()) {
        (None, _) | (_, None) => true,
        (Some(a), Some(b)) => {
            a == b
                || (matches!(a, DataType::Int | DataType::Float)
                    && matches!(b, DataType::Int | DataType::Float))
        }
    };
    if compatible {
        Ok(())
    } else {
        Err(DbError::type_err(format!(
            "{ctx} compares incompatible types {:?} and {:?}",
            l.data_type(),
            r.data_type()
        )))
    }
}

impl fmt::Display for BoundExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundExpr::Column { name, index, .. } => write!(f, "{name}#{index}"),
            BoundExpr::Literal(v) => write!(f, "{v}"),
            BoundExpr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            BoundExpr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            BoundExpr::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "({expr} IS NOT NULL)")
                } else {
                    write!(f, "({expr} IS NULL)")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::sql::ast::{SelectItem, Statement};
    use crate::sql::parser::parse_statement;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::qualified("t", "a", DataType::Int),
            Column::qualified("t", "b", DataType::Float),
            Column::qualified("t", "c", DataType::Text),
        ])
    }

    /// Parses the WHERE clause of `SELECT * FROM t WHERE <pred>` and binds
    /// it against the test schema.
    fn bind_pred(pred: &str) -> DbResult<BoundExpr> {
        let sql = format!("SELECT * FROM t WHERE {pred}");
        match parse_statement(&sql).unwrap() {
            Statement::Select(s) => bind_expr(&s.where_clause.unwrap(), &schema()),
            _ => unreachable!(),
        }
    }

    fn bind_proj(expr: &str) -> DbResult<BoundExpr> {
        let sql = format!("SELECT {expr} FROM t");
        match parse_statement(&sql).unwrap() {
            Statement::Select(s) => match &s.projections[0] {
                SelectItem::Expr { expr, .. } => bind_expr(expr, &schema()),
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }

    fn row(a: i64, b: f64, c: &str) -> Row {
        vec![Value::Int(a), Value::Float(b), Value::Str(c.into())]
    }

    #[test]
    fn binds_and_evaluates_comparison() {
        let e = bind_pred("a > 2").unwrap();
        assert!(e.eval_predicate(&row(3, 0.0, "")).unwrap());
        assert!(!e.eval_predicate(&row(2, 0.0, "")).unwrap());
    }

    #[test]
    fn arithmetic_typing_and_eval() {
        let e = bind_proj("a * 2 + 1").unwrap();
        assert_eq!(e.data_type(), Some(DataType::Int));
        assert_eq!(e.eval(&row(5, 0.0, "")).unwrap(), Value::Int(11));
        let f = bind_proj("a + b").unwrap();
        assert_eq!(f.data_type(), Some(DataType::Float));
        assert_eq!(f.eval(&row(1, 2.5, "")).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = bind_proj("a / 0").unwrap();
        assert!(matches!(
            e.eval(&row(1, 0.0, "")).unwrap_err(),
            DbError::Execution(m) if m.contains("division")
        ));
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let e = bind_proj("a * a").unwrap();
        assert!(e.eval(&row(i64::MAX, 0.0, "")).is_err());
    }

    #[test]
    fn null_propagates_through_comparisons_and_arithmetic() {
        let e = bind_pred("a > 2").unwrap();
        let null_row = vec![Value::Null, Value::Float(0.0), Value::Str("".into())];
        assert_eq!(e.eval(&null_row).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&null_row).unwrap(), "NULL filters out");
        let f = bind_proj("a + 1").unwrap();
        assert_eq!(f.eval(&null_row).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_and_or() {
        let e = bind_pred("a > 0 AND b > 0.0").unwrap();
        let null_a = vec![Value::Null, Value::Float(1.0), Value::Str("".into())];
        assert_eq!(e.eval(&null_a).unwrap(), Value::Null);
        // false AND NULL = false.
        let e2 = bind_pred("a > 100 AND b > 0.0").unwrap();
        let null_b = vec![Value::Int(1), Value::Null, Value::Str("".into())];
        assert_eq!(e2.eval(&null_b).unwrap(), Value::Bool(false));
        // true OR NULL = true.
        let e3 = bind_pred("a > 0 OR b > 0.0").unwrap();
        assert_eq!(e3.eval(&null_b).unwrap(), Value::Bool(true));
    }

    #[test]
    fn is_null_never_returns_null() {
        let e = bind_pred("a IS NULL").unwrap();
        let null_row = vec![Value::Null, Value::Float(0.0), Value::Str("".into())];
        assert_eq!(e.eval(&null_row).unwrap(), Value::Bool(true));
        assert_eq!(e.eval(&row(1, 0.0, "")).unwrap(), Value::Bool(false));
        let n = bind_pred("a IS NOT NULL").unwrap();
        assert_eq!(n.eval(&null_row).unwrap(), Value::Bool(false));
    }

    #[test]
    fn type_errors_caught_at_bind_time() {
        assert!(matches!(bind_pred("c > 1").unwrap_err(), DbError::Type(_)));
        assert!(matches!(bind_proj("c + 1").unwrap_err(), DbError::Type(_)));
        assert!(matches!(bind_pred("NOT a").unwrap_err(), DbError::Type(_)));
        assert!(matches!(
            bind_pred("a AND b > 0.0").unwrap_err(),
            DbError::Type(_)
        ));
    }

    #[test]
    fn unknown_column_caught_at_bind_time() {
        assert!(matches!(
            bind_pred("zzz = 1").unwrap_err(),
            DbError::Binding(_)
        ));
    }

    #[test]
    fn string_comparison_works() {
        let e = bind_pred("c = 'x'").unwrap();
        assert!(e.eval_predicate(&row(0, 0.0, "x")).unwrap());
        assert!(!e.eval_predicate(&row(0, 0.0, "y")).unwrap());
    }

    #[test]
    fn referenced_columns_and_remap() {
        let e = bind_pred("a > 0 AND b < 1.0").unwrap();
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1]);
        let shifted = e.remap_columns(&|i| i + 10);
        let mut cols2 = Vec::new();
        shifted.referenced_columns(&mut cols2);
        cols2.sort_unstable();
        assert_eq!(cols2, vec![10, 11]);
    }

    #[test]
    fn not_of_null_is_null() {
        let e = bind_pred("NOT (a > 0)").unwrap();
        let null_row = vec![Value::Null, Value::Float(0.0), Value::Str("".into())];
        assert_eq!(e.eval(&null_row).unwrap(), Value::Null);
    }
}
