//! Error handling.
//!
//! One error enum for the whole engine; variants carry enough context to be
//! actionable without backtraces. No panics on user input — the parser,
//! binder and executor all return [`DbResult`].

use std::fmt;

/// Any error the engine can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Lexer/parser rejection with position info.
    Parse(String),
    /// Name resolution failure (unknown table/column/view, ambiguity).
    Binding(String),
    /// Type mismatch in an expression or insert.
    Type(String),
    /// Catalog conflicts (duplicate table, unknown drop target, …).
    Catalog(String),
    /// Runtime evaluation failure (division by zero, overflow, …).
    Execution(String),
}

/// The engine-wide result alias.
pub type DbResult<T> = Result<T, DbError>;

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Binding(m) => write!(f, "binding error: {m}"),
            DbError::Type(m) => write!(f, "type error: {m}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// Shorthand constructor for parse errors.
    pub fn parse(msg: impl Into<String>) -> DbError {
        DbError::Parse(msg.into())
    }

    /// Shorthand constructor for binding errors.
    pub fn binding(msg: impl Into<String>) -> DbError {
        DbError::Binding(msg.into())
    }

    /// Shorthand constructor for type errors.
    pub fn type_err(msg: impl Into<String>) -> DbError {
        DbError::Type(msg.into())
    }

    /// Shorthand constructor for catalog errors.
    pub fn catalog(msg: impl Into<String>) -> DbError {
        DbError::Catalog(msg.into())
    }

    /// Shorthand constructor for execution errors.
    pub fn execution(msg: impl Into<String>) -> DbError {
        DbError::Execution(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(
            DbError::parse("unexpected ')'").to_string(),
            "parse error: unexpected ')'"
        );
        assert_eq!(
            DbError::binding("unknown column x").to_string(),
            "binding error: unknown column x"
        );
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(DbError::type_err("a"), DbError::Type("a".into()));
        assert_ne!(DbError::type_err("a"), DbError::parse("a"));
    }
}
