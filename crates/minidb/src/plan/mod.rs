//! Planning: logical plans, binding, optimization, costing, EXPLAIN.
//!
//! Pipeline: `ast::SelectStmt` → [`binder::bind_select`] → [`LogicalPlan`]
//! → [`optimizer::optimize`] → costed/explained ([`cost`], [`explain`]) →
//! executed (`crate::exec`).

pub mod binder;
pub mod cost;
pub mod explain;
pub mod logical;
pub mod optimizer;

pub use binder::bind_select;
pub use cost::{estimate, PlanEstimate};
pub use explain::Explain;
pub use logical::{AggExpr, JoinKeys, LogicalPlan};
pub use optimizer::optimize;
