//! Binding: `ast::SelectStmt` → [`LogicalPlan`].
//!
//! Responsibilities:
//! * resolve tables and views (views inline recursively, with a depth cap
//!   against cyclic/pathological definitions),
//! * bind all expressions against the appropriate schemas,
//! * split join conditions into hash-able equi keys and residual predicates,
//! * lower aggregates: `GROUP BY` queries become
//!   `Aggregate → Sort → Project`, with the SQL validity rule enforced
//!   (non-aggregate projections must be grouping expressions).

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::expr::{bind_expr, BoundExpr};
use crate::plan::logical::{AggExpr, JoinStrategy, LogicalPlan};
use crate::schema::{Column, Schema};
use crate::sql::ast::{Expr, FromClause, SelectItem, SelectStmt, Statement};
use crate::sql::parser::parse_statement;
use crate::value::DataType;

/// Maximum view-inlining depth.
const MAX_VIEW_DEPTH: usize = 16;

/// Binds a SELECT statement into a logical plan.
pub fn bind_select(select: &SelectStmt, catalog: &Catalog) -> DbResult<LogicalPlan> {
    bind_select_depth(select, catalog, 0)
}

fn bind_select_depth(
    select: &SelectStmt,
    catalog: &Catalog,
    depth: usize,
) -> DbResult<LogicalPlan> {
    if depth > MAX_VIEW_DEPTH {
        return Err(DbError::binding("view nesting too deep (cycle?)"));
    }
    let from = select
        .from
        .as_ref()
        .ok_or_else(|| DbError::binding("SELECT requires a FROM clause"))?;
    let mut plan = bind_from(from, catalog, depth)?;

    if let Some(w) = &select.where_clause {
        if contains_agg(w) {
            return Err(DbError::binding("aggregates are not allowed in WHERE"));
        }
        let predicate = bind_expr(w, plan.schema())?;
        expect_boolean(&predicate, "WHERE")?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }

    let is_aggregate = !select.group_by.is_empty()
        || select.projections.iter().any(|p| match p {
            SelectItem::Expr { expr, .. } => contains_agg(expr),
            SelectItem::Star => false,
        })
        || select.order_by.iter().any(|(e, _)| contains_agg(e));

    let mut plan = if is_aggregate {
        if select.distinct {
            return Err(DbError::binding(
                "DISTINCT with aggregates/GROUP BY is not supported",
            ));
        }
        bind_aggregate_query(select, plan)?
    } else {
        let plan = bind_plain_query(select, plan)?;
        if select.distinct {
            dedupe(plan)
        } else {
            plan
        }
    };

    if let Some(n) = select.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

/// Wraps a plan in a deduplicating aggregation over all of its columns
/// (`SELECT DISTINCT`). The hash aggregate preserves first-seen order, so
/// an `ORDER BY` beneath it survives.
fn dedupe(plan: LogicalPlan) -> LogicalPlan {
    let schema = plan.schema().clone();
    let group_by: Vec<BoundExpr> = schema
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| BoundExpr::Column {
            index: i,
            ty: c.ty,
            name: c.name.clone(),
        })
        .collect();
    LogicalPlan::Aggregate {
        input: Box::new(plan),
        group_by,
        aggs: Vec::new(),
        schema,
    }
}

fn bind_from(from: &FromClause, catalog: &Catalog, depth: usize) -> DbResult<LogicalPlan> {
    match from {
        FromClause::Table { name, alias } => {
            let alias = alias.clone().unwrap_or_else(|| name.clone());
            if let Some(table) = catalog.table(name) {
                return Ok(LogicalPlan::Scan {
                    table: table.name().to_string(),
                    alias: alias.clone(),
                    schema: table.schema().with_qualifier(&alias),
                });
            }
            if let Some(view) = catalog.view(name) {
                let stmt = parse_statement(&view.query)?;
                let inner = match stmt {
                    Statement::Select(s) => s,
                    _ => {
                        return Err(DbError::catalog(format!(
                            "view '{name}' does not store a SELECT"
                        )))
                    }
                };
                let inner_plan = bind_select_depth(&inner, catalog, depth + 1)?;
                // Re-expose the view's output under the alias.
                let inner_schema = inner_plan.schema().clone();
                let exprs: Vec<BoundExpr> = inner_schema
                    .columns()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| BoundExpr::Column {
                        index: i,
                        ty: c.ty,
                        name: c.name.clone(),
                    })
                    .collect();
                let schema = Schema::new(
                    inner_schema
                        .columns()
                        .iter()
                        .map(|c| Column::qualified(alias.clone(), c.name.clone(), c.ty))
                        .collect(),
                );
                return Ok(LogicalPlan::Project {
                    input: Box::new(inner_plan),
                    exprs,
                    schema,
                });
            }
            Err(DbError::binding(format!("unknown relation '{name}'")))
        }
        FromClause::Join { left, right, on } => {
            let l = bind_from(left, catalog, depth)?;
            let r = bind_from(right, catalog, depth)?;
            let left_len = l.schema().len();
            let combined = l.schema().join(r.schema());
            if contains_agg(on) {
                return Err(DbError::binding("aggregates are not allowed in ON"));
            }
            let bound_on = bind_expr(on, &combined)?;
            expect_boolean(&bound_on, "ON")?;
            let (equi, residual) = split_join_condition(bound_on, left_len);
            Ok(LogicalPlan::Join {
                left: Box::new(l),
                right: Box::new(r),
                equi,
                residual,
                strategy: JoinStrategy::Hash, // optimizer may revise
                schema: combined,
            })
        }
    }
}

/// Splits a bound ON condition into equi column pairs and a residual.
fn split_join_condition(
    cond: BoundExpr,
    left_len: usize,
) -> (Vec<(usize, usize)>, Option<BoundExpr>) {
    let mut conjuncts = Vec::new();
    flatten_and(cond, &mut conjuncts);
    let mut equi = Vec::new();
    let mut residual: Option<BoundExpr> = None;
    for c in conjuncts {
        if let BoundExpr::Binary {
            left,
            op: crate::sql::ast::BinaryOp::Eq,
            right,
        } = &c
        {
            if let (BoundExpr::Column { index: li, .. }, BoundExpr::Column { index: ri, .. }) =
                (left.as_ref(), right.as_ref())
            {
                let (a, b) = (*li, *ri);
                if a < left_len && b >= left_len {
                    equi.push((a, b - left_len));
                    continue;
                }
                if b < left_len && a >= left_len {
                    equi.push((b, a - left_len));
                    continue;
                }
            }
        }
        residual = Some(match residual {
            None => c,
            Some(prev) => BoundExpr::Binary {
                left: Box::new(prev),
                op: crate::sql::ast::BinaryOp::And,
                right: Box::new(c),
            },
        });
    }
    (equi, residual)
}

/// Flattens nested ANDs into a conjunct list.
pub(crate) fn flatten_and(e: BoundExpr, out: &mut Vec<BoundExpr>) {
    match e {
        BoundExpr::Binary {
            left,
            op: crate::sql::ast::BinaryOp::And,
            right,
        } => {
            flatten_and(*left, out);
            flatten_and(*right, out);
        }
        other => out.push(other),
    }
}

fn expect_boolean(e: &BoundExpr, ctx: &str) -> DbResult<()> {
    match e.data_type() {
        None | Some(DataType::Bool) => Ok(()),
        Some(t) => Err(DbError::type_err(format!("{ctx} must be boolean, got {t}"))),
    }
}

fn contains_agg(e: &Expr) -> bool {
    match e {
        Expr::Agg { .. } => true,
        Expr::Column { .. } | Expr::Literal(_) => false,
        Expr::Unary { expr, .. } => contains_agg(expr),
        Expr::Binary { left, right, .. } => contains_agg(left) || contains_agg(right),
        Expr::IsNull { expr, .. } => contains_agg(expr),
    }
}

/// Plain (non-aggregate) query: `input → Sort? → Project → (Limit by caller)`.
fn bind_plain_query(select: &SelectStmt, input: LogicalPlan) -> DbResult<LogicalPlan> {
    let input_schema = input.schema().clone();
    let mut plan = input;

    if !select.order_by.is_empty() {
        let keys: DbResult<Vec<(BoundExpr, bool)>> = select
            .order_by
            .iter()
            .map(|(e, asc)| Ok((bind_expr(e, &input_schema)?, *asc)))
            .collect();
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys: keys?,
        };
    }

    let mut exprs = Vec::new();
    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Star => {
                for (i, c) in input_schema.columns().iter().enumerate() {
                    exprs.push(BoundExpr::Column {
                        index: i,
                        ty: c.ty,
                        name: c.name.clone(),
                    });
                    columns.push(c.clone());
                }
            }
            SelectItem::Expr { expr, alias } => {
                let bound = bind_expr(expr, &input_schema)?;
                let ty = bound.data_type().unwrap_or(DataType::Text);
                let name = alias.clone().unwrap_or_else(|| bound.output_name());
                columns.push(Column::new(name, ty));
                exprs.push(bound);
            }
        }
    }
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Schema::new(columns),
    })
}

/// Aggregate query: `input → Aggregate → Sort? → Project → (Limit by
/// caller)`.
fn bind_aggregate_query(select: &SelectStmt, input: LogicalPlan) -> DbResult<LogicalPlan> {
    let input_schema = input.schema().clone();

    // Grouping expressions.
    let group_bound: DbResult<Vec<BoundExpr>> = select
        .group_by
        .iter()
        .map(|e| {
            if contains_agg(e) {
                return Err(DbError::binding("aggregates are not allowed in GROUP BY"));
            }
            bind_expr(e, &input_schema)
        })
        .collect();
    let group_bound = group_bound?;

    // Collect distinct aggregate calls from projections and ORDER BY.
    let mut aggs: Vec<AggExpr> = Vec::new();
    let mut collect =
        |expr: &Expr| -> DbResult<()> { collect_aggs(expr, &input_schema, &mut aggs) };
    for item in &select.projections {
        match item {
            SelectItem::Star => {
                return Err(DbError::binding("SELECT * is not valid with GROUP BY"))
            }
            SelectItem::Expr { expr, .. } => collect(expr)?,
        }
    }
    for (e, _) in &select.order_by {
        collect(e)?;
    }

    // Output schema of the Aggregate node: group cols then agg cols.
    let mut agg_columns: Vec<Column> = group_bound
        .iter()
        .map(|g| Column::new(g.output_name(), g.data_type().unwrap_or(DataType::Text)))
        .collect();
    for a in &aggs {
        agg_columns.push(Column::new(a.name.clone(), agg_output_type(a)));
    }
    let agg_schema = Schema::new(agg_columns);

    let mut plan = LogicalPlan::Aggregate {
        input: Box::new(input),
        group_by: group_bound.clone(),
        aggs: aggs.clone(),
        schema: agg_schema.clone(),
    };

    // Resolves an expression over the aggregate output: either a grouping
    // expression or an aggregate call, by position.
    let resolve = |expr: &Expr| -> DbResult<BoundExpr> {
        resolve_over_aggregate(expr, &input_schema, &group_bound, &aggs, &agg_schema)
    };

    if !select.order_by.is_empty() {
        let keys: DbResult<Vec<(BoundExpr, bool)>> = select
            .order_by
            .iter()
            .map(|(e, asc)| Ok((resolve(e)?, *asc)))
            .collect();
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys: keys?,
        };
    }

    let mut exprs = Vec::new();
    let mut columns = Vec::new();
    for item in &select.projections {
        if let SelectItem::Expr { expr, alias } = item {
            let bound = resolve(expr)?;
            let ty = bound.data_type().unwrap_or(DataType::Text);
            let name = alias.clone().unwrap_or_else(|| bound.output_name());
            columns.push(Column::new(name, ty));
            exprs.push(bound);
        }
    }
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Schema::new(columns),
    })
}

/// Walks `expr` collecting aggregate calls into `aggs` (deduplicated).
fn collect_aggs(expr: &Expr, input: &Schema, aggs: &mut Vec<AggExpr>) -> DbResult<()> {
    match expr {
        Expr::Agg { func, arg } => {
            let bound_arg = match arg {
                Some(a) => {
                    if contains_agg(a) {
                        return Err(DbError::binding("nested aggregates are not supported"));
                    }
                    Some(bind_expr(a, input)?)
                }
                None => None,
            };
            let name = match &bound_arg {
                Some(a) => format!("{func}({a})"),
                None => format!("{func}(*)"),
            };
            if !aggs.iter().any(|x| x.func == *func && x.arg == bound_arg) {
                aggs.push(AggExpr {
                    func: *func,
                    arg: bound_arg,
                    name,
                });
            }
            Ok(())
        }
        Expr::Column { .. } | Expr::Literal(_) => Ok(()),
        Expr::Unary { expr, .. } => collect_aggs(expr, input, aggs),
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, input, aggs)?;
            collect_aggs(right, input, aggs)
        }
        Expr::IsNull { expr, .. } => collect_aggs(expr, input, aggs),
    }
}

fn agg_output_type(a: &AggExpr) -> DataType {
    use crate::sql::ast::AggFunc;
    match a.func {
        AggFunc::Count => DataType::Int,
        AggFunc::Avg => DataType::Float,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => a
            .arg
            .as_ref()
            .and_then(|e| e.data_type())
            .unwrap_or(DataType::Float),
    }
}

/// Rewrites `expr` as a [`BoundExpr`] over the aggregate output schema:
/// aggregate calls map to their output ordinal, grouping expressions map to
/// theirs, and other scalar operators apply on top. A bare column that is
/// not a grouping expression is the classic SQL error.
fn resolve_over_aggregate(
    expr: &Expr,
    input: &Schema,
    group_bound: &[BoundExpr],
    aggs: &[AggExpr],
    agg_schema: &Schema,
) -> DbResult<BoundExpr> {
    // An entire sub-expression that equals a grouping expression maps to
    // that group column (covers e.g. GROUP BY a+b ... SELECT a+b).
    if !contains_agg(expr) {
        if let Ok(bound) = bind_expr(expr, input) {
            if let Some(i) = group_bound.iter().position(|g| *g == bound) {
                let col = agg_schema.column(i);
                return Ok(BoundExpr::Column {
                    index: i,
                    ty: col.ty,
                    name: col.name.clone(),
                });
            }
        }
    }
    match expr {
        Expr::Agg { func, arg } => {
            let bound_arg = match arg {
                Some(a) => Some(bind_expr(a, input)?),
                None => None,
            };
            let pos = aggs
                .iter()
                .position(|x| x.func == *func && x.arg == bound_arg)
                .expect("aggregate was collected in the first pass");
            let index = group_bound.len() + pos;
            let col = agg_schema.column(index);
            Ok(BoundExpr::Column {
                index,
                ty: col.ty,
                name: col.name.clone(),
            })
        }
        Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
        Expr::Unary { op, expr } => Ok(BoundExpr::Unary {
            op: *op,
            expr: Box::new(resolve_over_aggregate(
                expr,
                input,
                group_bound,
                aggs,
                agg_schema,
            )?),
        }),
        Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
            left: Box::new(resolve_over_aggregate(
                left,
                input,
                group_bound,
                aggs,
                agg_schema,
            )?),
            op: *op,
            right: Box::new(resolve_over_aggregate(
                right,
                input,
                group_bound,
                aggs,
                agg_schema,
            )?),
        }),
        Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
            expr: Box::new(resolve_over_aggregate(
                expr,
                input,
                group_bound,
                aggs,
                agg_schema,
            )?),
            negated: *negated,
        }),
        Expr::Column { qualifier, name } => Err(DbError::binding(format!(
            "column '{}{}' must appear in GROUP BY or inside an aggregate",
            qualifier
                .as_deref()
                .map(|q| format!("{q}."))
                .unwrap_or_default(),
            name
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::View;
    use crate::storage::Table;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut emp = Table::new(
            "emp",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("dept", DataType::Text),
                Column::new("salary", DataType::Float),
            ]),
        );
        emp.insert(vec![
            Value::Int(1),
            Value::Str("eng".into()),
            Value::Float(10.0),
        ])
        .unwrap();
        c.create_table(emp).unwrap();
        let dept = Table::new(
            "dept",
            Schema::new(vec![
                Column::new("name", DataType::Text),
                Column::new("budget", DataType::Float),
            ]),
        );
        c.create_table(dept).unwrap();
        c.create_view(View {
            name: "rich".into(),
            query: "SELECT id, salary FROM emp WHERE salary > 5.0".into(),
        })
        .unwrap();
        c
    }

    fn bind(sql: &str) -> DbResult<LogicalPlan> {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => bind_select(&s, &catalog()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn binds_simple_select_star() {
        let p = bind("SELECT * FROM emp").unwrap();
        assert_eq!(p.schema().len(), 3);
        assert!(matches!(p, LogicalPlan::Project { .. }));
    }

    #[test]
    fn binds_join_with_equi_keys() {
        let p = bind("SELECT * FROM emp JOIN dept ON emp.dept = dept.name").unwrap();
        fn find_join(p: &LogicalPlan) -> Option<&LogicalPlan> {
            if matches!(p, LogicalPlan::Join { .. }) {
                return Some(p);
            }
            p.children().into_iter().find_map(find_join)
        }
        match find_join(&p).expect("join present") {
            LogicalPlan::Join { equi, residual, .. } => {
                assert_eq!(equi, &vec![(1, 0)]);
                assert!(residual.is_none());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn join_with_range_condition_becomes_residual() {
        let p = bind(
            "SELECT * FROM emp JOIN dept ON emp.dept = dept.name AND emp.salary < dept.budget",
        )
        .unwrap();
        fn find_join(p: &LogicalPlan) -> Option<&LogicalPlan> {
            if matches!(p, LogicalPlan::Join { .. }) {
                return Some(p);
            }
            p.children().into_iter().find_map(find_join)
        }
        match find_join(&p).unwrap() {
            LogicalPlan::Join { equi, residual, .. } => {
                assert_eq!(equi.len(), 1);
                assert!(residual.is_some());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn view_inlines_with_alias() {
        let p = bind("SELECT r.id FROM rich AS r WHERE r.salary > 6.0").unwrap();
        // The view body (Filter over scan) must be inside.
        let text = p.to_string();
        assert!(text.contains("Scan [emp"), "{text}");
        assert_eq!(p.schema().len(), 1);
    }

    #[test]
    fn aggregate_lowering_shapes_plan() {
        let p =
            bind("SELECT dept, COUNT(*) AS n, AVG(salary) FROM emp GROUP BY dept ORDER BY dept")
                .unwrap();
        let text = p.to_string();
        assert!(text.contains("Aggregate"), "{text}");
        assert!(text.contains("Sort"), "{text}");
        assert_eq!(p.schema().len(), 3);
        assert_eq!(p.schema().column(1).name, "n");
    }

    #[test]
    fn non_grouped_column_rejected() {
        let err = bind("SELECT salary FROM emp GROUP BY dept").unwrap_err();
        assert!(matches!(err, DbError::Binding(m) if m.contains("GROUP BY")));
    }

    #[test]
    fn star_with_group_by_rejected() {
        assert!(bind("SELECT * FROM emp GROUP BY dept").is_err());
    }

    #[test]
    fn aggregate_in_where_rejected() {
        assert!(bind("SELECT dept FROM emp WHERE COUNT(*) > 1 GROUP BY dept").is_err());
    }

    #[test]
    fn arithmetic_over_aggregates_allowed() {
        let p = bind("SELECT dept, SUM(salary) / COUNT(*) FROM emp GROUP BY dept").unwrap();
        assert_eq!(p.schema().len(), 2);
    }

    #[test]
    fn where_must_be_boolean() {
        assert!(matches!(
            bind("SELECT * FROM emp WHERE salary").unwrap_err(),
            DbError::Type(_)
        ));
    }

    #[test]
    fn unknown_relation_errors() {
        assert!(matches!(
            bind("SELECT * FROM nope").unwrap_err(),
            DbError::Binding(m) if m.contains("unknown relation")
        ));
    }

    #[test]
    fn missing_from_errors() {
        assert!(bind("SELECT 1").is_err());
    }
}
