//! Cardinality and cost estimation.
//!
//! The estimates feed two consumers: the optimizer (join build-side choice)
//! and `EXPLAIN` — whose cost number is exactly what the paper's allocators
//! use as a first-cut execution-time estimate (§5.2). Like the commercial
//! DBMS in the paper, the estimates are *deliberately imperfect*: they know
//! nothing about cache contents, so the cluster layer corrects them with
//! execution history, reproducing the paper's two-step estimator.
//!
//! Cost is in abstract work units: 1 unit ≈ one row of CPU handling;
//! byte-volume terms model I/O. Absolute values are meaningless; ratios
//! drive decisions.

use crate::catalog::Catalog;
use crate::expr::BoundExpr;
use crate::plan::logical::{IndexCondition, JoinStrategy, LogicalPlan};
use crate::sql::ast::{BinaryOp, UnaryOp};

/// Estimated output shape of a plan node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost (work units).
    pub cost: f64,
    /// Estimated bytes per output row.
    pub width: f64,
}

/// Heuristic selectivity of a predicate (no column histograms — the classic
/// System-R constants).
pub fn selectivity(pred: &BoundExpr) -> f64 {
    match pred {
        BoundExpr::Binary { left, op, right } => match op {
            BinaryOp::And => selectivity(left) * selectivity(right),
            BinaryOp::Or => (selectivity(left) + selectivity(right)).min(1.0),
            BinaryOp::Eq => 0.1,
            BinaryOp::NotEq => 0.9,
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => 0.3,
            _ => 1.0,
        },
        BoundExpr::Unary {
            op: UnaryOp::Not,
            expr,
        } => 1.0 - selectivity(expr),
        BoundExpr::IsNull { negated, .. } => {
            if *negated {
                0.95
            } else {
                0.05
            }
        }
        BoundExpr::Literal(crate::value::Value::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        _ => 0.5,
    }
}

/// Estimates a plan bottom-up against the catalog's table statistics.
pub fn estimate(plan: &LogicalPlan, catalog: &Catalog) -> PlanEstimate {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            let (rows, width) = catalog
                .table(table)
                .map(|t| (t.stats().row_count as f64, t.stats().avg_row_bytes))
                .unwrap_or((0.0, 0.0));
            PlanEstimate {
                rows,
                // Sequential read: CPU per row plus byte volume.
                cost: rows * (1.0 + width / 100.0),
                width: width.max(8.0),
            }
        }
        LogicalPlan::IndexScan {
            table,
            column,
            condition,
            ..
        } => {
            let (rows, width, distinct) = catalog
                .table(table)
                .map(|t| {
                    let s = t.stats();
                    (
                        s.row_count as f64,
                        s.avg_row_bytes,
                        s.columns[*column].distinct_estimate(s.row_count).max(1) as f64,
                    )
                })
                .unwrap_or((0.0, 0.0, 1.0));
            let out_rows = match condition {
                IndexCondition::Eq(_) => (rows / distinct).max(0.0),
                IndexCondition::Range { .. } => rows * 0.3,
            };
            PlanEstimate {
                rows: out_rows,
                // B-tree descent plus the matching rows.
                cost: rows.max(2.0).log2() + out_rows * (1.0 + width / 100.0),
                width: width.max(8.0),
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let child = estimate(input, catalog);
            let sel = selectivity(predicate).clamp(0.0, 1.0);
            PlanEstimate {
                rows: (child.rows * sel).max(0.0),
                cost: child.cost + child.rows * 0.5,
                width: child.width,
            }
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let child = estimate(input, catalog);
            PlanEstimate {
                rows: child.rows,
                cost: child.cost + child.rows * 0.2 * exprs.len().max(1) as f64,
                width: (child.width * exprs.len() as f64 / input.schema().len().max(1) as f64)
                    .max(8.0),
            }
        }
        LogicalPlan::Join {
            left,
            right,
            equi,
            residual,
            strategy,
            ..
        } => {
            let l = estimate(left, catalog);
            let r = estimate(right, catalog);
            let base_rows = if equi.is_empty() {
                l.rows * r.rows
            } else {
                // Foreign-key heuristic: one match per row of the bigger
                // side.
                l.rows.max(r.rows)
            };
            let res_sel = residual.as_ref().map_or(1.0, selectivity);
            let rows = (base_rows * res_sel).max(0.0);
            let algo_cost = match strategy {
                JoinStrategy::Hash => {
                    let build = l.rows.min(r.rows);
                    let probe = l.rows.max(r.rows);
                    2.0 * build + probe
                }
                JoinStrategy::Merge => {
                    let nlogn = |n: f64| if n > 1.0 { n * n.log2() } else { n };
                    nlogn(l.rows) + nlogn(r.rows) + l.rows + r.rows
                }
                JoinStrategy::NestedLoop => l.rows * r.rows * 0.5 + l.rows + r.rows,
            };
            PlanEstimate {
                rows,
                cost: l.cost + r.cost + algo_cost + rows * 0.5,
                width: l.width + r.width,
            }
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let child = estimate(input, catalog);
            let groups = if group_by.is_empty() {
                1.0
            } else {
                // Square-root rule: group count grows sublinearly.
                child.rows.sqrt().max(1.0).min(child.rows.max(1.0))
            };
            PlanEstimate {
                rows: groups,
                cost: child.cost + child.rows * 1.5,
                width: child.width.max(16.0),
            }
        }
        LogicalPlan::Sort { input, .. } => {
            let child = estimate(input, catalog);
            let nlogn = if child.rows > 1.0 {
                child.rows * child.rows.log2()
            } else {
                child.rows
            };
            PlanEstimate {
                rows: child.rows,
                cost: child.cost + nlogn,
                width: child.width,
            }
        }
        LogicalPlan::Limit { input, n } => {
            let child = estimate(input, catalog);
            PlanEstimate {
                rows: child.rows.min(*n as f64),
                cost: child.cost,
                width: child.width,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::binder::bind_select;
    use crate::schema::{Column, Schema};
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse_statement;
    use crate::storage::Table;
    use crate::value::{DataType, Value};

    fn catalog(emp_rows: usize, dept_rows: usize) -> Catalog {
        let mut c = Catalog::new();
        let mut emp = Table::new(
            "emp",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("dept", DataType::Int),
            ]),
        );
        for i in 0..emp_rows {
            emp.insert(vec![Value::Int(i as i64), Value::Int((i % 10) as i64)])
                .unwrap();
        }
        c.create_table(emp).unwrap();
        let mut dept = Table::new("dept", Schema::new(vec![Column::new("id", DataType::Int)]));
        for i in 0..dept_rows {
            dept.insert(vec![Value::Int(i as i64)]).unwrap();
        }
        c.create_table(dept).unwrap();
        c
    }

    fn plan(sql: &str, c: &Catalog) -> LogicalPlan {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => bind_select(&s, c).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn scan_rows_match_table() {
        let c = catalog(500, 10);
        let p = plan("SELECT * FROM emp", &c);
        let e = estimate(&p, &c);
        assert_eq!(e.rows, 500.0);
        assert!(e.cost > 500.0);
    }

    #[test]
    fn filter_reduces_estimated_rows() {
        let c = catalog(1_000, 10);
        let scan = estimate(&plan("SELECT * FROM emp", &c), &c);
        let eq = estimate(&plan("SELECT * FROM emp WHERE id = 5", &c), &c);
        let range = estimate(&plan("SELECT * FROM emp WHERE id < 5", &c), &c);
        assert!(eq.rows < range.rows);
        assert!(range.rows < scan.rows);
    }

    #[test]
    fn conjunction_multiplies_selectivity() {
        let c = catalog(1_000, 10);
        let one = estimate(&plan("SELECT * FROM emp WHERE id = 5", &c), &c);
        let two = estimate(&plan("SELECT * FROM emp WHERE id = 5 AND dept = 3", &c), &c);
        assert!(two.rows < one.rows);
    }

    #[test]
    fn equi_join_estimates_fk_cardinality() {
        let c = catalog(1_000, 10);
        let p = plan("SELECT * FROM emp JOIN dept ON emp.dept = dept.id", &c);
        let e = estimate(&p, &c);
        // FK heuristic: ~max(1000, 10) rows before projection.
        assert!((900.0..1_100.0).contains(&e.rows), "rows {}", e.rows);
    }

    #[test]
    fn bigger_tables_cost_more() {
        let small = catalog(100, 10);
        let big = catalog(10_000, 10);
        let cost = |c: &Catalog| {
            estimate(
                &plan("SELECT * FROM emp JOIN dept ON emp.dept = dept.id", c),
                c,
            )
            .cost
        };
        assert!(cost(&big) > 10.0 * cost(&small));
    }

    #[test]
    fn sort_adds_superlinear_cost() {
        let c = catalog(10_000, 10);
        let flat = estimate(&plan("SELECT * FROM emp", &c), &c);
        let sorted = estimate(&plan("SELECT * FROM emp ORDER BY id", &c), &c);
        assert!(sorted.cost > flat.cost + 10_000.0);
    }

    #[test]
    fn limit_caps_rows() {
        let c = catalog(1_000, 10);
        let e = estimate(&plan("SELECT * FROM emp LIMIT 5", &c), &c);
        assert_eq!(e.rows, 5.0);
    }

    #[test]
    fn selectivity_constants_sane() {
        // Sanity on the System-R style constants.
        let col = BoundExpr::Column {
            index: 0,
            ty: DataType::Int,
            name: "x".into(),
        };
        let lit = BoundExpr::Literal(Value::Int(1));
        let eq = BoundExpr::Binary {
            left: Box::new(col.clone()),
            op: BinaryOp::Eq,
            right: Box::new(lit.clone()),
        };
        assert!(selectivity(&eq) < 0.2);
        let not = BoundExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(eq),
        };
        assert!(selectivity(&not) > 0.8);
    }
}
