//! `EXPLAIN` rendering and plan fingerprints.
//!
//! [`Explain`] is the engine's equivalent of the paper's `EXPLAIN PLAN`
//! statement: the operator tree annotated with estimated rows and cost. The
//! [`Explain::fingerprint`] is a literal-insensitive structural hash — two
//! queries from the same template (§2.1: "differing only in some selection
//! constant(s)") produce the same fingerprint, which is exactly the key the
//! paper's corrected estimator needs ("past execution information
//! concerning queries with the same plan", §5.2).

use crate::catalog::Catalog;
use crate::expr::BoundExpr;
use crate::plan::cost::{estimate, PlanEstimate};
use crate::plan::logical::LogicalPlan;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The result of explaining a plan.
#[derive(Debug, Clone)]
pub struct Explain {
    /// Rendered operator tree with per-node estimates.
    pub text: String,
    /// Root estimate (rows, cumulative cost, width).
    pub root: PlanEstimate,
    /// Literal-insensitive structural hash of the plan.
    pub fingerprint: u64,
}

impl Explain {
    /// Explains a plan against the catalog.
    pub fn of(plan: &LogicalPlan, catalog: &Catalog) -> Explain {
        let mut text = String::new();
        render(plan, catalog, 0, &mut text);
        let mut hasher = DefaultHasher::new();
        hash_plan(plan, &mut hasher);
        Explain {
            text,
            root: estimate(plan, catalog),
            fingerprint: hasher.finish(),
        }
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

fn render(plan: &LogicalPlan, catalog: &Catalog, depth: usize, out: &mut String) {
    let e = estimate(plan, catalog);
    out.push_str(&format!(
        "{}{} [{}] (rows={:.0} cost={:.0})\n",
        "  ".repeat(depth),
        plan.op_name(),
        plan.details(),
        e.rows,
        e.cost,
    ));
    for c in plan.children() {
        render(c, catalog, depth + 1, out);
    }
}

/// Hashes a plan's structure, ignoring literal values (but not literal
/// *types*): queries of the same template share a fingerprint.
fn hash_plan<H: Hasher>(plan: &LogicalPlan, h: &mut H) {
    plan.op_name().hash(h);
    match plan {
        LogicalPlan::Scan { table, alias, .. } => {
            table.hash(h);
            alias.hash(h);
        }
        LogicalPlan::IndexScan {
            table,
            alias,
            column,
            condition,
            ..
        } => {
            table.hash(h);
            alias.hash(h);
            column.hash(h);
            // Literal-insensitive: hash only the shape of the condition.
            match condition {
                crate::plan::logical::IndexCondition::Eq(_) => 0u8.hash(h),
                crate::plan::logical::IndexCondition::Range { lo, hi } => {
                    1u8.hash(h);
                    std::mem::discriminant(lo).hash(h);
                    std::mem::discriminant(hi).hash(h);
                }
            }
        }
        LogicalPlan::Filter { predicate, .. } => hash_expr(predicate, h),
        LogicalPlan::Project { exprs, .. } => {
            for e in exprs {
                hash_expr(e, h);
            }
        }
        LogicalPlan::Join { equi, residual, .. } => {
            equi.hash(h);
            if let Some(r) = residual {
                hash_expr(r, h);
            }
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            for g in group_by {
                hash_expr(g, h);
            }
            for a in aggs {
                format!("{:?}", a.func).hash(h);
                if let Some(arg) = &a.arg {
                    hash_expr(arg, h);
                }
            }
        }
        LogicalPlan::Sort { keys, .. } => {
            for (e, asc) in keys {
                hash_expr(e, h);
                asc.hash(h);
            }
        }
        LogicalPlan::Limit { n, .. } => n.hash(h),
    }
    for c in plan.children() {
        hash_plan(c, h);
    }
}

fn hash_expr<H: Hasher>(e: &BoundExpr, h: &mut H) {
    match e {
        BoundExpr::Column { index, ty, .. } => {
            0u8.hash(h);
            index.hash(h);
            ty.hash(h);
        }
        BoundExpr::Literal(v) => {
            // Type tag only: `id = 5` and `id = 7` fingerprint identically.
            1u8.hash(h);
            format!("{:?}", v.data_type()).hash(h);
        }
        BoundExpr::Unary { op, expr } => {
            2u8.hash(h);
            format!("{op:?}").hash(h);
            hash_expr(expr, h);
        }
        BoundExpr::Binary { left, op, right } => {
            3u8.hash(h);
            format!("{op:?}").hash(h);
            hash_expr(left, h);
            hash_expr(right, h);
        }
        BoundExpr::IsNull { expr, negated } => {
            4u8.hash(h);
            negated.hash(h);
            hash_expr(expr, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::binder::bind_select;
    use crate::schema::{Column, Schema};
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse_statement;
    use crate::storage::Table;
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("v", DataType::Float),
            ]),
        );
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::Float(i as f64)])
                .unwrap();
        }
        c.create_table(t).unwrap();
        c
    }

    fn explain(sql: &str) -> Explain {
        let c = catalog();
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => Explain::of(&bind_select(&s, &c).unwrap(), &c),
            _ => unreachable!(),
        }
    }

    #[test]
    fn text_contains_operators_and_estimates() {
        let e = explain("SELECT id FROM t WHERE id > 10 ORDER BY id LIMIT 5");
        assert!(e.text.contains("Limit"));
        assert!(e.text.contains("Sort"));
        assert!(e.text.contains("Filter"));
        assert!(e.text.contains("Scan"));
        assert!(e.text.contains("rows="));
        assert!(e.text.contains("cost="));
    }

    #[test]
    fn same_template_same_fingerprint() {
        let a = explain("SELECT id FROM t WHERE id = 5");
        let b = explain("SELECT id FROM t WHERE id = 99");
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn different_shape_different_fingerprint() {
        let a = explain("SELECT id FROM t WHERE id = 5");
        let b = explain("SELECT id FROM t WHERE id < 5");
        let c = explain("SELECT id FROM t WHERE v = 5.0");
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn literal_type_matters_to_fingerprint() {
        let a = explain("SELECT id FROM t WHERE id = 5");
        let b = explain("SELECT id FROM t WHERE id = 5.0");
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn root_estimate_is_populated() {
        let e = explain("SELECT * FROM t");
        assert_eq!(e.root.rows, 100.0);
        assert!(e.root.cost > 0.0);
    }
}
