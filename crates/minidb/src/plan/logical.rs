//! The logical plan tree.
//!
//! Every node knows its output [`Schema`]; expressions inside a node are
//! bound against its *input* schema. The tree is built by the binder,
//! rewritten by the optimizer, costed by the cost model, and interpreted by
//! the executor — there is no separate physical plan; the small number of
//! physical choices (join algorithm) is recorded on the [`LogicalPlan::Join`]
//! node itself.

use crate::expr::BoundExpr;
use crate::schema::Schema;
use crate::sql::ast::AggFunc;
use crate::value::Value;
use std::fmt;
use std::ops::Bound;

/// Equi-join keys: pairs of (left ordinal, right ordinal), where the right
/// ordinal is relative to the right input's schema.
pub type JoinKeys = Vec<(usize, usize)>;

/// Which join algorithm the executor should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Build a hash table on the smaller side (requires equi keys).
    Hash,
    /// Sort both sides on the keys and merge (requires equi keys).
    Merge,
    /// Nested loops with the full predicate (always applicable).
    NestedLoop,
}

/// One aggregate in an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// The argument over the input schema; `None` only for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
    /// Output column name.
    pub name: String,
}

/// The key condition an [`LogicalPlan::IndexScan`] applies.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexCondition {
    /// `column = value`.
    Eq(Value),
    /// A (half-)open range over the column.
    Range {
        /// Lower bound.
        lo: Bound<Value>,
        /// Upper bound.
        hi: Bound<Value>,
    },
}

impl fmt::Display for IndexCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexCondition::Eq(v) => write!(f, "= {v}"),
            IndexCondition::Range { lo, hi } => {
                match lo {
                    Bound::Included(v) => write!(f, ">= {v}")?,
                    Bound::Excluded(v) => write!(f, "> {v}")?,
                    Bound::Unbounded => {}
                }
                if !matches!(lo, Bound::Unbounded) && !matches!(hi, Bound::Unbounded) {
                    write!(f, " AND ")?;
                }
                match hi {
                    Bound::Included(v) => write!(f, "<= {v}")?,
                    Bound::Excluded(v) => write!(f, "< {v}")?,
                    Bound::Unbounded => {}
                }
                Ok(())
            }
        }
    }
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a base table.
    Scan {
        /// The catalog table name.
        table: String,
        /// The alias used in the query.
        alias: String,
        /// Output schema (qualified by the alias).
        schema: Schema,
    },
    /// Index lookup on a base table (chosen by the optimizer when a
    /// sargable predicate meets a secondary index).
    IndexScan {
        /// The catalog table name.
        table: String,
        /// The alias used in the query.
        alias: String,
        /// The indexed column's ordinal in the table schema.
        column: usize,
        /// The key condition.
        condition: IndexCondition,
        /// Output schema (qualified by the alias).
        schema: Schema,
    },
    /// Predicate filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The predicate over the input schema.
        predicate: BoundExpr,
    },
    /// Expression projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions over the input schema.
        exprs: Vec<BoundExpr>,
        /// Output schema (one column per expression).
        schema: Schema,
    },
    /// Join of two inputs.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Equi-key pairs (left ordinal, right-relative ordinal).
        equi: JoinKeys,
        /// Non-equi residual predicate over the concatenated schema.
        residual: Option<BoundExpr>,
        /// The algorithm to use.
        strategy: JoinStrategy,
        /// Output schema (left ++ right).
        schema: Schema,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping expressions over the input schema.
        group_by: Vec<BoundExpr>,
        /// Aggregates over the input schema.
        aggs: Vec<AggExpr>,
        /// Output schema: group columns then aggregate columns.
        schema: Schema,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys over the input schema with ascending flags.
        keys: Vec<(BoundExpr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows to emit.
        n: u64,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema,
            LogicalPlan::IndexScan { schema, .. } => schema,
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema,
            LogicalPlan::Join { schema, .. } => schema,
            LogicalPlan::Aggregate { schema, .. } => schema,
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Short operator name for EXPLAIN.
    pub fn op_name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::IndexScan { .. } => "IndexScan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Join { strategy, .. } => match strategy {
                JoinStrategy::Hash => "HashJoin",
                JoinStrategy::Merge => "MergeJoin",
                JoinStrategy::NestedLoop => "NestedLoopJoin",
            },
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
        }
    }

    /// The node's children.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::IndexScan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Details string for EXPLAIN (predicates, keys, …).
    pub fn details(&self) -> String {
        match self {
            LogicalPlan::Scan { table, alias, .. } => {
                if table == alias {
                    table.clone()
                } else {
                    format!("{table} AS {alias}")
                }
            }
            LogicalPlan::IndexScan {
                table,
                alias,
                column,
                condition,
                ..
            } => {
                let name = if table == alias {
                    table.clone()
                } else {
                    format!("{table} AS {alias}")
                };
                format!("{name} col#{column} {condition}")
            }
            LogicalPlan::Filter { predicate, .. } => predicate.to_string(),
            LogicalPlan::Project { exprs, .. } => exprs
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            LogicalPlan::Join { equi, residual, .. } => {
                let mut parts: Vec<String> =
                    equi.iter().map(|(l, r)| format!("l#{l} = r#{r}")).collect();
                if let Some(res) = residual {
                    parts.push(res.to_string());
                }
                parts.join(" AND ")
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let g: Vec<String> = group_by.iter().map(|e| e.to_string()).collect();
                let a: Vec<String> = aggs
                    .iter()
                    .map(|x| match &x.arg {
                        Some(arg) => format!("{}({arg})", x.func),
                        None => format!("{}(*)", x.func),
                    })
                    .collect();
                format!("group=[{}] aggs=[{}]", g.join(", "), a.join(", "))
            }
            LogicalPlan::Sort { keys, .. } => keys
                .iter()
                .map(|(e, asc)| format!("{e} {}", if *asc { "ASC" } else { "DESC" }))
                .collect::<Vec<_>>()
                .join(", "),
            LogicalPlan::Limit { n, .. } => n.to_string(),
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(plan: &LogicalPlan, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(
                f,
                "{}{} [{}]",
                "  ".repeat(depth),
                plan.op_name(),
                plan.details()
            )?;
            for c in plan.children() {
                rec(c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn scan(alias: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            alias: alias.into(),
            schema: Schema::new(vec![Column::qualified(alias, "x", DataType::Int)]),
        }
    }

    #[test]
    fn schema_passes_through_filters_and_sorts() {
        let s = scan("a");
        let schema = s.schema().clone();
        let f = LogicalPlan::Filter {
            input: Box::new(s),
            predicate: BoundExpr::Literal(crate::value::Value::Bool(true)),
        };
        assert_eq!(f.schema(), &schema);
        let srt = LogicalPlan::Sort {
            input: Box::new(f),
            keys: vec![],
        };
        assert_eq!(srt.schema(), &schema);
    }

    #[test]
    fn display_renders_tree() {
        let j = LogicalPlan::Join {
            left: Box::new(scan("a")),
            right: Box::new(scan("b")),
            equi: vec![(0, 0)],
            residual: None,
            strategy: JoinStrategy::Hash,
            schema: scan("a").schema().join(scan("b").schema()),
        };
        let out = j.to_string();
        assert!(out.contains("HashJoin [l#0 = r#0]"));
        assert!(out.contains("  Scan [t AS a]"));
    }
}
