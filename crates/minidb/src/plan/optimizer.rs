//! Rule-based optimizer.
//!
//! Three rewrites, applied in order:
//!
//! 1. **Predicate pushdown** — conjuncts of a `Filter` sitting above a join
//!    move into the side they reference; filters above projections stay put
//!    (projections here are always top-of-plan).
//! 2. **Join strategy selection** — equi joins use hash join when the
//!    engine allows it (Table 3: only 95 of 100 simulated nodes have
//!    hash-join capability), falling back to sort-merge; joins without equi
//!    keys use nested loops.
//! 3. **Build-side ordering** — for hash joins, the smaller estimated input
//!    becomes the right (build) side.

use crate::catalog::Catalog;
use crate::expr::BoundExpr;
use crate::plan::binder::flatten_and;
use crate::plan::cost::estimate;
use crate::plan::logical::{IndexCondition, JoinStrategy, LogicalPlan};
use crate::sql::ast::BinaryOp;
use std::ops::Bound;

/// Engine-level physical capabilities (per-node heterogeneity knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Whether hash join is available (all nodes can merge-scan, only some
    /// can hash-join — Table 3).
    pub enable_hash_join: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            enable_hash_join: true,
        }
    }
}

/// Optimizes a bound plan.
pub fn optimize(plan: LogicalPlan, catalog: &Catalog, config: OptimizerConfig) -> LogicalPlan {
    let plan = push_down_filters(plan);
    let plan = use_indexes(plan, catalog);
    choose_join_strategies(plan, catalog, config)
}

/// Rewrites `Filter(sargable ∧ rest) over Scan` into
/// `Filter(rest) over IndexScan` when a secondary index covers the
/// sargable conjunct. Runs after pushdown, so filters sit directly on
/// scans.
fn use_indexes(plan: LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = use_indexes(*input, catalog);
            if let LogicalPlan::Scan {
                table,
                alias,
                schema,
            } = input
            {
                let indexed: Vec<usize> = catalog
                    .table(&table)
                    .map(|t| t.indexed_columns())
                    .unwrap_or_default();
                let mut conjuncts = Vec::new();
                flatten_and(predicate, &mut conjuncts);
                // First sargable conjunct over an indexed column wins.
                let mut condition: Option<(usize, IndexCondition)> = None;
                let mut rest: Vec<BoundExpr> = Vec::new();
                for c in conjuncts {
                    if condition.is_none() {
                        if let Some((col, cond)) = sargable(&c, &indexed) {
                            condition = Some((col, cond));
                            continue;
                        }
                    }
                    rest.push(c);
                }
                let scan = match condition {
                    Some((column, condition)) => LogicalPlan::IndexScan {
                        table,
                        alias,
                        column,
                        condition,
                        schema,
                    },
                    None => {
                        // Rebuild the untouched filter-over-scan.
                        let scan = LogicalPlan::Scan {
                            table,
                            alias,
                            schema,
                        };
                        let pred = rest
                            .into_iter()
                            .reduce(|a, b| BoundExpr::Binary {
                                left: Box::new(a),
                                op: BinaryOp::And,
                                right: Box::new(b),
                            })
                            .expect("filter had at least one conjunct");
                        return LogicalPlan::Filter {
                            input: Box::new(scan),
                            predicate: pred,
                        };
                    }
                };
                match rest.into_iter().reduce(|a, b| BoundExpr::Binary {
                    left: Box::new(a),
                    op: BinaryOp::And,
                    right: Box::new(b),
                }) {
                    Some(pred) => LogicalPlan::Filter {
                        input: Box::new(scan),
                        predicate: pred,
                    },
                    None => scan,
                }
            } else {
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(use_indexes(*input, catalog)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            equi,
            residual,
            strategy,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(use_indexes(*left, catalog)),
            right: Box::new(use_indexes(*right, catalog)),
            equi,
            residual,
            strategy,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(use_indexes(*input, catalog)),
            group_by,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(use_indexes(*input, catalog)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(use_indexes(*input, catalog)),
            n,
        },
        leaf => leaf,
    }
}

/// Returns `(column ordinal, condition)` when `expr` is of the form
/// `col ⊙ literal` (or `literal ⊙ col`) with `⊙ ∈ {=, <, <=, >, >=}` and
/// `col` carries a secondary index. Scan schemas map 1:1 onto table
/// schemas, so the bound ordinal IS the table ordinal.
fn sargable(expr: &BoundExpr, indexed: &[usize]) -> Option<(usize, IndexCondition)> {
    let BoundExpr::Binary { left, op, right } = expr else {
        return None;
    };
    let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
        (BoundExpr::Column { index, .. }, BoundExpr::Literal(v)) => (*index, v.clone(), *op),
        (BoundExpr::Literal(v), BoundExpr::Column { index, .. }) => {
            // Mirror the operator: `5 < col` ≡ `col > 5`.
            let mirrored = match op {
                BinaryOp::Lt => BinaryOp::Gt,
                BinaryOp::LtEq => BinaryOp::GtEq,
                BinaryOp::Gt => BinaryOp::Lt,
                BinaryOp::GtEq => BinaryOp::LtEq,
                other => *other,
            };
            (*index, v.clone(), mirrored)
        }
        _ => return None,
    };
    if lit.is_null() || !indexed.contains(&col) {
        return None;
    }
    let cond = match op {
        BinaryOp::Eq => IndexCondition::Eq(lit),
        BinaryOp::Lt => IndexCondition::Range {
            lo: Bound::Unbounded,
            hi: Bound::Excluded(lit),
        },
        BinaryOp::LtEq => IndexCondition::Range {
            lo: Bound::Unbounded,
            hi: Bound::Included(lit),
        },
        BinaryOp::Gt => IndexCondition::Range {
            lo: Bound::Excluded(lit),
            hi: Bound::Unbounded,
        },
        BinaryOp::GtEq => IndexCondition::Range {
            lo: Bound::Included(lit),
            hi: Bound::Unbounded,
        },
        _ => return None,
    };
    Some((col, cond))
}

/// Recursively pushes filter conjuncts toward the scans.
fn push_down_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_down_filters(*input);
            push_predicate(input, predicate)
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(push_down_filters(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            equi,
            residual,
            strategy,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(push_down_filters(*left)),
            right: Box::new(push_down_filters(*right)),
            equi,
            residual,
            strategy,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_filters(*input)),
            group_by,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_down_filters(*input)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(push_down_filters(*input)),
            n,
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::IndexScan { .. }) => leaf,
    }
}

/// Pushes one predicate into `input` as deep as possible.
fn push_predicate(input: LogicalPlan, predicate: BoundExpr) -> LogicalPlan {
    match input {
        LogicalPlan::Join {
            left,
            right,
            equi,
            residual,
            strategy,
            schema,
        } => {
            let left_len = left.schema().len();
            let mut conjuncts = Vec::new();
            flatten_and(predicate, &mut conjuncts);
            let mut left_plan = *left;
            let mut right_plan = *right;
            let mut stay: Option<BoundExpr> = None;
            for c in conjuncts {
                let mut cols = Vec::new();
                c.referenced_columns(&mut cols);
                let all_left = cols.iter().all(|&i| i < left_len);
                let all_right = cols.iter().all(|&i| i >= left_len);
                if all_left && !cols.is_empty() {
                    left_plan = push_predicate(left_plan, c);
                } else if all_right && !cols.is_empty() {
                    let shifted = c.remap_columns(&|i| i - left_len);
                    right_plan = push_predicate(right_plan, shifted);
                } else {
                    stay = Some(and_combine(stay, c));
                }
            }
            let joined = LogicalPlan::Join {
                left: Box::new(left_plan),
                right: Box::new(right_plan),
                equi,
                residual,
                strategy,
                schema,
            };
            match stay {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(joined),
                    predicate: p,
                },
                None => joined,
            }
        }
        LogicalPlan::Filter {
            input,
            predicate: inner,
        } => {
            // Merge adjacent filters, keep pushing.
            push_predicate(*input, and_combine(Some(inner), predicate))
        }
        other => LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

fn and_combine(acc: Option<BoundExpr>, next: BoundExpr) -> BoundExpr {
    match acc {
        None => next,
        Some(prev) => BoundExpr::Binary {
            left: Box::new(prev),
            op: BinaryOp::And,
            right: Box::new(next),
        },
    }
}

/// Picks join algorithms and build sides bottom-up.
fn choose_join_strategies(
    plan: LogicalPlan,
    catalog: &Catalog,
    config: OptimizerConfig,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            mut equi,
            residual,
            schema,
            ..
        } => {
            let mut left = choose_join_strategies(*left, catalog, config);
            let mut right = choose_join_strategies(*right, catalog, config);
            let strategy = if equi.is_empty() {
                JoinStrategy::NestedLoop
            } else if config.enable_hash_join {
                JoinStrategy::Hash
            } else {
                JoinStrategy::Merge
            };
            let mut residual = residual;
            if strategy == JoinStrategy::Hash {
                // Put the smaller estimated input on the right (build side).
                let le = estimate(&left, catalog);
                let re = estimate(&right, catalog);
                if le.rows < re.rows {
                    let left_len = left.schema().len();
                    let right_len = right.schema().len();
                    std::mem::swap(&mut left, &mut right);
                    equi = equi.into_iter().map(|(l, r)| (r, l)).collect();
                    // The output schema column order is defined by the
                    // original query; re-map it with a projection-free
                    // trick: swap sides and fix column order with a
                    // remapping of the residual plus a Project above.
                    // To keep plans simple we instead keep the schema in
                    // new (right ++ left) order and add a Project restoring
                    // the original order.
                    let new_schema = left.schema().join(right.schema());
                    residual = residual.map(|r| {
                        r.remap_columns(&|i| {
                            if i < left_len {
                                // old-left column now lives after new-left
                                // (= old right) block
                                i + right_len
                            } else {
                                i - left_len
                            }
                        })
                    });
                    let exprs: Vec<BoundExpr> = (0..schema.len())
                        .map(|i| {
                            // Original order: old-left block then old-right.
                            let src = if i < left_len {
                                i + right_len
                            } else {
                                i - left_len
                            };
                            let col = new_schema.column(src);
                            BoundExpr::Column {
                                index: src,
                                ty: col.ty,
                                name: col.name.clone(),
                            }
                        })
                        .collect();
                    let join = LogicalPlan::Join {
                        left: Box::new(left),
                        right: Box::new(right),
                        equi,
                        residual,
                        strategy,
                        schema: new_schema,
                    };
                    return LogicalPlan::Project {
                        input: Box::new(join),
                        exprs,
                        schema,
                    };
                }
            }
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                equi,
                residual,
                strategy,
                schema,
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(choose_join_strategies(*input, catalog, config)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(choose_join_strategies(*input, catalog, config)),
            exprs,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(choose_join_strategies(*input, catalog, config)),
            group_by,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(choose_join_strategies(*input, catalog, config)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(choose_join_strategies(*input, catalog, config)),
            n,
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::IndexScan { .. }) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::binder::bind_select;
    use crate::schema::{Column, Schema};
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse_statement;
    use crate::storage::Table;
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut big = Table::new(
            "big",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("k", DataType::Int),
            ]),
        );
        for i in 0..1_000 {
            big.insert(vec![Value::Int(i), Value::Int(i % 7)]).unwrap();
        }
        c.create_table(big).unwrap();
        let mut small = Table::new("small", Schema::new(vec![Column::new("k", DataType::Int)]));
        for i in 0..7 {
            small.insert(vec![Value::Int(i)]).unwrap();
        }
        c.create_table(small).unwrap();
        c
    }

    fn optimized(sql: &str, cfg: OptimizerConfig) -> LogicalPlan {
        let c = catalog();
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => optimize(bind_select(&s, &c).unwrap(), &c, cfg),
            _ => unreachable!(),
        }
    }

    fn render(p: &LogicalPlan) -> String {
        p.to_string()
    }

    #[test]
    fn filter_pushes_below_join() {
        let p = optimized(
            "SELECT * FROM big JOIN small ON big.k = small.k WHERE big.id < 10",
            OptimizerConfig::default(),
        );
        let text = render(&p);
        // The filter must appear below the join in the tree: the join line
        // comes before the filter line.
        let join_pos = text.find("Join").expect("join in plan");
        let filter_pos = text.find("Filter").expect("filter in plan");
        assert!(
            filter_pos > join_pos,
            "filter should be under the join:\n{text}"
        );
    }

    #[test]
    fn small_side_becomes_build_side() {
        let p = optimized(
            "SELECT * FROM big JOIN small ON big.k = small.k",
            OptimizerConfig::default(),
        );
        let text = render(&p);
        // After the swap, `small` must be the right (build) child, i.e. the
        // second scan listed under the join.
        let big_pos = text.find("Scan [big").expect("big scan");
        let small_pos = text.find("Scan [small").expect("small scan");
        assert!(
            big_pos < small_pos,
            "big should be probe (left), small build (right):\n{text}"
        );
        assert!(text.contains("HashJoin"));
    }

    #[test]
    fn hash_disabled_falls_back_to_merge() {
        let p = optimized(
            "SELECT * FROM big JOIN small ON big.k = small.k",
            OptimizerConfig {
                enable_hash_join: false,
            },
        );
        assert!(render(&p).contains("MergeJoin"));
    }

    #[test]
    fn no_equi_keys_uses_nested_loop() {
        let p = optimized(
            "SELECT * FROM big JOIN small ON big.k < small.k",
            OptimizerConfig::default(),
        );
        assert!(render(&p).contains("NestedLoopJoin"));
    }

    #[test]
    fn cross_side_predicate_stays_above_join() {
        let p = optimized(
            "SELECT * FROM big JOIN small ON big.k = small.k WHERE big.id + small.k > 3",
            OptimizerConfig::default(),
        );
        let text = render(&p);
        let join_pos = text.find("Join").unwrap();
        let filter_pos = text.find("Filter").unwrap();
        assert!(filter_pos < join_pos, "mixed filter stays above:\n{text}");
    }

    #[test]
    fn schema_is_preserved_by_optimization() {
        let c = catalog();
        let sql = "SELECT big.id, small.k FROM big JOIN small ON big.k = small.k WHERE big.id < 10";
        let bound = match parse_statement(sql).unwrap() {
            Statement::Select(s) => bind_select(&s, &c).unwrap(),
            _ => unreachable!(),
        };
        let before = bound.schema().clone();
        let after = optimize(bound, &c, OptimizerConfig::default());
        assert_eq!(&before, after.schema());
    }
}
