//! Scan, filter, project, sort, limit.

use super::{BoxIter, RowIter};
use crate::error::DbResult;
use crate::expr::BoundExpr;
use crate::value::Row;
use std::cmp::Ordering;

/// Sequential scan over borrowed table rows.
pub struct Scan<'a> {
    rows: &'a [Row],
    pos: usize,
}

impl<'a> Scan<'a> {
    /// A scan over `rows`.
    pub fn new(rows: &'a [Row]) -> Scan<'a> {
        Scan { rows, pos: 0 }
    }
}

impl RowIter for Scan<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let row = self.rows[self.pos].clone();
        self.pos += 1;
        Ok(Some(row))
    }
}

/// Index lookup: yields the rows at precomputed positions (in table
/// order).
pub struct IndexScan<'a> {
    rows: &'a [Row],
    positions: Vec<usize>,
    pos: usize,
}

impl<'a> IndexScan<'a> {
    /// A scan over the rows at `positions` (must be valid indices).
    pub fn new(rows: &'a [Row], positions: Vec<usize>) -> IndexScan<'a> {
        IndexScan {
            rows,
            positions,
            pos: 0,
        }
    }
}

impl RowIter for IndexScan<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.pos >= self.positions.len() {
            return Ok(None);
        }
        let row = self.rows[self.positions[self.pos]].clone();
        self.pos += 1;
        Ok(Some(row))
    }
}

/// Predicate filter (SQL semantics: keep only rows where the predicate is
/// `TRUE`; `NULL` drops).
pub struct Filter<'a> {
    input: BoxIter<'a>,
    predicate: BoundExpr,
}

impl<'a> Filter<'a> {
    /// A filter over `input`.
    pub fn new(input: BoxIter<'a>, predicate: BoundExpr) -> Filter<'a> {
        Filter { input, predicate }
    }
}

impl RowIter for Filter<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        while let Some(row) = self.input.next_row()? {
            if self.predicate.eval_predicate(&row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Expression projection.
pub struct Project<'a> {
    input: BoxIter<'a>,
    exprs: Vec<BoundExpr>,
}

impl<'a> Project<'a> {
    /// A projection over `input`.
    pub fn new(input: BoxIter<'a>, exprs: Vec<BoundExpr>) -> Project<'a> {
        Project { input, exprs }
    }
}

impl RowIter for Project<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        match self.input.next_row()? {
            None => Ok(None),
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(e.eval(&row)?);
                }
                Ok(Some(out))
            }
        }
    }
}

/// Blocking sort; materializes on first pull. Stable, so equal keys keep
/// input order.
pub struct Sort<'a> {
    input: Option<BoxIter<'a>>,
    keys: Vec<(BoundExpr, bool)>,
    sorted: Vec<Row>,
    pos: usize,
}

impl<'a> Sort<'a> {
    /// A sort of `input` by `keys` (expression, ascending).
    pub fn new(input: BoxIter<'a>, keys: Vec<(BoundExpr, bool)>) -> Sort<'a> {
        Sort {
            input: Some(input),
            keys,
            sorted: Vec::new(),
            pos: 0,
        }
    }

    fn materialize(&mut self) -> DbResult<()> {
        let Some(mut input) = self.input.take() else {
            return Ok(());
        };
        let mut keyed: Vec<(Vec<crate::value::Value>, Row)> = Vec::new();
        while let Some(row) = input.next_row()? {
            let mut key = Vec::with_capacity(self.keys.len());
            for (e, _) in &self.keys {
                key.push(e.eval(&row)?);
            }
            keyed.push((key, row));
        }
        let dirs: Vec<bool> = self.keys.iter().map(|(_, asc)| *asc).collect();
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, asc) in dirs.iter().enumerate() {
                let ord = ka[i].cmp(&kb[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        self.sorted = keyed.into_iter().map(|(_, r)| r).collect();
        Ok(())
    }
}

impl RowIter for Sort<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.input.is_some() {
            self.materialize()?;
        }
        if self.pos >= self.sorted.len() {
            return Ok(None);
        }
        let row = std::mem::take(&mut self.sorted[self.pos]);
        self.pos += 1;
        Ok(Some(row))
    }
}

/// Row-count limit (stops pulling from its input once satisfied).
pub struct Limit<'a> {
    input: BoxIter<'a>,
    remaining: u64,
}

impl<'a> Limit<'a> {
    /// A limit of `n` rows over `input`.
    pub fn new(input: BoxIter<'a>, n: u64) -> Limit<'a> {
        Limit {
            input,
            remaining: n,
        }
    }
}

impl RowIter for Limit<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next_row()? {
            None => Ok(None),
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::collect;
    use crate::sql::ast::BinaryOp;
    use crate::value::{DataType, Value};

    fn rows(vals: &[i64]) -> Vec<Row> {
        vals.iter().map(|&v| vec![Value::Int(v)]).collect()
    }

    fn col0() -> BoundExpr {
        BoundExpr::Column {
            index: 0,
            ty: DataType::Int,
            name: "x".into(),
        }
    }

    #[test]
    fn scan_yields_all_rows() {
        let data = rows(&[1, 2, 3]);
        let out = collect(Box::new(Scan::new(&data))).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn filter_keeps_matching() {
        let data = rows(&[1, 5, 2, 8]);
        let pred = BoundExpr::Binary {
            left: Box::new(col0()),
            op: BinaryOp::Gt,
            right: Box::new(BoundExpr::Literal(Value::Int(3))),
        };
        let out = collect(Box::new(Filter::new(Box::new(Scan::new(&data)), pred))).unwrap();
        assert_eq!(out, rows(&[5, 8]));
    }

    #[test]
    fn project_computes_expressions() {
        let data = rows(&[2, 3]);
        let double = BoundExpr::Binary {
            left: Box::new(col0()),
            op: BinaryOp::Mul,
            right: Box::new(BoundExpr::Literal(Value::Int(2))),
        };
        let out = collect(Box::new(Project::new(
            Box::new(Scan::new(&data)),
            vec![double],
        )))
        .unwrap();
        assert_eq!(out, rows(&[4, 6]));
    }

    #[test]
    fn sort_orders_ascending_and_descending() {
        let data = rows(&[3, 1, 2]);
        let asc = collect(Box::new(Sort::new(
            Box::new(Scan::new(&data)),
            vec![(col0(), true)],
        )))
        .unwrap();
        assert_eq!(asc, rows(&[1, 2, 3]));
        let desc = collect(Box::new(Sort::new(
            Box::new(Scan::new(&data)),
            vec![(col0(), false)],
        )))
        .unwrap();
        assert_eq!(desc, rows(&[3, 2, 1]));
    }

    #[test]
    fn sort_is_stable_on_equal_keys() {
        let data: Vec<Row> = vec![
            vec![Value::Int(1), Value::Str("first".into())],
            vec![Value::Int(1), Value::Str("second".into())],
            vec![Value::Int(0), Value::Str("zero".into())],
        ];
        let out = collect(Box::new(Sort::new(
            Box::new(Scan::new(&data)),
            vec![(col0(), true)],
        )))
        .unwrap();
        assert_eq!(out[1][1], Value::Str("first".into()));
        assert_eq!(out[2][1], Value::Str("second".into()));
    }

    #[test]
    fn limit_truncates() {
        let data = rows(&[1, 2, 3, 4]);
        let out = collect(Box::new(Limit::new(Box::new(Scan::new(&data)), 2))).unwrap();
        assert_eq!(out, rows(&[1, 2]));
        let zero = collect(Box::new(Limit::new(Box::new(Scan::new(&data)), 0))).unwrap();
        assert!(zero.is_empty());
    }

    #[test]
    fn empty_input_flows_through() {
        let data: Vec<Row> = vec![];
        let out = collect(Box::new(Sort::new(
            Box::new(Scan::new(&data)),
            vec![(col0(), true)],
        )))
        .unwrap();
        assert!(out.is_empty());
    }
}
