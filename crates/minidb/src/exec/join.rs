//! Join operators: hash, sort-merge and nested-loop.
//!
//! All three produce identical results for equi joins (the property tests
//! check this); they differ only in cost. SQL NULL semantics apply: a NULL
//! join key never matches anything.

use super::{BoxIter, RowIter};
use crate::error::DbResult;
use crate::expr::BoundExpr;
use crate::value::{Row, Value};
use std::collections::HashMap;

/// Evaluates the equi-key tuple of a row; `None` if any key is NULL (NULL
/// never joins).
fn key_of(row: &Row, cols: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = row[c].clone();
        if v.is_null() {
            return None;
        }
        key.push(v);
    }
    Some(key)
}

fn concat(left: &Row, right: &Row) -> Row {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend(left.iter().cloned());
    out.extend(right.iter().cloned());
    out
}

fn passes_residual(residual: &Option<BoundExpr>, row: &Row) -> DbResult<bool> {
    match residual {
        None => Ok(true),
        Some(p) => p.eval_predicate(row),
    }
}

/// Hash join: builds on the right input, probes with the left.
pub struct HashJoin<'a> {
    left: BoxIter<'a>,
    right: Option<BoxIter<'a>>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    residual: Option<BoundExpr>,
    table: HashMap<Vec<Value>, Vec<Row>>,
    /// Current probe row and the matches still to emit.
    current: Option<(Row, Vec<Row>, usize)>,
}

impl<'a> HashJoin<'a> {
    /// A hash join with `equi` = (left ordinal, right-relative ordinal)
    /// pairs; `left_len` is the left schema width (for the residual, which
    /// is bound over the concatenated schema).
    pub fn new(
        left: BoxIter<'a>,
        right: BoxIter<'a>,
        equi: Vec<(usize, usize)>,
        residual: Option<BoundExpr>,
        left_len: usize,
    ) -> HashJoin<'a> {
        let _ = left_len; // residual is already concatenation-relative
        let (left_keys, right_keys) = equi.into_iter().unzip();
        HashJoin {
            left,
            right: Some(right),
            left_keys,
            right_keys,
            residual,
            table: HashMap::new(),
            current: None,
        }
    }

    fn build(&mut self) -> DbResult<()> {
        let Some(mut right) = self.right.take() else {
            return Ok(());
        };
        while let Some(row) = right.next_row()? {
            if let Some(key) = key_of(&row, &self.right_keys) {
                self.table.entry(key).or_default().push(row);
            }
        }
        Ok(())
    }
}

impl RowIter for HashJoin<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.right.is_some() {
            self.build()?;
        }
        loop {
            if let Some((probe, matches, idx)) = &mut self.current {
                while *idx < matches.len() {
                    let row = concat(probe, &matches[*idx]);
                    *idx += 1;
                    if passes_residual(&self.residual, &row)? {
                        return Ok(Some(row));
                    }
                }
                self.current = None;
            }
            match self.left.next_row()? {
                None => return Ok(None),
                Some(probe) => {
                    if let Some(key) = key_of(&probe, &self.left_keys) {
                        if let Some(matches) = self.table.get(&key) {
                            self.current = Some((probe, matches.clone(), 0));
                        }
                    }
                }
            }
        }
    }
}

/// Sort-merge join: materializes and sorts both inputs on the keys, then
/// merges group-by-group (cross product within equal-key groups).
pub struct MergeJoin<'a> {
    left: Option<BoxIter<'a>>,
    right: Option<BoxIter<'a>>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    residual: Option<BoundExpr>,
    output: Vec<Row>,
    pos: usize,
}

impl<'a> MergeJoin<'a> {
    /// A merge join (see [`HashJoin::new`] for key conventions).
    pub fn new(
        left: BoxIter<'a>,
        right: BoxIter<'a>,
        equi: Vec<(usize, usize)>,
        residual: Option<BoundExpr>,
    ) -> MergeJoin<'a> {
        let (left_keys, right_keys) = equi.into_iter().unzip();
        MergeJoin {
            left: Some(left),
            right: Some(right),
            left_keys,
            right_keys,
            residual,
            output: Vec::new(),
            pos: 0,
        }
    }

    fn materialize(&mut self) -> DbResult<()> {
        let (Some(mut li), Some(mut ri)) = (self.left.take(), self.right.take()) else {
            return Ok(());
        };
        let mut lrows: Vec<(Vec<Value>, Row)> = Vec::new();
        while let Some(r) = li.next_row()? {
            if let Some(k) = key_of(&r, &self.left_keys) {
                lrows.push((k, r));
            }
        }
        let mut rrows: Vec<(Vec<Value>, Row)> = Vec::new();
        while let Some(r) = ri.next_row()? {
            if let Some(k) = key_of(&r, &self.right_keys) {
                rrows.push((k, r));
            }
        }
        lrows.sort_by(|(a, _), (b, _)| a.cmp(b));
        rrows.sort_by(|(a, _), (b, _)| a.cmp(b));

        let (mut i, mut j) = (0usize, 0usize);
        while i < lrows.len() && j < rrows.len() {
            match lrows[i].0.cmp(&rrows[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Find group extents on both sides.
                    let key = lrows[i].0.clone();
                    let li_end = lrows[i..]
                        .iter()
                        .position(|(k, _)| *k != key)
                        .map_or(lrows.len(), |p| i + p);
                    let rj_end = rrows[j..]
                        .iter()
                        .position(|(k, _)| *k != key)
                        .map_or(rrows.len(), |p| j + p);
                    for (_, lr) in &lrows[i..li_end] {
                        for (_, rr) in &rrows[j..rj_end] {
                            let row = concat(lr, rr);
                            if passes_residual(&self.residual, &row)? {
                                self.output.push(row);
                            }
                        }
                    }
                    i = li_end;
                    j = rj_end;
                }
            }
        }
        Ok(())
    }
}

impl RowIter for MergeJoin<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.left.is_some() {
            self.materialize()?;
        }
        if self.pos >= self.output.len() {
            return Ok(None);
        }
        let row = std::mem::take(&mut self.output[self.pos]);
        self.pos += 1;
        Ok(Some(row))
    }
}

/// Nested-loop join: materializes the right side, loops the left.
/// Handles arbitrary (including empty) equi keys plus residual.
pub struct NestedLoopJoin<'a> {
    left: BoxIter<'a>,
    right: Option<BoxIter<'a>>,
    equi: Vec<(usize, usize)>,
    residual: Option<BoundExpr>,
    right_rows: Vec<Row>,
    current: Option<(Row, usize)>,
}

impl<'a> NestedLoopJoin<'a> {
    /// A nested-loop join (see [`HashJoin::new`] for conventions).
    pub fn new(
        left: BoxIter<'a>,
        right: BoxIter<'a>,
        equi: Vec<(usize, usize)>,
        residual: Option<BoundExpr>,
        left_len: usize,
    ) -> NestedLoopJoin<'a> {
        let _ = left_len;
        NestedLoopJoin {
            left,
            right: Some(right),
            equi,
            residual,
            right_rows: Vec::new(),
            current: None,
        }
    }

    fn materialize_right(&mut self) -> DbResult<()> {
        let Some(mut right) = self.right.take() else {
            return Ok(());
        };
        while let Some(r) = right.next_row()? {
            self.right_rows.push(r);
        }
        Ok(())
    }

    fn keys_match(&self, l: &Row, r: &Row) -> bool {
        self.equi.iter().all(|&(lc, rc)| {
            let (a, b) = (&l[lc], &r[rc]);
            !a.is_null() && !b.is_null() && a == b
        })
    }
}

impl RowIter for NestedLoopJoin<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.right.is_some() {
            self.materialize_right()?;
        }
        loop {
            if let Some((lrow, idx)) = self.current.take() {
                let mut idx = idx;
                while idx < self.right_rows.len() {
                    let rrow = &self.right_rows[idx];
                    idx += 1;
                    if !self.equi.is_empty() && !self.keys_match(&lrow, rrow) {
                        continue;
                    }
                    let row = concat(&lrow, rrow);
                    if passes_residual(&self.residual, &row)? {
                        self.current = Some((lrow, idx));
                        return Ok(Some(row));
                    }
                }
            }
            match self.left.next_row()? {
                None => return Ok(None),
                Some(lrow) => self.current = Some((lrow, 0)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::basic::Scan;
    use crate::exec::collect;
    use crate::sql::ast::BinaryOp;
    use crate::value::DataType;

    fn left_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Int(2), Value::Str("b".into())],
            vec![Value::Int(2), Value::Str("b2".into())],
            vec![Value::Int(3), Value::Str("c".into())],
            vec![Value::Null, Value::Str("n".into())],
        ]
    }

    fn right_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(2), Value::Float(20.0)],
            vec![Value::Int(2), Value::Float(21.0)],
            vec![Value::Int(3), Value::Float(30.0)],
            vec![Value::Int(4), Value::Float(40.0)],
            vec![Value::Null, Value::Float(0.0)],
        ]
    }

    fn run_all(equi: Vec<(usize, usize)>, residual: Option<BoundExpr>) -> Vec<Vec<Row>> {
        let l = left_rows();
        let r = right_rows();
        let hash = collect(Box::new(HashJoin::new(
            Box::new(Scan::new(&l)),
            Box::new(Scan::new(&r)),
            equi.clone(),
            residual.clone(),
            2,
        )))
        .unwrap();
        let merge = collect(Box::new(MergeJoin::new(
            Box::new(Scan::new(&l)),
            Box::new(Scan::new(&r)),
            equi.clone(),
            residual.clone(),
        )))
        .unwrap();
        let nl = collect(Box::new(NestedLoopJoin::new(
            Box::new(Scan::new(&l)),
            Box::new(Scan::new(&r)),
            equi,
            residual,
            2,
        )))
        .unwrap();
        vec![hash, merge, nl]
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort();
        rows
    }

    #[test]
    fn equi_join_agree_across_algorithms() {
        let results = run_all(vec![(0, 0)], None);
        let expected = 2 * 2 + 1; // key 2: 2×2, key 3: 1×1
        for r in &results {
            assert_eq!(r.len(), expected);
        }
        assert_eq!(sorted(results[0].clone()), sorted(results[1].clone()));
        assert_eq!(sorted(results[0].clone()), sorted(results[2].clone()));
    }

    #[test]
    fn null_keys_never_match() {
        let results = run_all(vec![(0, 0)], None);
        for r in &results {
            assert!(r.iter().all(|row| !row[0].is_null() && !row[2].is_null()));
        }
    }

    #[test]
    fn residual_filters_matches() {
        // key = key AND right.v > 20.0
        let residual = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column {
                index: 3,
                ty: DataType::Float,
                name: "v".into(),
            }),
            op: BinaryOp::Gt,
            right: Box::new(BoundExpr::Literal(Value::Float(20.0))),
        };
        let results = run_all(vec![(0, 0)], Some(residual));
        // key 2 matches v=21 only (2 left rows × 1), key 3 matches v=30.
        for r in &results {
            assert_eq!(r.len(), 3, "{r:?}");
        }
    }

    #[test]
    fn cross_join_via_nested_loop() {
        let l = left_rows();
        let r = right_rows();
        let out = collect(Box::new(NestedLoopJoin::new(
            Box::new(Scan::new(&l)),
            Box::new(Scan::new(&r)),
            vec![],
            None,
            2,
        )))
        .unwrap();
        assert_eq!(out.len(), l.len() * r.len());
    }

    #[test]
    fn empty_sides_produce_empty_output() {
        let empty: Vec<Row> = vec![];
        let r = right_rows();
        let out = collect(Box::new(HashJoin::new(
            Box::new(Scan::new(&empty)),
            Box::new(Scan::new(&r)),
            vec![(0, 0)],
            None,
            2,
        )))
        .unwrap();
        assert!(out.is_empty());
        let out2 = collect(Box::new(MergeJoin::new(
            Box::new(Scan::new(&r)),
            Box::new(Scan::new(&empty)),
            vec![(0, 0)],
            None,
        )))
        .unwrap();
        assert!(out2.is_empty());
    }

    #[test]
    fn multi_key_join() {
        let l = vec![
            vec![Value::Int(1), Value::Str("x".into())],
            vec![Value::Int(1), Value::Str("y".into())],
        ];
        let r = vec![
            vec![Value::Int(1), Value::Str("x".into()), Value::Float(1.0)],
            vec![Value::Int(1), Value::Str("z".into()), Value::Float(2.0)],
        ];
        let out = collect(Box::new(HashJoin::new(
            Box::new(Scan::new(&l)),
            Box::new(Scan::new(&r)),
            vec![(0, 0), (1, 1)],
            None,
            2,
        )))
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][1], Value::Str("x".into()));
    }
}
